//! The timeline index: lazily-built, thread-safe per-system caches of
//! day vectors and pooled window baselines.
//!
//! Every conditional in the paper divides by the same empirical
//! baseline — "probability of a type-Y failure in a random
//! day/week/month" — and every baseline is assembled from the same
//! per-(node, class) sorted day vectors. The direct-scan path in
//! [`query`](crate::query) re-derives both from raw records on every
//! call; this module memoizes them per system so the trace is indexed
//! once and queried many times:
//!
//! - **day vectors** — per `(node, FailureClass)` (and per node for
//!   unscheduled hardware maintenance), shared via `Arc` so cache hits
//!   are allocation-free;
//! - **baselines** — pooled [`WindowCounts`] per `(FailureClass,
//!   Window)` (and per `Window` for maintenance);
//! - **features** — whole-system usage and temperature aggregates
//!   (one slot each), whose builders scan the job log and temperature
//!   samples — by far the largest record streams in the trace.
//!
//! # Keying and laziness
//!
//! Caches are plain `HashMap`s keyed by `Copy` value types
//! (`FailureClass` and `Window` are `Eq + Hash`), populated on first
//! query. Nothing is built at trace construction time: a run that only
//! touches two (class, window) pairs pays for exactly those.
//!
//! # Thread safety
//!
//! Each cache sits behind an `RwLock` with double-checked lookup: a
//! read lock serves hits concurrently; a miss upgrades to the write
//! lock, re-checks, and builds *while holding it*, so concurrent
//! `parallel_map` workers asking for the same key share one build
//! instead of racing to duplicate it. The values are cheap to clone
//! (`Arc` day vectors, `Copy` counts), so locks are never held across
//! caller code.
//!
//! Results are bit-identical to the direct-scan path — the builders
//! call into the same [`query`](crate::query) kernels
//! ([`covered_window_starts`], [`NodeEvents`]) — which the differential
//! property tests in `tests/properties.rs` assert over random traces.
//!
//! # Observability
//!
//! - `store.index.days.hits` / `store.index.days.misses` — day-vector
//!   cache outcomes;
//! - `store.index.baseline.hits` / `store.index.baseline.misses` —
//!   baseline cache outcomes;
//! - `store.index.features.hits` / `store.index.features.misses` —
//!   usage/temperature feature cache outcomes;
//! - `store.index.build_ns` — histogram of time spent building entries;
//! - `store.index.build_baseline` / `store.index.build_features` —
//!   spans around the expensive whole-system builds.

use crate::features::{compute_temperature, compute_usage, NodeUsage, TemperatureAggregate};
use crate::query::{covered_window_starts, windows_per_node, NodeEvents, WindowCounts};
use crate::trace::SystemTrace;
use hpcfail_types::prelude::*;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A cached, sorted, deduplicated day vector, shared without copying.
pub type DayVec = Arc<Vec<i64>>;

/// Per-system caches of day vectors and pooled baselines.
///
/// Lives inside [`SystemTrace`]; query through the `indexed_*` methods
/// on the trace. Cloning a trace produces a *cold* index (the caches
/// are derived data and rebuild on demand), which also keeps clones
/// cheap.
#[derive(Debug, Default)]
pub struct TimelineIndex {
    failure_days: RwLock<HashMap<(FailureClass, u32), DayVec>>,
    maintenance_days: RwLock<HashMap<u32, DayVec>>,
    failure_baselines: RwLock<HashMap<(FailureClass, Window), WindowCounts>>,
    maintenance_baselines: RwLock<HashMap<Window, WindowCounts>>,
    usage: RwLock<Option<Arc<Vec<NodeUsage>>>>,
    temperature: RwLock<Option<Arc<Vec<Option<TemperatureAggregate>>>>>,
}

impl TimelineIndex {
    /// An empty (cold) index.
    pub(crate) fn new() -> Self {
        TimelineIndex::default()
    }
}

impl Clone for TimelineIndex {
    /// Clones start cold: caches are derived data, rebuilt on demand.
    fn clone(&self) -> Self {
        TimelineIndex::default()
    }
}

/// Double-checked cache lookup: serve hits under the read lock, build
/// misses under the write lock so concurrent workers share one build.
fn get_or_build<K, V>(
    map: &RwLock<HashMap<K, V>>,
    key: K,
    hit: &'static str,
    miss: &'static str,
    build: impl FnOnce() -> V,
) -> V
where
    K: Eq + Hash,
    V: Clone,
{
    // Cached values are immutable once built, so a poisoned lock (a
    // worker panicking mid-experiment) leaves the map consistent —
    // recover rather than cascade the panic.
    if let Some(v) = map
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
    {
        hpcfail_obs::counter(hit).inc();
        return v.clone();
    }
    let mut guard = map
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(v) = guard.get(&key) {
        hpcfail_obs::counter(hit).inc();
        return v.clone();
    }
    hpcfail_obs::counter(miss).inc();
    let v = timed_build(build);
    guard.insert(key, v.clone());
    v
}

/// Single-slot variant of [`get_or_build`] for whole-system features
/// (one value per trace, not per key).
fn get_or_build_single<V: Clone>(
    slot: &RwLock<Option<V>>,
    hit: &'static str,
    miss: &'static str,
    build: impl FnOnce() -> V,
) -> V {
    if let Some(v) = slot
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
    {
        hpcfail_obs::counter(hit).inc();
        return v.clone();
    }
    let mut guard = slot
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(v) = guard.as_ref() {
        hpcfail_obs::counter(hit).inc();
        return v.clone();
    }
    hpcfail_obs::counter(miss).inc();
    let v = timed_build(build);
    *guard = Some(v.clone());
    v
}

/// Runs `build`, recording its duration in `store.index.build_ns` when
/// instrumentation is compiled in.
fn timed_build<V>(build: impl FnOnce() -> V) -> V {
    if hpcfail_obs::ENABLED {
        let started = Instant::now();
        let v = build();
        hpcfail_obs::histogram("store.index.build_ns").record(started.elapsed().as_nanos() as u64);
        v
    } else {
        build()
    }
}

impl SystemTrace {
    /// Sorted, deduplicated day indices on which `node` had a failure
    /// of `class` — the memoized equivalent of
    /// [`NodeEvents::failure_days`].
    pub fn indexed_failure_days(&self, node: NodeId, class: FailureClass) -> DayVec {
        get_or_build(
            &self.index.failure_days,
            (class, node.raw()),
            "store.index.days.hits",
            "store.index.days.misses",
            || Arc::new(NodeEvents::new(self).failure_days(node, class)),
        )
    }

    /// Sorted, deduplicated day indices on which `node` had unscheduled
    /// hardware maintenance — the memoized equivalent of
    /// [`NodeEvents::unscheduled_hw_maintenance_days`].
    pub fn indexed_maintenance_days(&self, node: NodeId) -> DayVec {
        get_or_build(
            &self.index.maintenance_days,
            node.raw(),
            "store.index.days.hits",
            "store.index.days.misses",
            || Arc::new(NodeEvents::new(self).unscheduled_hw_maintenance_days(node)),
        )
    }

    /// The system-pooled baseline probability of a `class` failure in a
    /// random window — the memoized equivalent of
    /// [`BaselineEstimator::failure_probability`](crate::query::BaselineEstimator::failure_probability).
    pub fn indexed_failure_baseline(&self, class: FailureClass, window: Window) -> WindowCounts {
        get_or_build(
            &self.index.failure_baselines,
            (class, window),
            "store.index.baseline.hits",
            "store.index.baseline.misses",
            || {
                let _span = hpcfail_obs::span("store.index.build_baseline");
                let total_days = self.config().observation_days();
                let per_node = windows_per_node(total_days, window);
                let mut counts = WindowCounts::default();
                for node in self.nodes() {
                    let days = self.indexed_failure_days(node, class);
                    counts.hits += covered_window_starts(&days, total_days, window.days());
                    counts.total += per_node;
                }
                counts
            },
        )
    }

    /// The system-pooled baseline probability of unscheduled hardware
    /// maintenance in a random window — the memoized equivalent of
    /// [`BaselineEstimator::maintenance_probability`](crate::query::BaselineEstimator::maintenance_probability).
    pub fn indexed_maintenance_baseline(&self, window: Window) -> WindowCounts {
        get_or_build(
            &self.index.maintenance_baselines,
            window,
            "store.index.baseline.hits",
            "store.index.baseline.misses",
            || {
                let _span = hpcfail_obs::span("store.index.build_baseline");
                let total_days = self.config().observation_days();
                let per_node = windows_per_node(total_days, window);
                let mut counts = WindowCounts::default();
                for node in self.nodes() {
                    let days = self.indexed_maintenance_days(node);
                    counts.hits += covered_window_starts(&days, total_days, window.days());
                    counts.total += per_node;
                }
                counts
            },
        )
    }

    /// Per-node usage features, computed once per trace — the memoized
    /// equivalent of [`compute_usage`]. Figure 7 alone derives four
    /// statistics from the same scatter, each of which previously
    /// rescanned the multi-million-record job log.
    pub fn indexed_usage(&self) -> Arc<Vec<NodeUsage>> {
        get_or_build_single(
            &self.index.usage,
            "store.index.features.hits",
            "store.index.features.misses",
            || {
                let _span = hpcfail_obs::span("store.index.build_features");
                Arc::new(compute_usage(self))
            },
        )
    }

    /// Per-node temperature aggregates, computed once per trace — the
    /// memoized equivalent of [`compute_temperature`], which every
    /// Section VIII regression previously recomputed per predictor.
    pub fn indexed_temperature(&self) -> Arc<Vec<Option<TemperatureAggregate>>> {
        get_or_build_single(
            &self.index.temperature,
            "store.index.features.hits",
            "store.index.features.misses",
            || {
                let _span = hpcfail_obs::span("store.index.build_features");
                Arc::new(compute_temperature(self))
            },
        )
    }

    /// Baseline probability for one node, served from the cached day
    /// vector — the memoized equivalent of
    /// [`BaselineEstimator::node_failure_probability`](crate::query::BaselineEstimator::node_failure_probability).
    pub fn indexed_node_failure_baseline(
        &self,
        node: NodeId,
        class: FailureClass,
        window: Window,
    ) -> WindowCounts {
        let total_days = self.config().observation_days();
        let days = self.indexed_failure_days(node, class);
        WindowCounts {
            hits: covered_window_starts(&days, total_days, window.days()),
            total: windows_per_node(total_days, window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::BaselineEstimator;
    use crate::trace::SystemTraceBuilder;

    fn config(nodes: u32, days: f64) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(1),
            name: "idx".into(),
            nodes,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }
    }

    fn failure(node: u32, day: f64) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node),
            Timestamp::from_days(day),
            RootCause::Hardware,
            SubCause::None,
        )
    }

    fn build_sample() -> SystemTrace {
        let mut b = SystemTraceBuilder::new(config(3, 100.0));
        b.push_failure(failure(0, 10.0));
        b.push_failure(failure(0, 10.5));
        b.push_failure(failure(2, 50.0));
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(1),
            time: Timestamp::from_days(30.0),
            hardware_related: true,
            scheduled: false,
        });
        b.build()
    }

    #[test]
    fn indexed_baseline_matches_direct_scan() {
        let t = build_sample();
        let est = BaselineEstimator::new(&t);
        for window in Window::ALL {
            assert_eq!(
                t.indexed_failure_baseline(FailureClass::Any, window),
                est.failure_probability(FailureClass::Any, window),
            );
            assert_eq!(
                t.indexed_maintenance_baseline(window),
                est.maintenance_probability(window),
            );
        }
    }

    #[test]
    fn indexed_day_vectors_match_and_are_shared() {
        let t = build_sample();
        let events = NodeEvents::new(&t);
        for node in t.nodes() {
            assert_eq!(
                *t.indexed_failure_days(node, FailureClass::Any),
                events.failure_days(node, FailureClass::Any),
            );
        }
        // A second query returns the same allocation, not a copy.
        let a = t.indexed_failure_days(NodeId::new(0), FailureClass::Any);
        let b = t.indexed_failure_days(NodeId::new(0), FailureClass::Any);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn indexed_node_baseline_matches_direct_scan() {
        let t = build_sample();
        let est = BaselineEstimator::new(&t);
        for node in t.nodes() {
            assert_eq!(
                t.indexed_node_failure_baseline(node, FailureClass::Any, Window::Week),
                est.node_failure_probability(node, FailureClass::Any, Window::Week),
            );
        }
    }

    #[test]
    fn clone_starts_cold_but_agrees() {
        let t = build_sample();
        let warm = t.indexed_failure_baseline(FailureClass::Any, Window::Week);
        let cloned = t.clone();
        assert_eq!(
            cloned.indexed_failure_baseline(FailureClass::Any, Window::Week),
            warm
        );
    }

    #[test]
    fn concurrent_queries_agree() {
        let t = build_sample();
        let expected =
            BaselineEstimator::new(&t).failure_probability(FailureClass::Any, Window::Week);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = &t;
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(
                            t.indexed_failure_baseline(FailureClass::Any, Window::Week),
                            expected
                        );
                    }
                });
            }
        });
    }
}
