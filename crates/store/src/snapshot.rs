//! Versioned binary snapshots (`.hpcsnap`) of a full [`Trace`].
//!
//! A snapshot is written once after ingest and loaded at boot with a
//! single bulk read, skipping CSV parsing and per-record validation: the
//! failure columns are stored exactly as the in-memory
//! struct-of-arrays layout ([`crate::columns::FailureColumns`]), so a
//! load is a decode pass plus the O(n) postings rebuild — no row
//! structs, no sorting, no text.
//!
//! # File format (version 1)
//!
//! ```text
//! magic      8 bytes  "HPCSNAP\0"
//! version    u32 LE   1
//! fingerprint u64 LE  content fingerprint of the whole trace
//! sections   u32 LE   number of section-table entries
//! table      sections × { id u32, offset u64, len u64, checksum u64 }
//! ...section payloads at their recorded offsets...
//! ```
//!
//! Section ids combine a kind (high 16 bits) and a system id (low 16
//! bits). One `SYSTEMS` section carries every [`SystemConfig`]; each
//! system then contributes `FAILURES` (the five primitive columns,
//! stored column-wise), `JOBS`, `TEMPERATURES`, `MAINTENANCE` and — when
//! present — `LAYOUT` sections; one fleet-wide `NEUTRON` section closes
//! the file. Every payload is integrity-checked by an FNV-1a checksum in
//! the table, and the decoded trace must reproduce the header's content
//! fingerprint.
//!
//! # Fallback rules
//!
//! Loading never panics: any truncation, checksum mismatch, bad magic or
//! unsupported version yields a typed [`SnapshotError`].
//! [`try_read_snapshot`] additionally packages a failure as a
//! [`SnapshotFallback`] audit entry and bumps the
//! `store.snapshot.fallback` counter so callers can drop to CSV ingest
//! while recording exactly why.

use crate::columns::FailureColumns;
use crate::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;
use std::fmt;
use std::path::{Path, PathBuf};

/// The 8-byte prefix every `.hpcsnap` stream starts with; sniffing it
/// distinguishes a binary snapshot upload from CSV text.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HPCSNAP\0";
const MAGIC: &[u8; 8] = SNAPSHOT_MAGIC;
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const KIND_SYSTEMS: u32 = 1;
const KIND_FAILURES: u32 = 2;
const KIND_JOBS: u32 = 3;
const KIND_TEMPERATURES: u32 = 4;
const KIND_MAINTENANCE: u32 = 5;
const KIND_LAYOUT: u32 = 6;
const KIND_NEUTRON: u32 = 7;

const fn section_id(kind: u32, system: u16) -> u32 {
    (kind << 16) | system as u32
}

/// Error raised when writing or loading a snapshot fails.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the `.hpcsnap` magic bytes.
    BadMagic,
    /// The file is a snapshot, but of a version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is structurally damaged: truncated, checksum mismatch,
    /// undecodable payload or inconsistent content.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => f.write_str("not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<crate::columns::ColumnError> for SnapshotError {
    fn from(e: crate::columns::ColumnError) -> Self {
        SnapshotError::Corrupt(e.to_string())
    }
}

/// Typed audit entry recorded when a snapshot cannot be used and the
/// caller falls back to CSV ingest.
#[derive(Debug)]
pub struct SnapshotFallback {
    /// The snapshot that was rejected.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: SnapshotError,
}

impl fmt::Display for SnapshotFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot {} unusable, falling back to CSV: {}",
            self.path.display(),
            self.error
        )
    }
}

/// Outcome of [`try_read_snapshot`]: the loaded trace, or a typed audit
/// entry explaining the CSV fallback.
#[derive(Debug)]
pub enum SnapshotLoad {
    /// The snapshot decoded and verified; boot can skip CSV entirely.
    Loaded(Box<Trace>),
    /// The snapshot is unusable; carry on with CSV ingest.
    Unusable(SnapshotFallback),
}

// ---------------------------------------------------------------------
// Byte-level encoding (little-endian, fixed width)

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(SnapshotError::Corrupt(format!(
                "truncated {} section at byte {}",
                self.what, self.pos
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed count, guarding against lengths that
    /// cannot fit in the remaining bytes (`min_width` bytes per item).
    fn count(&mut self, min_width: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_width) > self.buf.len() - self.pos {
            return Err(SnapshotError::Corrupt(format!(
                "{} count {n} exceeds section size",
                self.what
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("{}: invalid utf-8 string", self.what)))
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} section has {} trailing bytes",
                self.what,
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Content fingerprint

/// FNV-1a content fingerprint over everything a snapshot carries,
/// computed from the columnar storage (no row materialization). The same
/// trace content always produces the same fingerprint, whether it was
/// ingested from CSV or decoded from a snapshot.
pub fn content_fingerprint(trace: &Trace) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn bytes(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        fn u64(&mut self, v: u64) {
            self.bytes(&v.to_le_bytes());
        }
        fn i64(&mut self, v: i64) {
            self.bytes(&v.to_le_bytes());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.u64(trace.len() as u64);
    for system in trace.systems() {
        let c = system.config();
        h.u64(c.id.raw() as u64);
        h.bytes(c.name.as_bytes());
        h.u64(c.nodes as u64);
        h.u64(c.procs_per_node as u64);
        h.u64(matches!(c.hardware, HardwareClass::Numa) as u64);
        h.i64(c.start.as_seconds());
        h.i64(c.end.as_seconds());
        h.u64(
            ((c.has_layout as u64) << 2) | ((c.has_job_log as u64) << 1) | c.has_temperature as u64,
        );

        let cols = system.failure_columns();
        h.u64(cols.len() as u64);
        for i in 0..cols.len() {
            h.i64(cols.times()[i]);
            h.u64(cols.nodes()[i] as u64);
            h.u64(cols.roots()[i] as u64);
            h.u64(cols.subs()[i] as u64);
            h.i64(cols.downtimes()[i]);
        }
        h.u64(system.jobs().len() as u64);
        for j in system.jobs() {
            h.u64(j.job_id.raw());
            h.u64(j.user.raw() as u64);
            h.i64(j.submit.as_seconds());
            h.i64(j.dispatch.as_seconds());
            h.i64(j.end.as_seconds());
            h.u64(j.procs as u64);
            h.u64(j.nodes.len() as u64);
            for n in &j.nodes {
                h.u64(n.raw() as u64);
            }
        }
        h.u64(system.temperatures().len() as u64);
        for t in system.temperatures() {
            h.u64(t.node.raw() as u64);
            h.i64(t.time.as_seconds());
            h.u64(t.celsius.to_bits());
        }
        h.u64(system.maintenance().len() as u64);
        for m in system.maintenance() {
            h.u64(m.node.raw() as u64);
            h.i64(m.time.as_seconds());
            h.u64(((m.hardware_related as u64) << 1) | m.scheduled as u64);
        }
        match system.layout() {
            None => h.u64(u64::MAX),
            Some(layout) => {
                h.u64(layout.len() as u64);
                for (node, loc) in layout.iter() {
                    h.u64(node.raw() as u64);
                    h.u64(loc.rack.raw() as u64);
                    h.u64(loc.position_in_rack as u64);
                    h.u64(loc.room_row as u64);
                    h.u64(loc.room_col as u64);
                }
            }
        }
    }
    h.u64(trace.neutron_samples().len() as u64);
    for s in trace.neutron_samples() {
        h.i64(s.time.as_seconds());
        h.u64(s.counts_per_minute.to_bits());
    }
    h.0
}

// ---------------------------------------------------------------------
// Writing

fn encode_systems(trace: &Trace) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(trace.len() as u32);
    for system in trace.systems() {
        let c = system.config();
        w.u16(c.id.raw());
        w.str(&c.name);
        w.u32(c.nodes);
        w.u32(c.procs_per_node);
        w.u8(matches!(c.hardware, HardwareClass::Numa) as u8);
        w.i64(c.start.as_seconds());
        w.i64(c.end.as_seconds());
        w.u8(c.has_layout as u8);
        w.u8(c.has_job_log as u8);
        w.u8(c.has_temperature as u8);
    }
    w.buf
}

fn encode_failures(cols: &FailureColumns) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(cols.len() as u32);
    for &t in cols.times() {
        w.i64(t);
    }
    for &n in cols.nodes() {
        w.u32(n);
    }
    w.buf.extend_from_slice(cols.roots());
    for &s in cols.subs() {
        w.u16(s);
    }
    for &d in cols.downtimes() {
        w.i64(d);
    }
    w.buf
}

fn encode_jobs(jobs: &[JobRecord]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(jobs.len() as u32);
    for j in jobs {
        w.u64(j.job_id.raw());
        w.u32(j.user.raw());
        w.i64(j.submit.as_seconds());
        w.i64(j.dispatch.as_seconds());
        w.i64(j.end.as_seconds());
        w.u32(j.procs);
        w.u32(j.nodes.len() as u32);
        for n in &j.nodes {
            w.u32(n.raw());
        }
    }
    w.buf
}

fn encode_temperatures(samples: &[TemperatureSample]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(samples.len() as u32);
    for s in samples {
        w.u32(s.node.raw());
    }
    for s in samples {
        w.i64(s.time.as_seconds());
    }
    for s in samples {
        w.f64(s.celsius);
    }
    w.buf
}

fn encode_maintenance(records: &[MaintenanceRecord]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(records.len() as u32);
    for m in records {
        w.u32(m.node.raw());
    }
    for m in records {
        w.i64(m.time.as_seconds());
    }
    for m in records {
        w.u8(((m.hardware_related as u8) << 1) | m.scheduled as u8);
    }
    w.buf
}

fn encode_layout(layout: &MachineLayout) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(layout.len() as u32);
    for (node, loc) in layout.iter() {
        w.u32(node.raw());
        w.u16(loc.rack.raw());
        w.u8(loc.position_in_rack);
        w.u16(loc.room_row);
        w.u16(loc.room_col);
    }
    w.buf
}

fn encode_neutron(samples: &[NeutronSample]) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(samples.len() as u32);
    for s in samples {
        w.i64(s.time.as_seconds());
    }
    for s in samples {
        w.f64(s.counts_per_minute);
    }
    w.buf
}

/// Serializes the trace into the `.hpcsnap` byte format.
pub fn snapshot_bytes(trace: &Trace) -> Vec<u8> {
    let mut sections: Vec<(u32, Vec<u8>)> =
        vec![(section_id(KIND_SYSTEMS, 0), encode_systems(trace))];
    for system in trace.systems() {
        let sys = system.id().raw();
        sections.push((
            section_id(KIND_FAILURES, sys),
            encode_failures(system.failure_columns()),
        ));
        sections.push((section_id(KIND_JOBS, sys), encode_jobs(system.jobs())));
        sections.push((
            section_id(KIND_TEMPERATURES, sys),
            encode_temperatures(system.temperatures()),
        ));
        sections.push((
            section_id(KIND_MAINTENANCE, sys),
            encode_maintenance(system.maintenance()),
        ));
        if let Some(layout) = system.layout() {
            sections.push((section_id(KIND_LAYOUT, sys), encode_layout(layout)));
        }
    }
    sections.push((
        section_id(KIND_NEUTRON, 0),
        encode_neutron(trace.neutron_samples()),
    ));

    let header_len = MAGIC.len() + 4 + 8 + 4 + sections.len() * (4 + 8 + 8 + 8);
    let mut out =
        Vec::with_capacity(header_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&content_fingerprint(trace).to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = header_len as u64;
    for (id, bytes) in &sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        offset += bytes.len() as u64;
    }
    for (_, bytes) in &sections {
        out.extend_from_slice(bytes);
    }
    out
}

/// Writes a snapshot of `trace` to `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be written.
pub fn write_snapshot<P: AsRef<Path>>(path: P, trace: &Trace) -> Result<(), SnapshotError> {
    let _span = hpcfail_obs::span("store.snapshot.write");
    let bytes = snapshot_bytes(trace);
    hpcfail_obs::counter("store.snapshot.bytes_written").add(bytes.len() as u64);
    std::fs::write(path, bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Loading

struct Section<'a> {
    bytes: &'a [u8],
}

fn parse_sections(buf: &[u8]) -> Result<Vec<(u32, Section<'_>)>, SnapshotError> {
    if buf.len() < MAGIC.len() {
        return Err(SnapshotError::BadMagic);
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(&buf[MAGIC.len()..], "header");
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let _fingerprint = r.u64()?;
    let count = r.count(28)?;
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32()?;
        let offset = r.u64()? as usize;
        let len = r.u64()? as usize;
        let checksum = r.u64()?;
        let end = offset.checked_add(len).filter(|&e| e <= buf.len());
        let Some(end) = end else {
            return Err(SnapshotError::Corrupt(format!(
                "section {id:#x} range {offset}+{len} exceeds file size {}",
                buf.len()
            )));
        };
        let bytes = &buf[offset..end];
        if fnv1a(bytes) != checksum {
            return Err(SnapshotError::Corrupt(format!(
                "section {id:#x} checksum mismatch"
            )));
        }
        sections.push((id, Section { bytes }));
    }
    Ok(sections)
}

fn header_fingerprint(buf: &[u8]) -> Result<u64, SnapshotError> {
    let mut r = Reader::new(&buf[MAGIC.len()..], "header");
    let _version = r.u32()?;
    r.u64()
}

fn decode_systems(bytes: &[u8]) -> Result<Vec<SystemConfig>, SnapshotError> {
    let mut r = Reader::new(bytes, "systems");
    let count = r.count(31)?;
    let mut configs = Vec::with_capacity(count);
    for _ in 0..count {
        let id = SystemId::new(r.u16()?);
        let name = r.str()?;
        let nodes = r.u32()?;
        let procs_per_node = r.u32()?;
        let hardware = match r.u8()? {
            0 => HardwareClass::Smp4Way,
            1 => HardwareClass::Numa,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown hardware class code {other} for {id}"
                )))
            }
        };
        let start = Timestamp::from_seconds(r.i64()?);
        let end = Timestamp::from_seconds(r.i64()?);
        let has_layout = r.u8()? != 0;
        let has_job_log = r.u8()? != 0;
        let has_temperature = r.u8()? != 0;
        configs.push(SystemConfig {
            id,
            name,
            nodes,
            procs_per_node,
            hardware,
            start,
            end,
            has_layout,
            has_job_log,
            has_temperature,
        });
    }
    r.finish()?;
    Ok(configs)
}

fn decode_failures(bytes: &[u8], config: &SystemConfig) -> Result<FailureColumns, SnapshotError> {
    let mut r = Reader::new(bytes, "failures");
    let count = r.count(8 + 4 + 1 + 2 + 8)?;
    let mut times = Vec::with_capacity(count);
    for _ in 0..count {
        times.push(r.i64()?);
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(r.u32()?);
    }
    let roots = r.take(count)?.to_vec();
    let mut subs = Vec::with_capacity(count);
    for _ in 0..count {
        subs.push(r.u16()?);
    }
    let mut downtimes = Vec::with_capacity(count);
    for _ in 0..count {
        downtimes.push(r.i64()?);
    }
    r.finish()?;
    Ok(FailureColumns::from_raw_parts(
        times,
        nodes,
        roots,
        subs,
        downtimes,
        config.nodes,
        config.start,
    )?)
}

fn decode_jobs(bytes: &[u8], config: &SystemConfig) -> Result<Vec<JobRecord>, SnapshotError> {
    let mut r = Reader::new(bytes, "jobs");
    let count = r.count(8 + 4 + 8 + 8 + 8 + 4 + 4)?;
    let mut jobs: Vec<JobRecord> = Vec::with_capacity(count);
    for _ in 0..count {
        let job_id = JobId::new(r.u64()?);
        let user = UserId::new(r.u32()?);
        let submit = Timestamp::from_seconds(r.i64()?);
        let dispatch = Timestamp::from_seconds(r.i64()?);
        let end = Timestamp::from_seconds(r.i64()?);
        let procs = r.u32()?;
        let node_count = r.count(4)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(NodeId::new(r.u32()?));
        }
        if let Some(prev) = jobs.last() {
            if prev.dispatch > dispatch {
                return Err(SnapshotError::Corrupt(
                    "jobs not sorted by dispatch time".into(),
                ));
            }
        }
        jobs.push(JobRecord {
            system: config.id,
            job_id,
            user,
            submit,
            dispatch,
            end,
            procs,
            nodes,
        });
    }
    r.finish()?;
    Ok(jobs)
}

fn decode_temperatures(
    bytes: &[u8],
    config: &SystemConfig,
) -> Result<Vec<TemperatureSample>, SnapshotError> {
    let mut r = Reader::new(bytes, "temperatures");
    let count = r.count(4 + 8 + 8)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(r.u32()?);
    }
    let mut times = Vec::with_capacity(count);
    for _ in 0..count {
        times.push(r.i64()?);
    }
    if times.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt(
            "temperature samples not sorted by time".into(),
        ));
    }
    let mut samples = Vec::with_capacity(count);
    for i in 0..count {
        samples.push(TemperatureSample {
            system: config.id,
            node: NodeId::new(nodes[i]),
            time: Timestamp::from_seconds(times[i]),
            celsius: r.f64()?,
        });
    }
    r.finish()?;
    Ok(samples)
}

fn decode_maintenance(
    bytes: &[u8],
    config: &SystemConfig,
) -> Result<Vec<MaintenanceRecord>, SnapshotError> {
    let mut r = Reader::new(bytes, "maintenance");
    let count = r.count(4 + 8 + 1)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(r.u32()?);
    }
    let mut times = Vec::with_capacity(count);
    for _ in 0..count {
        times.push(r.i64()?);
    }
    if times
        .iter()
        .zip(&nodes)
        .zip(times.iter().zip(&nodes).skip(1))
        .any(|((t0, n0), (t1, n1))| (t0, n0) > (t1, n1))
    {
        return Err(SnapshotError::Corrupt(
            "maintenance not sorted by (time, node)".into(),
        ));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let flags = r.u8()?;
        records.push(MaintenanceRecord {
            system: config.id,
            node: NodeId::new(nodes[i]),
            time: Timestamp::from_seconds(times[i]),
            hardware_related: flags & 0b10 != 0,
            scheduled: flags & 0b01 != 0,
        });
    }
    r.finish()?;
    Ok(records)
}

fn decode_layout(bytes: &[u8]) -> Result<MachineLayout, SnapshotError> {
    let mut r = Reader::new(bytes, "layout");
    let count = r.count(4 + 2 + 1 + 2 + 2)?;
    let mut layout = MachineLayout::new();
    for _ in 0..count {
        let node = NodeId::new(r.u32()?);
        let rack = RackId::new(r.u16()?);
        let position_in_rack = r.u8()?;
        let room_row = r.u16()?;
        let room_col = r.u16()?;
        layout.place(
            node,
            NodeLocation {
                rack,
                position_in_rack,
                room_row,
                room_col,
            },
        );
    }
    r.finish()?;
    Ok(layout)
}

fn decode_neutron(bytes: &[u8]) -> Result<Vec<NeutronSample>, SnapshotError> {
    let mut r = Reader::new(bytes, "neutron");
    let count = r.count(8 + 8)?;
    let mut times = Vec::with_capacity(count);
    for _ in 0..count {
        times.push(r.i64()?);
    }
    let mut samples = Vec::with_capacity(count);
    for &time in &times {
        samples.push(NeutronSample {
            time: Timestamp::from_seconds(time),
            counts_per_minute: r.f64()?,
        });
    }
    r.finish()?;
    Ok(samples)
}

/// Decodes a trace from snapshot bytes.
///
/// # Errors
///
/// Any structural damage — bad magic, unsupported version, out-of-range
/// section, checksum or fingerprint mismatch, undecodable payload —
/// yields a typed [`SnapshotError`]; this function never panics on
/// hostile input.
pub fn decode_snapshot(buf: &[u8]) -> Result<Trace, SnapshotError> {
    let sections = parse_sections(buf)?;
    let find = |id: u32| sections.iter().find(|(sid, _)| *sid == id).map(|(_, s)| s);

    let systems_section = find(section_id(KIND_SYSTEMS, 0))
        .ok_or_else(|| SnapshotError::Corrupt("missing systems section".into()))?;
    let configs = decode_systems(systems_section.bytes)?;

    let mut trace = Trace::new();
    for config in configs {
        let sys = config.id.raw();
        let failures = find(section_id(KIND_FAILURES, sys)).ok_or_else(|| {
            SnapshotError::Corrupt(format!("missing failures section for {}", config.id))
        })?;
        let columns = decode_failures(failures.bytes, &config)?;
        let jobs = match find(section_id(KIND_JOBS, sys)) {
            Some(s) => decode_jobs(s.bytes, &config)?,
            None => Vec::new(),
        };
        let temperatures = match find(section_id(KIND_TEMPERATURES, sys)) {
            Some(s) => decode_temperatures(s.bytes, &config)?,
            None => Vec::new(),
        };
        let maintenance = match find(section_id(KIND_MAINTENANCE, sys)) {
            Some(s) => decode_maintenance(s.bytes, &config)?,
            None => Vec::new(),
        };
        let layout = match find(section_id(KIND_LAYOUT, sys)) {
            Some(s) => Some(decode_layout(s.bytes)?),
            None => None,
        };
        trace.insert_system(SystemTrace::from_parts(
            config,
            columns,
            jobs,
            temperatures,
            maintenance,
            layout,
        ));
    }
    if let Some(s) = find(section_id(KIND_NEUTRON, 0)) {
        let samples = decode_neutron(s.bytes)?;
        trace.set_neutron_samples(samples);
    }

    let expected = header_fingerprint(buf)?;
    let actual = content_fingerprint(&trace);
    if expected != actual {
        return Err(SnapshotError::Corrupt(format!(
            "content fingerprint mismatch: header {expected:016x}, decoded {actual:016x}"
        )));
    }
    Ok(trace)
}

/// Loads a trace from a snapshot file with a single bulk read.
///
/// # Errors
///
/// [`SnapshotError`] on I/O failure or any structural damage; see
/// [`decode_snapshot`].
pub fn read_snapshot<P: AsRef<Path>>(path: P) -> Result<Trace, SnapshotError> {
    let _span = hpcfail_obs::span("store.snapshot.load");
    let buf = std::fs::read(path)?;
    hpcfail_obs::counter("store.snapshot.bytes_read").add(buf.len() as u64);
    let trace = decode_snapshot(&buf)?;
    hpcfail_obs::counter("store.snapshot.loaded").inc();
    Ok(trace)
}

/// Loads a snapshot, converting any failure into a typed
/// [`SnapshotFallback`] audit entry (and bumping the
/// `store.snapshot.fallback` counter) instead of an error, so boot paths
/// can drop to CSV ingest without panicking.
pub fn try_read_snapshot<P: AsRef<Path>>(path: P) -> SnapshotLoad {
    let path = path.as_ref();
    match read_snapshot(path) {
        Ok(trace) => SnapshotLoad::Loaded(Box::new(trace)),
        Err(error) => {
            hpcfail_obs::counter("store.snapshot.fallback").inc();
            SnapshotLoad::Unusable(SnapshotFallback {
                path: path.to_path_buf(),
                error,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SystemTraceBuilder;

    fn sample_trace() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(3),
            name: "snap-test".into(),
            nodes: 6,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(30.0),
            has_layout: true,
            has_job_log: true,
            has_temperature: true,
        };
        let sys = config.id;
        let mut b = SystemTraceBuilder::new(config);
        b.push_failure(
            FailureRecord::new(
                sys,
                NodeId::new(2),
                Timestamp::from_days(3.5),
                RootCause::Hardware,
                SubCause::Hardware(HardwareComponent::MemoryDimm),
            )
            .with_downtime(Duration::from_hours(2.0)),
        );
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(0),
            Timestamp::from_days(10.0),
            RootCause::Software,
            SubCause::Software(SoftwareCause::Pfs),
        ));
        b.push_job(JobRecord {
            system: sys,
            job_id: JobId::new(11),
            user: UserId::new(4),
            submit: Timestamp::from_days(1.0),
            dispatch: Timestamp::from_days(1.25),
            end: Timestamp::from_days(2.0),
            procs: 8,
            nodes: vec![NodeId::new(1), NodeId::new(2)],
        });
        b.push_temperature(TemperatureSample {
            system: sys,
            node: NodeId::new(2),
            time: Timestamp::from_days(5.0),
            celsius: 41.5,
        });
        b.push_maintenance(MaintenanceRecord {
            system: sys,
            node: NodeId::new(3),
            time: Timestamp::from_days(8.0),
            hardware_related: true,
            scheduled: false,
        });
        b.layout(
            (0..6u32)
                .map(|n| {
                    (
                        NodeId::new(n),
                        NodeLocation {
                            rack: RackId::new((n / 3) as u16),
                            position_in_rack: (n % 3 + 1) as u8,
                            room_row: 0,
                            room_col: (n / 3) as u16,
                        },
                    )
                })
                .collect(),
        );
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace.set_neutron_samples(vec![
            NeutronSample {
                time: Timestamp::from_days(1.0),
                counts_per_minute: 4100.0,
            },
            NeutronSample {
                time: Timestamp::from_days(15.0),
                counts_per_minute: 4350.5,
            },
        ]);
        trace
    }

    fn traces_equal(a: &Trace, b: &Trace) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.neutron_samples(), b.neutron_samples());
        for (sa, sb) in a.systems().zip(b.systems()) {
            assert_eq!(sa.config(), sb.config());
            assert_eq!(sa.failures(), sb.failures());
            assert_eq!(sa.jobs(), sb.jobs());
            assert_eq!(sa.temperatures(), sb.temperatures());
            assert_eq!(sa.maintenance(), sb.maintenance());
            assert_eq!(sa.layout(), sb.layout());
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let bytes = snapshot_bytes(&trace);
        let decoded = decode_snapshot(&bytes).expect("decodes");
        traces_equal(&trace, &decoded);
        assert_eq!(content_fingerprint(&trace), content_fingerprint(&decoded));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let trace = sample_trace();
        let mut bytes = snapshot_bytes(&trace);
        assert!(matches!(
            decode_snapshot(b"not a snapshot"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(decode_snapshot(&[]), Err(SnapshotError::BadMagic)));
        // Bump the version field (right after the magic).
        bytes[8] = 0xfe;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_benign() {
        // Flipping any byte must never panic, and when the decode
        // succeeds anyway the content fingerprint must still match
        // (i.e. silent corruption is impossible).
        let trace = sample_trace();
        let bytes = snapshot_bytes(&trace);
        let original = content_fingerprint(&trace);
        let mut rejected = 0usize;
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xa5;
            match decode_snapshot(&mutated) {
                Err(_) => rejected += 1,
                Ok(decoded) => {
                    assert_eq!(
                        content_fingerprint(&decoded),
                        original,
                        "silent corruption after flipping byte {i}"
                    );
                }
            }
        }
        // The checksums make essentially every flip detectable.
        assert!(
            rejected >= bytes.len() - 1,
            "only {rejected}/{} flips rejected",
            bytes.len()
        );
    }

    #[test]
    fn truncation_at_any_length_is_rejected_without_panic() {
        let trace = sample_trace();
        let bytes = snapshot_bytes(&trace);
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
    }

    #[test]
    fn file_round_trip_and_typed_fallback() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join(format!("hpcsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.hpcsnap");
        write_snapshot(&path, &trace).expect("writes");
        let loaded = read_snapshot(&path).expect("reads");
        traces_equal(&trace, &loaded);
        match try_read_snapshot(&path) {
            SnapshotLoad::Loaded(t) => traces_equal(&trace, &t),
            SnapshotLoad::Unusable(f) => panic!("unexpected fallback: {f}"),
        }

        // A missing file becomes a typed audit entry, not a panic.
        match try_read_snapshot(dir.join("missing.hpcsnap")) {
            SnapshotLoad::Unusable(f) => {
                assert!(matches!(f.error, SnapshotError::Io(_)));
                assert!(f.to_string().contains("falling back to CSV"));
            }
            SnapshotLoad::Loaded(_) => panic!("loaded a missing file"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new();
        let bytes = snapshot_bytes(&trace);
        let decoded = decode_snapshot(&bytes).expect("decodes");
        assert!(decoded.is_empty());
        assert_eq!(content_fingerprint(&trace), content_fingerprint(&decoded));
    }
}
