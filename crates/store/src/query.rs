//! Window queries and empirical baseline probabilities.
//!
//! The paper's baseline — "the probability that a random node fails in a
//! random day/week/month" — is computed empirically: over every
//! day-aligned window start in a node's observation span, the fraction
//! of windows containing at least one matching event. This module
//! implements that counting in `O(#events)` per node via interval
//! unions rather than scanning every day.

use crate::columns::ClassCode;
use crate::trace::SystemTrace;
use hpcfail_types::prelude::*;

/// Hit/total counts from window counting; convert to a proportion in
/// the statistics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Windows containing at least one matching event.
    pub hits: u64,
    /// Total windows examined.
    pub total: u64,
}

impl WindowCounts {
    /// Adds another count.
    pub fn merge(self, other: WindowCounts) -> WindowCounts {
        WindowCounts {
            hits: self.hits + other.hits,
            total: self.total + other.total,
        }
    }

    /// The empirical probability, or 0 when no windows were examined.
    pub fn probability(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Per-node event views over one system trace.
#[derive(Debug, Clone, Copy)]
pub struct NodeEvents<'a> {
    system: &'a SystemTrace,
}

impl<'a> NodeEvents<'a> {
    /// Creates a view over `system`.
    pub fn new(system: &'a SystemTrace) -> Self {
        NodeEvents { system }
    }

    /// Sorted, deduplicated day indices (relative to the observation
    /// start) on which `node` had a failure of `class`.
    ///
    /// Reads the precomputed day column through the per-node postings
    /// index — no row structs are materialized and no per-event day
    /// arithmetic runs.
    pub fn failure_days(&self, node: NodeId, class: FailureClass) -> Vec<i64> {
        let mut days = Vec::new();
        let (scanned, matched) =
            self.system
                .failure_columns()
                .collect_node_days(node, ClassCode::new(class), &mut days);
        record_scan(scanned as u64, matched as u64);
        // The gather is already non-decreasing; this is a dedup pass.
        sorted_unique_days(days)
    }

    /// Sorted, deduplicated day indices on which `node` had unscheduled
    /// hardware maintenance.
    pub fn unscheduled_hw_maintenance_days(&self, node: NodeId) -> Vec<i64> {
        let mut days = Vec::new();
        let (scanned, matched) = self
            .system
            .maintenance_columns()
            .collect_unsched_hw_days(node, &mut days);
        record_scan(scanned as u64, matched as u64);
        sorted_unique_days(days)
    }
}

/// Sorts and deduplicates a day vector, establishing the sorted-unique
/// contract that [`covered_window_starts`] requires.
///
/// The per-node iterators of [`SystemTrace`] yield events in time order
/// (the builder sorts by `(time, node)`), so the input is normally
/// already sorted and the sort is a near-linear verification pass — but
/// the contract must not depend on the iteration source.
pub fn sorted_unique_days(mut days: Vec<i64>) -> Vec<i64> {
    days.sort_unstable();
    days.dedup();
    days
}

/// Windows per node for a given observation length:
/// `observation_days - window_days + 1`, clamped at zero.
pub(crate) fn windows_per_node(observation_days: i64, window: Window) -> u64 {
    (observation_days - window.days() + 1).max(0) as u64
}

/// Feeds one filtered scan into the observability registry:
/// `store.rows_scanned` / `store.rows_matched` count rows, and
/// `store.filter_hit_rate` tracks the running matched/scanned ratio.
///
/// The published ratio is derived from one consistently captured pair
/// of totals (maintained under a lock), so concurrent scans can never
/// publish a transient matched > scanned ratio.
fn record_scan(scanned: u64, matched: u64) {
    if !hpcfail_obs::ENABLED {
        return;
    }
    hpcfail_obs::counter("store.rows_scanned").add(scanned);
    hpcfail_obs::counter("store.rows_matched").add(matched);
    static TOTALS: std::sync::Mutex<(u64, u64)> = std::sync::Mutex::new((0, 0));
    let (s, m) = {
        // Two plain additions can't leave the pair inconsistent, so
        // recover from poisoning instead of cascading a worker panic.
        let mut totals = TOTALS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        totals.0 += scanned;
        totals.1 += matched;
        *totals
    };
    if s > 0 {
        hpcfail_obs::gauge("store.filter_hit_rate").set(m as f64 / s as f64);
    }
}

/// Number of day-aligned window starts `s` in `[0, total_days - window_days]`
/// whose window `[s, s + window_days)` contains at least one of the given
/// sorted event `days`.
///
/// Runs in `O(#days)` by unioning the per-event coverage intervals
/// `[day - window_days + 1, day]`.
///
/// # Panics
///
/// Panics if `window_days == 0` or `days` is not sorted.
pub fn covered_window_starts(days: &[i64], total_days: i64, window_days: i64) -> u64 {
    assert!(window_days > 0, "window must span at least one day");
    debug_assert!(
        days.windows(2).all(|w| w[0] <= w[1]),
        "event days must be sorted"
    );
    let max_start = total_days - window_days;
    if max_start < 0 {
        return 0;
    }
    let mut covered = 0i64;
    // Highest start index counted so far + 1 (so intervals never overlap).
    let mut next_free = 0i64;
    for &day in days {
        let lo = (day - window_days + 1).max(next_free).max(0);
        let hi = day.min(max_start);
        if hi >= lo {
            covered += hi - lo + 1;
            next_free = hi + 1;
        } else if day > max_start && next_free > max_start {
            break;
        }
    }
    covered as u64
}

/// Empirical baseline probabilities over one system.
#[derive(Debug, Clone, Copy)]
pub struct BaselineEstimator<'a> {
    system: &'a SystemTrace,
}

impl<'a> BaselineEstimator<'a> {
    /// Creates an estimator over `system`.
    pub fn new(system: &'a SystemTrace) -> Self {
        BaselineEstimator { system }
    }

    /// Windows per node: `observation_days - window_days + 1`, clamped
    /// at zero.
    fn windows_per_node(&self, window: Window) -> u64 {
        windows_per_node(self.system.config().observation_days(), window)
    }

    /// The probability that a random node has at least one failure of
    /// `class` in a random window of the given length, with the counts
    /// backing it.
    ///
    /// Scans the columnar postings with one reused day buffer: the
    /// per-node gather is already time-sorted (duplicates are tolerated
    /// by [`covered_window_starts`]), so the loop does no sorting and no
    /// per-node allocation.
    pub fn failure_probability(&self, class: FailureClass, window: Window) -> WindowCounts {
        let columns = self.system.failure_columns();
        let code = ClassCode::new(class);
        let total_days = self.system.config().observation_days();
        let per_node = self.windows_per_node(window);
        let mut counts = WindowCounts::default();
        let mut days = Vec::new();
        let (mut scanned, mut matched) = (0u64, 0u64);
        for node in self.system.nodes() {
            days.clear();
            let (s, m) = columns.collect_node_days(node, code, &mut days);
            scanned += s as u64;
            matched += m as u64;
            counts.hits += covered_window_starts(&days, total_days, window.days());
            counts.total += per_node;
        }
        record_scan(scanned, matched);
        counts
    }

    /// Baseline probability of unscheduled hardware maintenance in a
    /// random window.
    pub fn maintenance_probability(&self, window: Window) -> WindowCounts {
        let columns = self.system.maintenance_columns();
        let total_days = self.system.config().observation_days();
        let per_node = self.windows_per_node(window);
        let mut counts = WindowCounts::default();
        let mut days = Vec::new();
        let (mut scanned, mut matched) = (0u64, 0u64);
        for node in self.system.nodes() {
            days.clear();
            let (s, m) = columns.collect_unsched_hw_days(node, &mut days);
            scanned += s as u64;
            matched += m as u64;
            counts.hits += covered_window_starts(&days, total_days, window.days());
            counts.total += per_node;
        }
        record_scan(scanned, matched);
        counts
    }

    /// Baseline probability for a single node (used by the Section IV
    /// node-0-versus-rest comparison).
    pub fn node_failure_probability(
        &self,
        node: NodeId,
        class: FailureClass,
        window: Window,
    ) -> WindowCounts {
        let events = NodeEvents::new(self.system);
        let total_days = self.system.config().observation_days();
        let days = events.failure_days(node, class);
        WindowCounts {
            hits: covered_window_starts(&days, total_days, window.days()),
            total: self.windows_per_node(window),
        }
    }

    /// Baseline probability over a subset of nodes.
    pub fn subset_failure_probability(
        &self,
        nodes: &[NodeId],
        class: FailureClass,
        window: Window,
    ) -> WindowCounts {
        nodes
            .iter()
            .map(|&n| self.node_failure_probability(n, class, window))
            .fold(WindowCounts::default(), WindowCounts::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SystemTraceBuilder;

    fn config(nodes: u32, days: f64) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(1),
            name: "t".into(),
            nodes,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }
    }

    fn failure(node: u32, day: f64) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node),
            Timestamp::from_days(day),
            RootCause::Hardware,
            SubCause::None,
        )
    }

    #[test]
    fn covered_starts_single_event() {
        // 10 days, window of 3, event on day 5: starts 3, 4, 5 covered.
        assert_eq!(covered_window_starts(&[5], 10, 3), 3);
        // Event on day 0: only start 0.
        assert_eq!(covered_window_starts(&[0], 10, 3), 1);
        // Event on last day 9: starts 7 only (max start = 7).
        assert_eq!(covered_window_starts(&[9], 10, 3), 1);
    }

    #[test]
    fn covered_starts_overlapping_events() {
        // Events on days 4 and 5, window 3: starts {2,3,4} ∪ {3,4,5} = 4.
        assert_eq!(covered_window_starts(&[4, 5], 10, 3), 4);
        // Same day twice after dedup would be [4]; duplicate input tolerated.
        assert_eq!(covered_window_starts(&[4, 4], 10, 3), 3);
    }

    #[test]
    fn covered_starts_disjoint_events() {
        // Window 2, max start 8. Day 0 covers start {0}; day 9 covers
        // starts [8, 9] clipped to {8}. Total 2.
        assert_eq!(covered_window_starts(&[0, 9], 10, 2), 2);
    }

    #[test]
    fn covered_starts_window_exceeds_span() {
        assert_eq!(covered_window_starts(&[1], 5, 7), 0);
        assert_eq!(covered_window_starts(&[], 10, 3), 0);
    }

    #[test]
    fn covered_starts_every_window_hit() {
        // Events every day: all starts covered.
        let days: Vec<i64> = (0..30).collect();
        assert_eq!(covered_window_starts(&days, 30, 7), 24);
    }

    #[test]
    fn baseline_single_failure_week() {
        // 100-day trace, 1 node, 1 failure at day 50, weekly window:
        // 94 window starts, 7 of them cover day 50.
        let mut b = SystemTraceBuilder::new(config(1, 100.0));
        b.push_failure(failure(0, 50.5));
        let t = b.build();
        let counts =
            BaselineEstimator::new(&t).failure_probability(FailureClass::Any, Window::Week);
        assert_eq!(counts.total, 94);
        assert_eq!(counts.hits, 7);
        assert!((counts.probability() - 7.0 / 94.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_scales_with_nodes() {
        let mut b = SystemTraceBuilder::new(config(10, 100.0));
        b.push_failure(failure(3, 20.0));
        let t = b.build();
        let day = BaselineEstimator::new(&t).failure_probability(FailureClass::Any, Window::Day);
        assert_eq!(day.total, 1000);
        assert_eq!(day.hits, 1);
    }

    #[test]
    fn baseline_class_filtering() {
        let mut b = SystemTraceBuilder::new(config(1, 50.0));
        b.push_failure(failure(0, 10.0)); // hardware
        let t = b.build();
        let est = BaselineEstimator::new(&t);
        assert_eq!(
            est.failure_probability(FailureClass::Root(RootCause::Network), Window::Day)
                .hits,
            0
        );
        assert_eq!(
            est.failure_probability(FailureClass::Root(RootCause::Hardware), Window::Day)
                .hits,
            1
        );
    }

    #[test]
    fn node_and_subset_baselines() {
        let mut b = SystemTraceBuilder::new(config(3, 50.0));
        b.push_failure(failure(0, 10.0));
        b.push_failure(failure(2, 20.0));
        let t = b.build();
        let est = BaselineEstimator::new(&t);
        let n0 = est.node_failure_probability(NodeId::new(0), FailureClass::Any, Window::Day);
        assert_eq!(n0.hits, 1);
        assert_eq!(n0.total, 50);
        let rest = est.subset_failure_probability(
            &[NodeId::new(1), NodeId::new(2)],
            FailureClass::Any,
            Window::Day,
        );
        assert_eq!(rest.hits, 1);
        assert_eq!(rest.total, 100);
    }

    #[test]
    fn maintenance_baseline() {
        let mut b = SystemTraceBuilder::new(config(1, 50.0));
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(0),
            time: Timestamp::from_days(25.0),
            hardware_related: true,
            scheduled: false,
        });
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(0),
            time: Timestamp::from_days(30.0),
            hardware_related: false,
            scheduled: false,
        });
        let t = b.build();
        let counts = BaselineEstimator::new(&t).maintenance_probability(Window::Day);
        assert_eq!(counts.hits, 1); // only the hardware-related one
    }

    #[test]
    fn sorted_unique_days_handles_out_of_order_input() {
        // Out-of-order iteration with duplicates — the shape a non-builder
        // source (or a future index change) could feed the day pipeline.
        assert_eq!(
            sorted_unique_days(vec![9, 3, 3, 7, 1, 9, 1]),
            vec![1, 3, 7, 9]
        );
        assert_eq!(sorted_unique_days(Vec::new()), Vec::<i64>::new());
    }

    #[test]
    fn failure_days_sorted_unique_from_out_of_order_pushes() {
        // Records pushed far out of time order; both day paths must come
        // back sorted and deduplicated regardless.
        let mut b = SystemTraceBuilder::new(config(1, 100.0));
        for day in [50.2, 10.0, 50.8, 30.0, 10.5] {
            b.push_failure(failure(0, day));
        }
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(0),
            time: Timestamp::from_days(40.0),
            hardware_related: true,
            scheduled: false,
        });
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(0),
            time: Timestamp::from_days(20.0),
            hardware_related: true,
            scheduled: false,
        });
        let t = b.build();
        let events = NodeEvents::new(&t);
        let days = events.failure_days(NodeId::new(0), FailureClass::Any);
        assert_eq!(days, vec![10, 30, 50]);
        let maint = events.unscheduled_hw_maintenance_days(NodeId::new(0));
        assert_eq!(maint, vec![20, 40]);
    }

    #[test]
    fn window_counts_merge_and_probability() {
        let a = WindowCounts { hits: 2, total: 10 };
        let b = WindowCounts { hits: 3, total: 10 };
        let m = a.merge(b);
        assert_eq!(m, WindowCounts { hits: 5, total: 20 });
        assert!((m.probability() - 0.25).abs() < 1e-12);
        assert_eq!(WindowCounts::default().probability(), 0.0);
    }
}
