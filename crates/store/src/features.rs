//! Derived per-node features: usage, temperature aggregates, and the
//! Table I feature rows feeding the paper's regressions.

use crate::trace::SystemTrace;
use hpcfail_types::prelude::*;
use std::fmt;

/// Why a per-node feature could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureError {
    /// The node id is outside the system's configured node range.
    NoSuchNode(NodeId),
    /// The node exists but the trace has no temperature samples for it.
    NoSamples(NodeId),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::NoSuchNode(node) => {
                write!(f, "node {} is outside the system's node range", node.raw())
            }
            FeatureError::NoSamples(node) => {
                write!(f, "node {} has no temperature samples", node.raw())
            }
        }
    }
}

impl std::error::Error for FeatureError {}

/// Per-node usage metrics (Section V).
///
/// A node counts as *utilized* whenever at least one job is assigned to
/// it; `utilization` is the fraction of the observation span the node
/// was utilized, and `num_jobs` the number of jobs scheduled on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeUsage {
    /// The node.
    pub node: NodeId,
    /// Jobs that included this node.
    pub num_jobs: u64,
    /// Fraction of the observation span with at least one assigned job,
    /// in `[0, 1]`.
    pub utilization: f64,
    /// Total busy time (union of job intervals, clipped to the
    /// observation span).
    pub busy: Duration,
}

/// Computes [`NodeUsage`] for every node of a system from its job log.
///
/// Nodes with no jobs get zero usage. Job intervals extending outside
/// the observation period are clipped.
pub fn compute_usage(system: &SystemTrace) -> Vec<NodeUsage> {
    let config = system.config();
    let n = config.nodes as usize;
    let span = config.observation_span().as_seconds().max(1) as f64;
    let mut intervals: Vec<Vec<(i64, i64)>> = vec![Vec::new(); n];
    let mut num_jobs = vec![0u64; n];
    for job in system.jobs() {
        let lo = job.dispatch.max(config.start).as_seconds();
        let hi = job.end.min(config.end).as_seconds();
        for &node in &job.nodes {
            if node.index() < n {
                num_jobs[node.index()] += 1;
                if hi > lo {
                    intervals[node.index()].push((lo, hi));
                }
            }
        }
    }
    (0..n)
        .map(|i| {
            let busy = union_length(&mut intervals[i]);
            NodeUsage {
                node: NodeId::new(i as u32),
                num_jobs: num_jobs[i],
                utilization: busy as f64 / span,
                busy: Duration::from_seconds(busy),
            }
        })
        .collect()
}

/// Total length of the union of half-open intervals. Sorts in place.
fn union_length(intervals: &mut [(i64, i64)]) -> i64 {
    intervals.sort_unstable();
    let mut total = 0;
    let mut current: Option<(i64, i64)> = None;
    for &(lo, hi) in intervals.iter() {
        match current {
            Some((clo, chi)) if lo <= chi => current = Some((clo, chi.max(hi))),
            Some((clo, chi)) => {
                total += chi - clo;
                let _ = clo;
                current = Some((lo, hi));
            }
            None => current = Some((lo, hi)),
        }
    }
    if let Some((clo, chi)) = current {
        total += chi - clo;
    }
    total
}

/// Aggregates of a node's temperature samples (Sections VIII and X).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureAggregate {
    /// The node.
    pub node: NodeId,
    /// Number of samples.
    pub samples: u64,
    /// Mean temperature (°C).
    pub avg: f64,
    /// Maximum temperature (°C).
    pub max: f64,
    /// Population variance of the samples.
    pub variance: f64,
    /// Samples above the 40 °C severe-temperature threshold
    /// (Table I's `num_hightemp`).
    pub num_hightemp: u64,
}

/// Computes [`TemperatureAggregate`] per node; nodes without samples
/// yield `None`.
pub fn compute_temperature(system: &SystemTrace) -> Vec<Option<TemperatureAggregate>> {
    let n = system.config().nodes as usize;
    let mut count = vec![0u64; n];
    let mut sum = vec![0.0f64; n];
    let mut sum_sq = vec![0.0f64; n];
    let mut max = vec![f64::NEG_INFINITY; n];
    let mut high = vec![0u64; n];
    for s in system.temperatures() {
        let i = s.node.index();
        if i >= n {
            continue;
        }
        count[i] += 1;
        sum[i] += s.celsius;
        sum_sq[i] += s.celsius * s.celsius;
        if s.celsius > max[i] {
            max[i] = s.celsius;
        }
        if s.is_high() {
            high[i] += 1;
        }
    }
    (0..n)
        .map(|i| {
            if count[i] == 0 {
                return None;
            }
            let c = count[i] as f64;
            let avg = sum[i] / c;
            Some(TemperatureAggregate {
                node: NodeId::new(i as u32),
                samples: count[i],
                avg,
                max: max[i],
                variance: (sum_sq[i] / c - avg * avg).max(0.0),
                num_hightemp: high[i],
            })
        })
        .collect()
}

/// The temperature aggregate of a single node, as a typed result.
///
/// Indexing the output of [`compute_temperature`] directly
/// (`aggs[i].unwrap()`) turns an out-of-range node or a node without
/// samples — both routine on sparse or zero-record systems — into an
/// index or unwrap panic. This accessor reports both conditions as a
/// [`FeatureError`] instead.
pub fn temperature_aggregate(
    system: &SystemTrace,
    node: NodeId,
) -> Result<TemperatureAggregate, FeatureError> {
    match compute_temperature(system).get(node.index()) {
        None => Err(FeatureError::NoSuchNode(node)),
        Some(None) => Err(FeatureError::NoSamples(node)),
        Some(Some(agg)) => Ok(*agg),
    }
}

/// One row of the Table I feature matrix for the joint regression
/// (Section X): the response (`fails_count`) plus every predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFeatures {
    /// The node.
    pub node: NodeId,
    /// Response: total outages in the node's lifetime.
    pub fails_count: u64,
    /// Average ambient temperature.
    pub avg_temp: f64,
    /// Maximum reported temperature.
    pub max_temp: f64,
    /// Variance of reported temperatures.
    pub temp_var: f64,
    /// Number of severe (>40 °C) temperature warnings.
    pub num_hightemp: f64,
    /// Number of jobs assigned to the node.
    pub num_jobs: f64,
    /// Node utilization in percent (0-100), matching the paper's scale.
    pub util: f64,
    /// Position in rack (1 = bottom, 5 = top).
    pub pir: f64,
}

/// Assembles the Table I feature matrix for a system.
///
/// Only nodes with temperature samples and a layout placement produce a
/// row, mirroring the paper's restriction to system 20.
pub fn node_features(system: &SystemTrace) -> Vec<NodeFeatures> {
    let usage = compute_usage(system);
    let temps = compute_temperature(system);
    let layout = system.layout();
    system
        .nodes()
        .filter_map(|node| {
            let i = node.index();
            let temp = temps.get(i).copied().flatten()?;
            let pir = layout?.location(node)?.position_in_rack;
            let u = usage[i];
            Some(NodeFeatures {
                node,
                fails_count: system.node_failure_count(node) as u64,
                avg_temp: temp.avg,
                max_temp: temp.max,
                temp_var: temp.variance,
                num_hightemp: temp.num_hightemp as f64,
                num_jobs: u.num_jobs as f64,
                util: u.utilization * 100.0,
                pir: pir as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SystemTraceBuilder;

    fn config(nodes: u32, days: f64) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(8),
            name: "t".into(),
            nodes,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: true,
            has_job_log: true,
            has_temperature: true,
        }
    }

    fn job(id: u64, nodes: &[u32], dispatch: f64, end: f64) -> JobRecord {
        JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(id),
            user: UserId::new(0),
            submit: Timestamp::from_days(dispatch - 0.1),
            dispatch: Timestamp::from_days(dispatch),
            end: Timestamp::from_days(end),
            procs: 4,
            nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
        }
    }

    #[test]
    fn usage_union_of_overlapping_jobs() {
        let mut b = SystemTraceBuilder::new(config(2, 100.0));
        // Node 0: jobs [10,20) and [15,30): union 20 days.
        b.push_job(job(1, &[0], 10.0, 20.0));
        b.push_job(job(2, &[0], 15.0, 30.0));
        let t = b.build();
        let usage = compute_usage(&t);
        assert_eq!(usage[0].num_jobs, 2);
        assert!((usage[0].utilization - 0.2).abs() < 1e-9);
        assert_eq!(usage[1].num_jobs, 0);
        assert_eq!(usage[1].utilization, 0.0);
    }

    #[test]
    fn usage_disjoint_jobs_sum() {
        let mut b = SystemTraceBuilder::new(config(1, 100.0));
        b.push_job(job(1, &[0], 0.0, 10.0));
        b.push_job(job(2, &[0], 50.0, 60.0));
        let t = b.build();
        let usage = compute_usage(&t);
        assert!((usage[0].utilization - 0.2).abs() < 1e-9);
        assert_eq!(usage[0].busy, Duration::from_days(20.0));
    }

    #[test]
    fn usage_clips_to_observation_span() {
        let mut b = SystemTraceBuilder::new(config(1, 100.0));
        b.push_job(job(1, &[0], 90.0, 150.0)); // runs past the end
        let t = b.build();
        let usage = compute_usage(&t);
        assert!((usage[0].utilization - 0.1).abs() < 1e-9);
    }

    #[test]
    fn usage_multi_node_job_counts_everywhere() {
        let mut b = SystemTraceBuilder::new(config(3, 10.0));
        b.push_job(job(1, &[0, 2], 0.0, 5.0));
        let t = b.build();
        let usage = compute_usage(&t);
        assert_eq!(usage[0].num_jobs, 1);
        assert_eq!(usage[1].num_jobs, 0);
        assert_eq!(usage[2].num_jobs, 1);
        assert!((usage[2].utilization - 0.5).abs() < 1e-9);
    }

    fn temp(node: u32, day: f64, c: f64) -> TemperatureSample {
        TemperatureSample {
            system: SystemId::new(8),
            node: NodeId::new(node),
            time: Timestamp::from_days(day),
            celsius: c,
        }
    }

    #[test]
    fn temperature_aggregates() {
        let mut b = SystemTraceBuilder::new(config(2, 10.0));
        b.push_temperature(temp(0, 1.0, 30.0));
        b.push_temperature(temp(0, 2.0, 34.0));
        b.push_temperature(temp(0, 3.0, 44.0));
        let t = b.build();
        let a = temperature_aggregate(&t, NodeId::new(0)).unwrap();
        assert_eq!(a.samples, 3);
        assert!((a.avg - 36.0).abs() < 1e-9);
        assert_eq!(a.max, 44.0);
        assert_eq!(a.num_hightemp, 1);
        let expected_var =
            ((30.0f64 - 36.0).powi(2) + (34.0f64 - 36.0).powi(2) + (44.0f64 - 36.0).powi(2)) / 3.0;
        assert!((a.variance - expected_var).abs() < 1e-9);
        assert_eq!(
            temperature_aggregate(&t, NodeId::new(1)),
            Err(FeatureError::NoSamples(NodeId::new(1)))
        );
    }

    #[test]
    fn zero_record_system_features_are_empty_not_panics() {
        // Regression: a system with no nodes and no records used to turn
        // aggregate lookups into index/unwrap panics.
        let t = SystemTraceBuilder::new(config(0, 10.0)).build();
        assert!(compute_usage(&t).is_empty());
        assert!(compute_temperature(&t).is_empty());
        assert!(node_features(&t).is_empty());
        assert_eq!(
            temperature_aggregate(&t, NodeId::new(0)),
            Err(FeatureError::NoSuchNode(NodeId::new(0)))
        );
    }

    #[test]
    fn node_features_requires_temp_and_layout() {
        let mut b = SystemTraceBuilder::new(config(2, 10.0));
        b.push_temperature(temp(0, 1.0, 30.0));
        b.push_temperature(temp(1, 1.0, 31.0));
        let mut layout = MachineLayout::new();
        layout.place(
            NodeId::new(0),
            NodeLocation {
                rack: RackId::new(0),
                position_in_rack: 3,
                room_row: 0,
                room_col: 0,
            },
        );
        b.layout(layout);
        b.push_failure(FailureRecord::new(
            SystemId::new(8),
            NodeId::new(0),
            Timestamp::from_days(5.0),
            RootCause::Hardware,
            SubCause::None,
        ));
        let t = b.build();
        let rows = node_features(&t);
        // Node 1 has no layout placement, so only node 0 yields a row.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node, NodeId::new(0));
        assert_eq!(rows[0].fails_count, 1);
        assert_eq!(rows[0].pir, 3.0);
        assert_eq!(rows[0].num_jobs, 0.0);
    }
}
