//! The trace store: immutable, indexed collections of records.
//!
//! Since the columnar refactor, failures are stored as timestamp-sorted
//! struct-of-arrays columns ([`crate::columns::FailureColumns`]); the
//! row-struct view behind [`SystemTrace::failures`] is materialized
//! lazily and cached, so existing consumers see exactly the records (and
//! record order) the pre-columnar layout produced.

use crate::columns::{ClassCode, FailureColumns, MaintenanceColumns};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Builder for a [`SystemTrace`]; collects records in any order, then
/// [`SystemTraceBuilder::build`] sorts and indexes them.
#[derive(Debug, Clone)]
pub struct SystemTraceBuilder {
    config: SystemConfig,
    failures: Vec<FailureRecord>,
    jobs: Vec<JobRecord>,
    temperatures: Vec<TemperatureSample>,
    maintenance: Vec<MaintenanceRecord>,
    layout: Option<MachineLayout>,
}

impl SystemTraceBuilder {
    /// Starts a trace for the given system.
    pub fn new(config: SystemConfig) -> Self {
        SystemTraceBuilder {
            config,
            failures: Vec::new(),
            jobs: Vec::new(),
            temperatures: Vec::new(),
            maintenance: Vec::new(),
            layout: None,
        }
    }

    /// Adds a failure record.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the record's system id or node index does
    /// not belong to this system.
    pub fn push_failure(&mut self, record: FailureRecord) -> &mut Self {
        debug_assert_eq!(record.system, self.config.id, "failure from wrong system");
        debug_assert!(
            record.node.index() < self.config.nodes as usize,
            "node {} out of range for {}-node system",
            record.node,
            self.config.nodes
        );
        self.failures.push(record);
        self
    }

    /// Adds a job record.
    pub fn push_job(&mut self, record: JobRecord) -> &mut Self {
        debug_assert_eq!(record.system, self.config.id, "job from wrong system");
        self.jobs.push(record);
        self
    }

    /// Adds a temperature sample.
    pub fn push_temperature(&mut self, sample: TemperatureSample) -> &mut Self {
        debug_assert_eq!(sample.system, self.config.id, "sample from wrong system");
        self.temperatures.push(sample);
        self
    }

    /// Adds a maintenance record.
    pub fn push_maintenance(&mut self, record: MaintenanceRecord) -> &mut Self {
        debug_assert_eq!(
            record.system, self.config.id,
            "maintenance from wrong system"
        );
        self.maintenance.push(record);
        self
    }

    /// Sets the machine-room layout.
    pub fn layout(&mut self, layout: MachineLayout) -> &mut Self {
        self.layout = Some(layout);
        self
    }

    /// Sorts, indexes and freezes the trace.
    pub fn build(self) -> SystemTrace {
        let SystemTraceBuilder {
            config,
            mut failures,
            mut jobs,
            mut temperatures,
            mut maintenance,
            layout,
        } = self;
        failures.sort_by_key(|f| (f.time, f.node));
        jobs.sort_by_key(|j| j.dispatch);
        temperatures.sort_by_key(|t| t.time);
        maintenance.sort_by_key(|m| (m.time, m.node));

        let columns = FailureColumns::from_records(&failures, config.nodes, config.start);
        let maint_columns =
            MaintenanceColumns::from_records(&maintenance, config.nodes, config.start);
        // The builder already owns the sorted rows; seed the lazy row
        // cache with them so the CSV/synthetic path never re-materializes.
        let rows = OnceLock::new();
        let _ = rows.set(failures);
        SystemTrace {
            config,
            columns,
            rows,
            jobs,
            temperatures,
            maintenance,
            maint_columns,
            layout,
            index: crate::index::TimelineIndex::new(),
        }
    }
}

/// One system's complete, indexed trace.
///
/// Records are sorted by time; per-node indexes give every node's
/// failures and maintenance events in time order.
#[derive(Debug, Clone)]
pub struct SystemTrace {
    config: SystemConfig,
    columns: FailureColumns,
    /// Lazily materialized row view of `columns`; seeded eagerly on the
    /// builder path, built on first access after a snapshot load.
    rows: OnceLock<Vec<FailureRecord>>,
    jobs: Vec<JobRecord>,
    temperatures: Vec<TemperatureSample>,
    maintenance: Vec<MaintenanceRecord>,
    maint_columns: MaintenanceColumns,
    layout: Option<MachineLayout>,
    /// Lazy caches of day vectors and pooled baselines; see
    /// [`crate::index`]. Cloning yields a cold index.
    pub(crate) index: crate::index::TimelineIndex,
}

impl SystemTrace {
    /// Assembles a trace from pre-validated columnar parts (the snapshot
    /// load path). `jobs`, `temperatures` and `maintenance` must already
    /// be in builder sort order.
    pub(crate) fn from_parts(
        config: SystemConfig,
        columns: FailureColumns,
        jobs: Vec<JobRecord>,
        temperatures: Vec<TemperatureSample>,
        maintenance: Vec<MaintenanceRecord>,
        layout: Option<MachineLayout>,
    ) -> SystemTrace {
        let maint_columns =
            MaintenanceColumns::from_records(&maintenance, config.nodes, config.start);
        SystemTrace {
            config,
            columns,
            rows: OnceLock::new(),
            jobs,
            temperatures,
            maintenance,
            maint_columns,
            layout,
            index: crate::index::TimelineIndex::new(),
        }
    }

    /// The system's static description.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The system id (shorthand for `config().id`).
    pub fn id(&self) -> SystemId {
        self.config.id
    }

    /// All failures, sorted by time.
    ///
    /// The row view is materialized from the columns on first access and
    /// cached; hot query kernels use [`SystemTrace::failure_columns`]
    /// directly and never pay for it.
    pub fn failures(&self) -> &[FailureRecord] {
        self.rows
            .get_or_init(|| self.columns.materialize(self.config.id))
    }

    /// The columnar failure storage: timestamp-sorted field arrays plus
    /// per-node postings.
    pub fn failure_columns(&self) -> &FailureColumns {
        &self.columns
    }

    /// Failures of one node, in time order.
    pub fn node_failures(&self, node: NodeId) -> impl Iterator<Item = &FailureRecord> + '_ {
        let rows = self.failures();
        self.columns
            .node_postings(node)
            .iter()
            .map(move |&i| &rows[i as usize])
    }

    /// Number of failures of one node.
    pub fn node_failure_count(&self, node: NodeId) -> usize {
        self.columns.node_event_count(node)
    }

    /// All jobs, sorted by dispatch time.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// All temperature samples, sorted by time.
    pub fn temperatures(&self) -> &[TemperatureSample] {
        &self.temperatures
    }

    /// All maintenance records, sorted by time.
    pub fn maintenance(&self) -> &[MaintenanceRecord] {
        &self.maintenance
    }

    /// Maintenance events of one node, in time order.
    pub fn node_maintenance(&self, node: NodeId) -> impl Iterator<Item = &MaintenanceRecord> + '_ {
        self.maint_columns
            .node_postings(node)
            .iter()
            .map(move |&i| &self.maintenance[i as usize])
    }

    /// The columnar maintenance view (postings and unscheduled-hardware
    /// day column).
    pub(crate) fn maintenance_columns(&self) -> &MaintenanceColumns {
        &self.maint_columns
    }

    /// The machine-room layout, if available.
    pub fn layout(&self) -> Option<&MachineLayout> {
        self.layout.as_ref()
    }

    /// Approximate heap bytes held by this system's event storage:
    /// the failure and maintenance columns, the row-struct vectors, and
    /// the materialized failure rows when present. Lazy index caches
    /// and the layout are excluded — the figure sizes the primary data,
    /// not transient caches.
    pub fn resident_bytes(&self) -> u64 {
        fn vec_bytes<T>(v: &[T]) -> u64 {
            std::mem::size_of_val(v) as u64
        }
        self.columns.resident_bytes()
            + self.maint_columns.resident_bytes()
            + vec_bytes(&self.jobs)
            + vec_bytes(&self.temperatures)
            + vec_bytes(&self.maintenance)
            + self.rows.get().map_or(0, |r| vec_bytes(r))
    }

    /// Iterates over all node ids of this system.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.config.nodes).map(NodeId::new)
    }

    /// `true` if `(t, t + window]` lies inside the observation period
    /// when anchored at `t` — i.e. the window is fully observed.
    pub fn window_observed(&self, t: Timestamp, window: Window) -> bool {
        t >= self.config.start
            && t.checked_add(window.duration())
                .is_some_and(|end| end <= self.config.end)
    }

    /// `true` if node has at least one failure of `class` in the
    /// half-open interval `(after, until]`.
    pub fn node_has_failure_in(
        &self,
        node: NodeId,
        class: FailureClass,
        after: Timestamp,
        until: Timestamp,
    ) -> bool {
        self.columns.any_in_window(
            node,
            ClassCode::new(class),
            after.as_seconds(),
            until.as_seconds(),
        )
    }

    /// Counts node failures of `class` in `(after, until]`.
    pub fn node_failures_in(
        &self,
        node: NodeId,
        class: FailureClass,
        after: Timestamp,
        until: Timestamp,
    ) -> usize {
        self.columns.count_in_window(
            node,
            ClassCode::new(class),
            after.as_seconds(),
            until.as_seconds(),
        )
    }

    /// A copy of this trace restricted to records in `[start, end)`,
    /// with the observation period clipped accordingly. Jobs are kept
    /// when they overlap the range; the layout is kept as-is.
    ///
    /// Useful for split-sample analyses (e.g. evaluating an alarm rule
    /// out of sample) and for excluding burn-in periods.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn restricted(&self, start: Timestamp, end: Timestamp) -> SystemTrace {
        assert!(start < end, "restricted range must be non-empty");
        let start = start.max(self.config.start);
        let end = end.min(self.config.end);
        let mut config = self.config.clone();
        config.start = start;
        config.end = end.max(start);
        let mut builder = SystemTraceBuilder::new(config);
        for f in self.failures() {
            if f.time >= start && f.time < end {
                builder.push_failure(*f);
            }
        }
        for j in &self.jobs {
            if j.dispatch < end && j.end > start {
                builder.push_job(j.clone());
            }
        }
        for t in &self.temperatures {
            if t.time >= start && t.time < end {
                builder.push_temperature(*t);
            }
        }
        for m in &self.maintenance {
            if m.time >= start && m.time < end {
                builder.push_maintenance(*m);
            }
        }
        if let Some(layout) = &self.layout {
            builder.layout(layout.clone());
        }
        builder.build()
    }

    /// `true` if node has at least one *unscheduled hardware* maintenance
    /// event in `(after, until]`.
    pub fn node_has_unscheduled_hw_maintenance_in(
        &self,
        node: NodeId,
        after: Timestamp,
        until: Timestamp,
    ) -> bool {
        self.maint_columns
            .any_unsched_hw_in_window(node, after.as_seconds(), until.as_seconds())
    }
}

/// The full data release: every system plus fleet-wide neutron samples.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    systems: BTreeMap<SystemId, SystemTrace>,
    neutron: Vec<NeutronSample>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Adds (or replaces) a system trace.
    pub fn insert_system(&mut self, system: SystemTrace) {
        self.systems.insert(system.id(), system);
    }

    /// Sets the neutron-monitor samples (sorted by time internally).
    pub fn set_neutron_samples(&mut self, mut samples: Vec<NeutronSample>) {
        samples.sort_by_key(|s| s.time);
        self.neutron = samples;
    }

    /// Looks up one system.
    pub fn system(&self, id: SystemId) -> Option<&SystemTrace> {
        self.systems.get(&id)
    }

    /// Iterates over all systems in id order.
    pub fn systems(&self) -> impl Iterator<Item = &SystemTrace> {
        self.systems.values()
    }

    /// Iterates over the systems of one hardware group.
    pub fn group_systems(&self, group: SystemGroup) -> impl Iterator<Item = &SystemTrace> {
        self.systems
            .values()
            .filter(move |s| s.config().group() == group)
    }

    /// The neutron-monitor samples, sorted by time.
    pub fn neutron_samples(&self) -> &[NeutronSample] {
        &self.neutron
    }

    /// Number of systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// `true` if the trace holds no systems.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Total failures across all systems.
    pub fn total_failures(&self) -> usize {
        self.systems
            .values()
            .map(|s| s.failure_columns().len())
            .sum()
    }

    /// Approximate heap bytes held by the trace's event storage (the
    /// sum of every system's [`SystemTrace::resident_bytes`] plus the
    /// neutron samples). Serving layers use this for residency budgets.
    pub fn resident_bytes(&self) -> u64 {
        self.systems
            .values()
            .map(SystemTrace::resident_bytes)
            .sum::<u64>()
            + std::mem::size_of_val(self.neutron.as_slice()) as u64
    }
}

#[cfg(test)]
mod resident_tests {
    use super::*;

    #[test]
    fn resident_bytes_track_event_volume() {
        let mut small = SystemTraceBuilder::new(tests::test_config(1, 4, 10.0));
        small.push_failure(FailureRecord::new(
            SystemId::new(1),
            NodeId::new(0),
            Timestamp::from_seconds(100),
            RootCause::Hardware,
            SubCause::None,
        ));
        let small = small.build();

        let mut large = SystemTraceBuilder::new(tests::test_config(2, 4, 10.0));
        for i in 0..100 {
            large.push_failure(FailureRecord::new(
                SystemId::new(2),
                NodeId::new(i % 4),
                Timestamp::from_seconds(i64::from(i) * 60),
                RootCause::Software,
                SubCause::None,
            ));
        }
        let large = large.build();

        assert!(small.resident_bytes() > 0);
        assert!(large.resident_bytes() > small.resident_bytes());

        let mut trace = Trace::new();
        trace.insert_system(small);
        let one = trace.resident_bytes();
        trace.insert_system(large);
        assert!(trace.resident_bytes() > one);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn test_config(id: u16, nodes: u32, days: f64) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(id),
            name: format!("test-{id}"),
            nodes,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(days),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }
    }

    fn failure(node: u32, day: f64, root: RootCause) -> FailureRecord {
        FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node),
            Timestamp::from_days(day),
            root,
            SubCause::None,
        )
    }

    fn build_simple() -> SystemTrace {
        let mut b = SystemTraceBuilder::new(test_config(1, 4, 100.0));
        b.push_failure(failure(2, 50.0, RootCause::Network));
        b.push_failure(failure(0, 10.0, RootCause::Hardware));
        b.push_failure(failure(2, 12.0, RootCause::Software));
        b.push_failure(failure(0, 10.5, RootCause::Hardware));
        b.build()
    }

    #[test]
    fn build_sorts_by_time() {
        let t = build_simple();
        let times: Vec<f64> = t.failures().iter().map(|f| f.time.as_days()).collect();
        assert_eq!(times, vec![10.0, 10.5, 12.0, 50.0]);
    }

    #[test]
    fn node_index_partition() {
        let t = build_simple();
        assert_eq!(t.node_failure_count(NodeId::new(0)), 2);
        assert_eq!(t.node_failure_count(NodeId::new(2)), 2);
        assert_eq!(t.node_failure_count(NodeId::new(1)), 0);
        assert_eq!(t.node_failure_count(NodeId::new(99)), 0);
        let node0: Vec<f64> = t
            .node_failures(NodeId::new(0))
            .map(|f| f.time.as_days())
            .collect();
        assert_eq!(node0, vec![10.0, 10.5]);
    }

    #[test]
    fn window_membership_half_open() {
        let t = build_simple();
        let node = NodeId::new(0);
        // (10.0, 10.5]: the 10.5 failure counts, the 10.0 trigger doesn't.
        assert!(t.node_has_failure_in(
            node,
            FailureClass::Any,
            Timestamp::from_days(10.0),
            Timestamp::from_days(10.5),
        ));
        // (10.5, 20.0]: nothing.
        assert!(!t.node_has_failure_in(
            node,
            FailureClass::Any,
            Timestamp::from_days(10.5),
            Timestamp::from_days(20.0),
        ));
    }

    #[test]
    fn window_class_filtering() {
        let t = build_simple();
        let node = NodeId::new(2);
        let after = Timestamp::from_days(0.0);
        let until = Timestamp::from_days(100.0);
        assert!(t.node_has_failure_in(node, FailureClass::Root(RootCause::Network), after, until));
        assert!(!t.node_has_failure_in(
            node,
            FailureClass::Root(RootCause::Hardware),
            after,
            until
        ));
        assert_eq!(t.node_failures_in(node, FailureClass::Any, after, until), 2);
    }

    #[test]
    fn window_observed_bounds() {
        let t = build_simple();
        assert!(t.window_observed(Timestamp::from_days(92.9), Window::Week));
        assert!(!t.window_observed(Timestamp::from_days(93.1), Window::Week));
        assert!(!t.window_observed(Timestamp::from_days(-0.1), Window::Day));
    }

    #[test]
    fn maintenance_index() {
        let mut b = SystemTraceBuilder::new(test_config(1, 2, 50.0));
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(1),
            time: Timestamp::from_days(5.0),
            hardware_related: true,
            scheduled: false,
        });
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(1),
            time: Timestamp::from_days(9.0),
            hardware_related: true,
            scheduled: true,
        });
        let t = b.build();
        assert!(t.node_has_unscheduled_hw_maintenance_in(
            NodeId::new(1),
            Timestamp::from_days(4.0),
            Timestamp::from_days(6.0),
        ));
        // The scheduled one must not count.
        assert!(!t.node_has_unscheduled_hw_maintenance_in(
            NodeId::new(1),
            Timestamp::from_days(8.0),
            Timestamp::from_days(10.0),
        ));
        assert_eq!(t.node_maintenance(NodeId::new(1)).count(), 2);
    }

    #[test]
    fn restricted_clips_records_and_span() {
        let t = build_simple();
        let slice = t.restricted(Timestamp::from_days(11.0), Timestamp::from_days(45.0));
        // Only the day-12 failure lies in [11, 45).
        assert_eq!(slice.failures().len(), 1);
        assert_eq!(slice.failures()[0].time, Timestamp::from_days(12.0));
        assert_eq!(slice.config().start, Timestamp::from_days(11.0));
        assert_eq!(slice.config().end, Timestamp::from_days(45.0));
        assert_eq!(slice.config().observation_days(), 34);
        // Original untouched.
        assert_eq!(t.failures().len(), 4);
    }

    #[test]
    fn restricted_clamps_to_observation() {
        let t = build_simple();
        let slice = t.restricted(Timestamp::from_days(-5.0), Timestamp::from_days(1000.0));
        assert_eq!(slice.config().start, Timestamp::EPOCH);
        assert_eq!(slice.config().end, Timestamp::from_days(100.0));
        assert_eq!(slice.failures().len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn restricted_rejects_empty_range() {
        let t = build_simple();
        let _ = t.restricted(Timestamp::from_days(10.0), Timestamp::from_days(10.0));
    }

    #[test]
    fn trace_grouping() {
        let mut trace = Trace::new();
        trace.insert_system(SystemTraceBuilder::new(test_config(1, 2, 10.0)).build());
        let mut numa = test_config(2, 2, 10.0);
        numa.hardware = HardwareClass::Numa;
        trace.insert_system(SystemTraceBuilder::new(numa).build());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.group_systems(SystemGroup::Group1).count(), 1);
        assert_eq!(trace.group_systems(SystemGroup::Group2).count(), 1);
        assert!(trace.system(SystemId::new(2)).is_some());
        assert!(trace.system(SystemId::new(3)).is_none());
    }

    #[test]
    fn neutron_samples_sorted() {
        let mut trace = Trace::new();
        trace.set_neutron_samples(vec![
            NeutronSample {
                time: Timestamp::from_days(2.0),
                counts_per_minute: 4000.0,
            },
            NeutronSample {
                time: Timestamp::from_days(1.0),
                counts_per_minute: 4100.0,
            },
        ]);
        let times: Vec<f64> = trace
            .neutron_samples()
            .iter()
            .map(|s| s.time.as_days())
            .collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }
}
