//! Struct-of-arrays columnar storage for failure and maintenance events.
//!
//! The row-struct view (`Vec<FailureRecord>`) is convenient for analyses
//! that want whole records, but the hot query kernels — per-node day
//! vectors, window membership tests, baseline estimation — only touch one
//! or two fields per event. This module stores each field in its own
//! timestamp-sorted array so those kernels scan contiguous primitive
//! columns instead of 48-byte row structs:
//!
//! - `times` / `nodes` / `roots` / `subs` / `downtimes` — the record
//!   fields, one array per field, all sorted by `(time, node)` in exactly
//!   the order [`crate::trace::SystemTraceBuilder::build`] established for
//!   rows (so materialized rows are byte-identical to the pre-columnar
//!   layout);
//! - `days` — the precomputed day index of each event relative to the
//!   system's observation start, so day-vector extraction is a gather
//!   instead of a per-event `div_euclid`;
//! - a CSR (compressed-sparse-row) postings index `node_ptr`/`node_post`
//!   mapping each node to its events in time order, replacing the
//!   pointer-chasing `Vec<Vec<u32>>` layout;
//! - `node_class_mask` — one bitmask per node recording which root-cause
//!   categories appear on that node at all, so class-restricted scans can
//!   skip nodes without touching their postings.
//!
//! Root and sub-causes are stored as compact integer codes
//! ([`root_code`], [`sub_code`]); class matching happens on the codes via
//! [`ClassCode`], never on materialized enums.

use hpcfail_types::prelude::*;
use hpcfail_types::time::SECONDS_PER_DAY;
use std::fmt;

/// Compact integer code for a [`RootCause`] (declaration order).
pub const fn root_code(root: RootCause) -> u8 {
    match root {
        RootCause::Environment => 0,
        RootCause::Hardware => 1,
        RootCause::HumanError => 2,
        RootCause::Network => 3,
        RootCause::Software => 4,
        RootCause::Undetermined => 5,
    }
}

/// Decodes a [`root_code`]; `None` for out-of-range codes.
pub const fn root_from_code(code: u8) -> Option<RootCause> {
    Some(match code {
        0 => RootCause::Environment,
        1 => RootCause::Hardware,
        2 => RootCause::HumanError,
        3 => RootCause::Network,
        4 => RootCause::Software,
        5 => RootCause::Undetermined,
        _ => return None,
    })
}

const SUB_NS_NONE: u16 = 0;
const SUB_NS_HW: u16 = 1 << 8;
const SUB_NS_SW: u16 = 2 << 8;
const SUB_NS_ENV: u16 = 3 << 8;

const fn hw_code(c: HardwareComponent) -> u16 {
    match c {
        HardwareComponent::Cpu => 0,
        HardwareComponent::MemoryDimm => 1,
        HardwareComponent::NodeBoard => 2,
        HardwareComponent::PowerSupply => 3,
        HardwareComponent::Fan => 4,
        HardwareComponent::MscBoard => 5,
        HardwareComponent::Midplane => 6,
        HardwareComponent::Nic => 7,
        HardwareComponent::Disk => 8,
        HardwareComponent::Other => 9,
    }
}

const fn sw_code(c: SoftwareCause) -> u16 {
    match c {
        SoftwareCause::Dst => 0,
        SoftwareCause::Pfs => 1,
        SoftwareCause::Cfs => 2,
        SoftwareCause::Os => 3,
        SoftwareCause::PatchInstall => 4,
        SoftwareCause::Other => 5,
    }
}

const fn env_code(c: EnvironmentCause) -> u16 {
    match c {
        EnvironmentCause::PowerOutage => 0,
        EnvironmentCause::PowerSpike => 1,
        EnvironmentCause::Ups => 2,
        EnvironmentCause::Chiller => 3,
        EnvironmentCause::Other => 4,
    }
}

/// Compact integer code for a [`SubCause`]: the high byte is the
/// namespace (none/hardware/software/environment), the low byte the
/// component within it.
pub const fn sub_code(sub: SubCause) -> u16 {
    match sub {
        SubCause::None => SUB_NS_NONE,
        SubCause::Hardware(c) => SUB_NS_HW | hw_code(c),
        SubCause::Software(c) => SUB_NS_SW | sw_code(c),
        SubCause::Environment(c) => SUB_NS_ENV | env_code(c),
    }
}

/// Decodes a [`sub_code`]; `None` for codes no [`SubCause`] produces.
pub fn sub_from_code(code: u16) -> Option<SubCause> {
    let low = code & 0xff;
    match code & 0xff00 {
        SUB_NS_NONE if low == 0 => Some(SubCause::None),
        SUB_NS_HW => Some(SubCause::Hardware(match low {
            0 => HardwareComponent::Cpu,
            1 => HardwareComponent::MemoryDimm,
            2 => HardwareComponent::NodeBoard,
            3 => HardwareComponent::PowerSupply,
            4 => HardwareComponent::Fan,
            5 => HardwareComponent::MscBoard,
            6 => HardwareComponent::Midplane,
            7 => HardwareComponent::Nic,
            8 => HardwareComponent::Disk,
            9 => HardwareComponent::Other,
            _ => return None,
        })),
        SUB_NS_SW => Some(SubCause::Software(match low {
            0 => SoftwareCause::Dst,
            1 => SoftwareCause::Pfs,
            2 => SoftwareCause::Cfs,
            3 => SoftwareCause::Os,
            4 => SoftwareCause::PatchInstall,
            5 => SoftwareCause::Other,
            _ => return None,
        })),
        SUB_NS_ENV => Some(SubCause::Environment(match low {
            0 => EnvironmentCause::PowerOutage,
            1 => EnvironmentCause::PowerSpike,
            2 => EnvironmentCause::Ups,
            3 => EnvironmentCause::Chiller,
            4 => EnvironmentCause::Other,
            _ => return None,
        })),
        _ => None,
    }
}

/// Downtime sentinel: `None` is stored as `-1` in the downtime column
/// (real downtimes are non-negative second counts).
pub const NO_DOWNTIME: i64 = -1;

/// A [`FailureClass`] compiled to the column codes, so per-event matching
/// is an integer compare instead of an enum walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassCode {
    /// Matches every event.
    Any,
    /// Matches events whose root-cause code equals the payload.
    Root(u8),
    /// Matches events whose sub-cause code equals the payload.
    Sub(u16),
}

impl ClassCode {
    /// Compiles a [`FailureClass`] to its column-code matcher.
    pub fn new(class: FailureClass) -> Self {
        match class {
            FailureClass::Any => ClassCode::Any,
            FailureClass::Root(r) => ClassCode::Root(root_code(r)),
            FailureClass::Hw(c) => ClassCode::Sub(sub_code(SubCause::Hardware(c))),
            FailureClass::Sw(c) => ClassCode::Sub(sub_code(SubCause::Software(c))),
            FailureClass::Env(c) => ClassCode::Sub(sub_code(SubCause::Environment(c))),
        }
    }

    /// `true` when the event with the given codes belongs to this class.
    #[inline]
    pub fn matches(self, root: u8, sub: u16) -> bool {
        match self {
            ClassCode::Any => true,
            ClassCode::Root(r) => root == r,
            ClassCode::Sub(s) => sub == s,
        }
    }
}

/// Error returned when raw column data (e.g. from a snapshot) fails
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnError(pub String);

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid column data: {}", self.0)
    }
}

impl std::error::Error for ColumnError {}

/// Timestamp-sorted struct-of-arrays storage for one system's failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureColumns {
    times: Vec<i64>,
    nodes: Vec<u32>,
    roots: Vec<u8>,
    subs: Vec<u16>,
    downtimes: Vec<i64>,
    days: Vec<i64>,
    node_ptr: Vec<u32>,
    node_post: Vec<u32>,
    node_class_mask: Vec<u8>,
}

impl FailureColumns {
    /// Builds columns from records already sorted by `(time, node)`.
    ///
    /// `node_count` is the system's node count; every record's node index
    /// must be below it (the trace builder enforces this upstream).
    /// `start` is the observation start used for the precomputed day
    /// column.
    pub fn from_records(records: &[FailureRecord], node_count: u32, start: Timestamp) -> Self {
        debug_assert!(
            records
                .windows(2)
                .all(|w| (w[0].time, w[0].node) <= (w[1].time, w[1].node)),
            "records must be sorted by (time, node)"
        );
        let start_secs = start.as_seconds();
        let mut cols = FailureColumns {
            times: Vec::with_capacity(records.len()),
            nodes: Vec::with_capacity(records.len()),
            roots: Vec::with_capacity(records.len()),
            subs: Vec::with_capacity(records.len()),
            downtimes: Vec::with_capacity(records.len()),
            days: Vec::with_capacity(records.len()),
            node_ptr: Vec::new(),
            node_post: Vec::new(),
            node_class_mask: Vec::new(),
        };
        for r in records {
            debug_assert!(r.node.index() < node_count as usize);
            cols.times.push(r.time.as_seconds());
            cols.nodes.push(r.node.raw());
            cols.roots.push(root_code(r.root_cause));
            cols.subs.push(sub_code(r.sub_cause));
            cols.downtimes
                .push(r.downtime.map_or(NO_DOWNTIME, |d| d.as_seconds()));
            cols.days
                .push((r.time.as_seconds() - start_secs).div_euclid(SECONDS_PER_DAY));
        }
        cols.build_postings(node_count);
        cols
    }

    /// Reassembles columns from raw arrays (the snapshot load path),
    /// validating codes, sortedness and node ranges, then rebuilding the
    /// derived day column and postings index.
    ///
    /// # Errors
    ///
    /// [`ColumnError`] when array lengths disagree, a code does not
    /// decode, a node index is out of range, or the arrays are not
    /// `(time, node)`-sorted.
    pub fn from_raw_parts(
        times: Vec<i64>,
        nodes: Vec<u32>,
        roots: Vec<u8>,
        subs: Vec<u16>,
        downtimes: Vec<i64>,
        node_count: u32,
        start: Timestamp,
    ) -> Result<Self, ColumnError> {
        let len = times.len();
        if nodes.len() != len || roots.len() != len || subs.len() != len || downtimes.len() != len {
            return Err(ColumnError(format!(
                "column length mismatch: times {len}, nodes {}, roots {}, subs {}, downtimes {}",
                nodes.len(),
                roots.len(),
                subs.len(),
                downtimes.len()
            )));
        }
        for (i, &code) in roots.iter().enumerate() {
            if root_from_code(code).is_none() {
                return Err(ColumnError(format!(
                    "bad root-cause code {code} at row {i}"
                )));
            }
        }
        for (i, &code) in subs.iter().enumerate() {
            if sub_from_code(code).is_none() {
                return Err(ColumnError(format!("bad sub-cause code {code} at row {i}")));
            }
        }
        for (i, (&root, &sub)) in roots.iter().zip(&subs).enumerate() {
            let consistent = sub_from_code(sub)
                .zip(root_from_code(root))
                .is_some_and(|(s, r)| s.consistent_with(r));
            if !consistent {
                return Err(ColumnError(format!(
                    "sub-cause code {sub} inconsistent with root code {root} at row {i}"
                )));
            }
        }
        for (i, &node) in nodes.iter().enumerate() {
            if node >= node_count {
                return Err(ColumnError(format!(
                    "node {node} out of range (system has {node_count} nodes) at row {i}"
                )));
            }
        }
        for (i, &dt) in downtimes.iter().enumerate() {
            if dt < NO_DOWNTIME {
                return Err(ColumnError(format!("bad downtime {dt} at row {i}")));
            }
        }
        if times
            .iter()
            .zip(&nodes)
            .zip(times.iter().zip(&nodes).skip(1))
            .any(|((t0, n0), (t1, n1))| (t0, n0) > (t1, n1))
        {
            return Err(ColumnError("rows not sorted by (time, node)".into()));
        }
        let start_secs = start.as_seconds();
        let days = times
            .iter()
            .map(|t| (t - start_secs).div_euclid(SECONDS_PER_DAY))
            .collect();
        let mut cols = FailureColumns {
            times,
            nodes,
            roots,
            subs,
            downtimes,
            days,
            node_ptr: Vec::new(),
            node_post: Vec::new(),
            node_class_mask: Vec::new(),
        };
        cols.build_postings(node_count);
        Ok(cols)
    }

    fn build_postings(&mut self, node_count: u32) {
        let n = node_count as usize;
        let mut counts = vec![0u32; n + 1];
        for &node in &self.nodes {
            counts[node as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut post = vec![0u32; self.nodes.len()];
        let mut cursor = counts.clone();
        for (i, &node) in self.nodes.iter().enumerate() {
            let slot = &mut cursor[node as usize];
            post[*slot as usize] = i as u32;
            *slot += 1;
        }
        let mut mask = vec![0u8; n];
        for (&node, &root) in self.nodes.iter().zip(&self.roots) {
            mask[node as usize] |= 1 << root;
        }
        self.node_ptr = counts;
        self.node_post = post;
        self.node_class_mask = mask;
    }

    /// Heap bytes held by the column arrays (primary storage plus the
    /// derived day column and postings index).
    pub fn resident_bytes(&self) -> u64 {
        (std::mem::size_of_val(self.times.as_slice())
            + std::mem::size_of_val(self.nodes.as_slice())
            + std::mem::size_of_val(self.roots.as_slice())
            + std::mem::size_of_val(self.subs.as_slice())
            + std::mem::size_of_val(self.downtimes.as_slice())
            + std::mem::size_of_val(self.days.as_slice())
            + std::mem::size_of_val(self.node_ptr.as_slice())
            + std::mem::size_of_val(self.node_post.as_slice())
            + std::mem::size_of_val(self.node_class_mask.as_slice())) as u64
    }

    /// Number of failure events.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of nodes the postings index covers.
    pub fn node_count(&self) -> u32 {
        (self.node_ptr.len().saturating_sub(1)) as u32
    }

    /// Event times in seconds, sorted by `(time, node)`.
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// Event node ids, aligned with [`FailureColumns::times`].
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Root-cause codes ([`root_code`]), aligned with the time column.
    pub fn roots(&self) -> &[u8] {
        &self.roots
    }

    /// Sub-cause codes ([`sub_code`]), aligned with the time column.
    pub fn subs(&self) -> &[u16] {
        &self.subs
    }

    /// Downtimes in seconds ([`NO_DOWNTIME`] for absent), aligned with
    /// the time column.
    pub fn downtimes(&self) -> &[i64] {
        &self.downtimes
    }

    /// Precomputed day index of each event relative to observation start.
    pub fn days(&self) -> &[i64] {
        &self.days
    }

    /// Event indices for `node`, in time order.
    #[inline]
    pub fn node_postings(&self, node: NodeId) -> &[u32] {
        let n = node.index();
        if n + 1 >= self.node_ptr.len() {
            return &[];
        }
        &self.node_post[self.node_ptr[n] as usize..self.node_ptr[n + 1] as usize]
    }

    /// Number of events on `node`.
    #[inline]
    pub fn node_event_count(&self, node: NodeId) -> usize {
        self.node_postings(node).len()
    }

    /// `true` when `node` has at least one event whose root cause could
    /// match `code`. A cheap pre-filter: `false` means no posting can
    /// match; `true` still requires per-event checks for sub-cause
    /// classes.
    #[inline]
    pub fn node_may_match(&self, node: NodeId, code: ClassCode) -> bool {
        match code {
            ClassCode::Any => self.node_event_count(node) > 0,
            ClassCode::Root(r) => self
                .node_class_mask
                .get(node.index())
                .is_some_and(|m| m & (1 << r) != 0),
            ClassCode::Sub(s) => {
                // The namespace byte maps back to a root-cause category
                // (events with SubCause::None never carry it).
                let root = match s & 0xff00 {
                    SUB_NS_HW => root_code(RootCause::Hardware),
                    SUB_NS_SW => root_code(RootCause::Software),
                    SUB_NS_ENV => root_code(RootCause::Environment),
                    _ => return self.node_event_count(node) > 0,
                };
                self.node_class_mask
                    .get(node.index())
                    .is_some_and(|m| m & (1 << root) != 0)
            }
        }
    }

    /// Appends the day index of every event on `node` matching `code` to
    /// `out` (non-decreasing, possibly with duplicates). Returns
    /// `(scanned, matched)` event counts for scan accounting.
    pub fn collect_node_days(
        &self,
        node: NodeId,
        code: ClassCode,
        out: &mut Vec<i64>,
    ) -> (usize, usize) {
        let postings = self.node_postings(node);
        if postings.is_empty() || !self.node_may_match(node, code) {
            return (postings.len(), 0);
        }
        let before = out.len();
        match code {
            ClassCode::Any => {
                out.extend(postings.iter().map(|&i| self.days[i as usize]));
            }
            ClassCode::Root(r) => {
                out.extend(
                    postings
                        .iter()
                        .filter(|&&i| self.roots[i as usize] == r)
                        .map(|&i| self.days[i as usize]),
                );
            }
            ClassCode::Sub(s) => {
                out.extend(
                    postings
                        .iter()
                        .filter(|&&i| self.subs[i as usize] == s)
                        .map(|&i| self.days[i as usize]),
                );
            }
        }
        (postings.len(), out.len() - before)
    }

    /// Counts events on `node` matching `code` with
    /// `after < time <= until` (both in seconds).
    pub fn count_in_window(&self, node: NodeId, code: ClassCode, after: i64, until: i64) -> usize {
        if !self.node_may_match(node, code) {
            return 0;
        }
        let postings = self.node_postings(node);
        let from = postings.partition_point(|&i| self.times[i as usize] <= after);
        postings[from..]
            .iter()
            .take_while(|&&i| self.times[i as usize] <= until)
            .filter(|&&i| code.matches(self.roots[i as usize], self.subs[i as usize]))
            .count()
    }

    /// `true` when `node` has any event matching `code` with
    /// `after < time <= until`.
    pub fn any_in_window(&self, node: NodeId, code: ClassCode, after: i64, until: i64) -> bool {
        if !self.node_may_match(node, code) {
            return false;
        }
        let postings = self.node_postings(node);
        let from = postings.partition_point(|&i| self.times[i as usize] <= after);
        postings[from..]
            .iter()
            .take_while(|&&i| self.times[i as usize] <= until)
            .any(|&i| code.matches(self.roots[i as usize], self.subs[i as usize]))
    }

    /// Materializes row `i` as a [`FailureRecord`] owned by `system`.
    pub fn record(&self, i: usize, system: SystemId) -> FailureRecord {
        let root = root_from_code(self.roots[i]).expect("validated root code");
        let sub = sub_from_code(self.subs[i]).expect("validated sub code");
        let mut r = FailureRecord::new(
            system,
            NodeId::new(self.nodes[i]),
            Timestamp::from_seconds(self.times[i]),
            root,
            sub,
        );
        if self.downtimes[i] != NO_DOWNTIME {
            r = r.with_downtime(Duration::from_seconds(self.downtimes[i]));
        }
        r
    }

    /// Materializes the full row view, in column (time, node) order.
    pub fn materialize(&self, system: SystemId) -> Vec<FailureRecord> {
        (0..self.len()).map(|i| self.record(i, system)).collect()
    }
}

/// Columnar view of one system's maintenance events: times, CSR node
/// postings, and a precomputed unscheduled-hardware day column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceColumns {
    times: Vec<i64>,
    unsched_hw: Vec<bool>,
    days: Vec<i64>,
    node_ptr: Vec<u32>,
    node_post: Vec<u32>,
}

impl MaintenanceColumns {
    /// Builds columns from records already sorted by `(time, node)`.
    pub fn from_records(records: &[MaintenanceRecord], node_count: u32, start: Timestamp) -> Self {
        let start_secs = start.as_seconds();
        let n = node_count as usize;
        let mut counts = vec![0u32; n + 1];
        for r in records {
            debug_assert!(r.node.index() < n);
            counts[r.node.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut post = vec![0u32; records.len()];
        let mut cursor = counts.clone();
        for (i, r) in records.iter().enumerate() {
            let slot = &mut cursor[r.node.index()];
            post[*slot as usize] = i as u32;
            *slot += 1;
        }
        MaintenanceColumns {
            times: records.iter().map(|r| r.time.as_seconds()).collect(),
            unsched_hw: records
                .iter()
                .map(|r| r.is_unscheduled_hardware())
                .collect(),
            days: records
                .iter()
                .map(|r| (r.time.as_seconds() - start_secs).div_euclid(SECONDS_PER_DAY))
                .collect(),
            node_ptr: counts,
            node_post: post,
        }
    }

    /// Heap bytes held by the maintenance column arrays.
    pub fn resident_bytes(&self) -> u64 {
        (std::mem::size_of_val(self.times.as_slice())
            + std::mem::size_of_val(self.unsched_hw.as_slice())
            + std::mem::size_of_val(self.days.as_slice())
            + std::mem::size_of_val(self.node_ptr.as_slice())
            + std::mem::size_of_val(self.node_post.as_slice())) as u64
    }

    /// Event indices for `node`, in time order.
    #[inline]
    pub fn node_postings(&self, node: NodeId) -> &[u32] {
        let n = node.index();
        if n + 1 >= self.node_ptr.len() {
            return &[];
        }
        &self.node_post[self.node_ptr[n] as usize..self.node_ptr[n + 1] as usize]
    }

    /// Appends the day index of every unscheduled-hardware event on
    /// `node` to `out` (non-decreasing). Returns `(scanned, matched)`.
    pub fn collect_unsched_hw_days(&self, node: NodeId, out: &mut Vec<i64>) -> (usize, usize) {
        let postings = self.node_postings(node);
        let before = out.len();
        out.extend(
            postings
                .iter()
                .filter(|&&i| self.unsched_hw[i as usize])
                .map(|&i| self.days[i as usize]),
        );
        (postings.len(), out.len() - before)
    }

    /// `true` when `node` has an unscheduled-hardware event with
    /// `after < time <= until` (both in seconds).
    pub fn any_unsched_hw_in_window(&self, node: NodeId, after: i64, until: i64) -> bool {
        let postings = self.node_postings(node);
        let from = postings.partition_point(|&i| self.times[i as usize] <= after);
        postings[from..]
            .iter()
            .take_while(|&&i| self.times[i as usize] <= until)
            .any(|&i| self.unsched_hw[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sub_causes() -> Vec<SubCause> {
        let mut subs = vec![SubCause::None];
        subs.extend(HardwareComponent::ALL.map(SubCause::Hardware));
        subs.extend(SoftwareCause::ALL.map(SubCause::Software));
        subs.extend(EnvironmentCause::ALL.map(SubCause::Environment));
        subs
    }

    #[test]
    fn root_codes_round_trip() {
        for root in RootCause::ALL {
            assert_eq!(root_from_code(root_code(root)), Some(root));
        }
        assert_eq!(root_from_code(6), None);
        assert_eq!(root_from_code(255), None);
    }

    #[test]
    fn sub_codes_round_trip_and_are_unique() {
        let subs = all_sub_causes();
        let codes: Vec<u16> = subs.iter().map(|&s| sub_code(s)).collect();
        for (sub, &code) in subs.iter().zip(&codes) {
            assert_eq!(sub_from_code(code), Some(*sub), "{sub:?}");
        }
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes collide");
        assert_eq!(sub_from_code(0x00ff), None);
        assert_eq!(sub_from_code(0x010a), None);
        assert_eq!(sub_from_code(0x0400), None);
    }

    #[test]
    fn class_code_matches_mirror_failure_class() {
        let mut classes: Vec<FailureClass> = vec![FailureClass::Any];
        classes.extend(RootCause::ALL.map(FailureClass::Root));
        classes.extend(HardwareComponent::ALL.map(FailureClass::Hw));
        classes.extend(SoftwareCause::ALL.map(FailureClass::Sw));
        classes.extend(EnvironmentCause::ALL.map(FailureClass::Env));

        let mut records = Vec::new();
        for root in RootCause::ALL {
            for sub in all_sub_causes() {
                if sub.consistent_with(root) {
                    records.push(FailureRecord::new(
                        SystemId::new(1),
                        NodeId::new(0),
                        Timestamp::EPOCH,
                        root,
                        sub,
                    ));
                }
            }
        }
        for class in classes {
            let code = ClassCode::new(class);
            for r in &records {
                assert_eq!(
                    code.matches(root_code(r.root_cause), sub_code(r.sub_cause)),
                    class.matches(r),
                    "{class:?} vs {r:?}"
                );
            }
        }
    }

    fn sample_records() -> Vec<FailureRecord> {
        let sys = SystemId::new(7);
        let mut records = vec![
            FailureRecord::new(
                sys,
                NodeId::new(3),
                Timestamp::from_seconds(100),
                RootCause::Hardware,
                SubCause::Hardware(HardwareComponent::Cpu),
            )
            .with_downtime(Duration::from_seconds(3600)),
            FailureRecord::new(
                sys,
                NodeId::new(0),
                Timestamp::from_seconds(90_000),
                RootCause::Software,
                SubCause::Software(SoftwareCause::Os),
            ),
            FailureRecord::new(
                sys,
                NodeId::new(3),
                Timestamp::from_seconds(90_000),
                RootCause::Undetermined,
                SubCause::None,
            ),
            FailureRecord::new(
                sys,
                NodeId::new(3),
                Timestamp::from_seconds(200_000),
                RootCause::Hardware,
                SubCause::Hardware(HardwareComponent::MemoryDimm),
            ),
        ];
        records.sort_by_key(|r| (r.time, r.node));
        records
    }

    #[test]
    fn from_records_materializes_identically() {
        let records = sample_records();
        let cols = FailureColumns::from_records(&records, 5, Timestamp::EPOCH);
        assert_eq!(cols.len(), records.len());
        assert_eq!(cols.materialize(SystemId::new(7)), records);
        assert_eq!(cols.days(), &[0, 1, 1, 2]);
    }

    #[test]
    fn postings_are_per_node_and_time_ordered() {
        let cols = FailureColumns::from_records(&sample_records(), 5, Timestamp::EPOCH);
        assert_eq!(cols.node_event_count(NodeId::new(3)), 3);
        assert_eq!(cols.node_event_count(NodeId::new(0)), 1);
        assert_eq!(cols.node_event_count(NodeId::new(1)), 0);
        assert_eq!(cols.node_event_count(NodeId::new(99)), 0);
        let times: Vec<i64> = cols
            .node_postings(NodeId::new(3))
            .iter()
            .map(|&i| cols.times()[i as usize])
            .collect();
        assert_eq!(times, vec![100, 90_000, 200_000]);
    }

    #[test]
    fn window_queries_match_row_scans() {
        let records = sample_records();
        let cols = FailureColumns::from_records(&records, 5, Timestamp::EPOCH);
        let node = NodeId::new(3);
        for class in [
            FailureClass::Any,
            FailureClass::Root(RootCause::Hardware),
            FailureClass::Hw(HardwareComponent::Cpu),
            FailureClass::Sw(SoftwareCause::Os),
        ] {
            let code = ClassCode::new(class);
            for (after, until) in [(0, 100_000), (100, 250_000), (-10, 50), (90_000, 90_000)] {
                let expect = records
                    .iter()
                    .filter(|r| r.node == node)
                    .filter(|r| r.time.as_seconds() > after && r.time.as_seconds() <= until)
                    .filter(|r| class.matches(r))
                    .count();
                assert_eq!(
                    cols.count_in_window(node, code, after, until),
                    expect,
                    "{class:?} ({after}, {until}]"
                );
                assert_eq!(
                    cols.any_in_window(node, code, after, until),
                    expect > 0,
                    "{class:?} ({after}, {until}]"
                );
            }
        }
    }

    #[test]
    fn collect_node_days_filters_and_counts() {
        let cols = FailureColumns::from_records(&sample_records(), 5, Timestamp::EPOCH);
        let mut out = Vec::new();
        let (scanned, matched) = cols.collect_node_days(
            NodeId::new(3),
            ClassCode::new(FailureClass::Root(RootCause::Hardware)),
            &mut out,
        );
        assert_eq!((scanned, matched), (3, 2));
        assert_eq!(out, vec![0, 2]);

        out.clear();
        // A class whose root never appears on the node: mask pre-filter
        // reports zero matches without scanning output.
        let (scanned, matched) = cols.collect_node_days(
            NodeId::new(3),
            ClassCode::new(FailureClass::Root(RootCause::Network)),
            &mut out,
        );
        assert_eq!((scanned, matched), (3, 0));
        assert!(out.is_empty());
    }

    #[test]
    fn raw_parts_round_trip_and_reject_bad_data() {
        let records = sample_records();
        let cols = FailureColumns::from_records(&records, 5, Timestamp::EPOCH);
        let rebuilt = FailureColumns::from_raw_parts(
            cols.times().to_vec(),
            cols.nodes().to_vec(),
            cols.roots().to_vec(),
            cols.subs().to_vec(),
            cols.downtimes().to_vec(),
            5,
            Timestamp::EPOCH,
        )
        .expect("valid columns");
        assert_eq!(rebuilt, cols);

        let bad_root = FailureColumns::from_raw_parts(
            vec![0],
            vec![0],
            vec![77],
            vec![0],
            vec![-1],
            5,
            Timestamp::EPOCH,
        );
        assert!(bad_root.is_err());

        let bad_node = FailureColumns::from_raw_parts(
            vec![0],
            vec![9],
            vec![1],
            vec![0],
            vec![-1],
            5,
            Timestamp::EPOCH,
        );
        assert!(bad_node.is_err());

        let unsorted = FailureColumns::from_raw_parts(
            vec![100, 50],
            vec![0, 0],
            vec![1, 1],
            vec![0, 0],
            vec![-1, -1],
            5,
            Timestamp::EPOCH,
        );
        assert!(unsorted.is_err());

        let inconsistent = FailureColumns::from_raw_parts(
            vec![0],
            vec![0],
            // Network root with a hardware sub-cause.
            vec![3],
            vec![sub_code(SubCause::Hardware(HardwareComponent::Cpu))],
            vec![-1],
            5,
            Timestamp::EPOCH,
        );
        assert!(inconsistent.is_err());
    }

    #[test]
    fn maintenance_columns_window_and_days() {
        let sys = SystemId::new(7);
        let mk = |node: u32, time: i64, hw: bool, sched: bool| MaintenanceRecord {
            system: sys,
            node: NodeId::new(node),
            time: Timestamp::from_seconds(time),
            hardware_related: hw,
            scheduled: sched,
        };
        let mut records = vec![
            mk(1, 1_000, true, false),
            mk(1, 90_000, true, true),
            mk(2, 5_000, false, false),
            mk(1, 200_000, true, false),
        ];
        records.sort_by_key(|r| (r.time, r.node));
        let cols = MaintenanceColumns::from_records(&records, 4, Timestamp::EPOCH);
        let mut out = Vec::new();
        let (scanned, matched) = cols.collect_unsched_hw_days(NodeId::new(1), &mut out);
        assert_eq!((scanned, matched), (3, 2));
        assert_eq!(out, vec![0, 2]);
        assert!(cols.any_unsched_hw_in_window(NodeId::new(1), 0, 2_000));
        assert!(!cols.any_unsched_hw_in_window(NodeId::new(1), 1_000, 100_000));
        assert!(!cols.any_unsched_hw_in_window(NodeId::new(2), 0, 10_000));
        assert!(cols.any_unsched_hw_in_window(NodeId::new(1), 100_000, 300_000));
    }
}
