//! Resilient ingestion: configurable parsing policies, per-line
//! quarantine, and a cross-record data-quality audit.
//!
//! Real failure logs are messy — LANL's release carries unknown root
//! causes, missing repair times and the occasional torn or re-encoded
//! line. The strict readers in [`crate::csv`] abort a nine-year load on
//! the first malformed byte; this module adds two recovery policies on
//! top of the same per-line parsers:
//!
//! - [`IngestPolicy::Strict`] — today's fail-fast behavior, now with
//!   the offending file name attached to every error.
//! - [`IngestPolicy::Lenient`] — malformed lines are set aside in a
//!   [`QuarantinedLine`] (file, 1-based line, reason, raw bytes) and
//!   the load continues. Consecutive exact duplicates are dropped.
//! - [`IngestPolicy::BestEffort`] — like `Lenient`, but recoverable
//!   fields fall back to the paper's "Unknown" conventions (bad root
//!   cause → `Undetermined`, bad sub-cause → none, bad downtime →
//!   missing) before the line is given up on.
//!
//! [`load_trace_with`] then runs a cross-record validation pass —
//! non-negative downtime, monotone-enough timestamps, node ids
//! resolvable against the system configuration, overlapping repair
//! windows, duplicate and unknown-system records — and returns a typed
//! [`DataQualityReport`] alongside the trace. Everything is surfaced as
//! `ingest.*` / `quality.*` observability counters, so run manifests
//! record exactly how dirty the input was.

use crate::csv::{self, headers, CsvError};
use crate::trace::{SystemTraceBuilder, Trace};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::str::FromStr;

/// How much recovery the reader attempts on malformed input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestPolicy {
    /// Fail fast on the first malformed line (the historical behavior).
    #[default]
    Strict,
    /// Quarantine malformed lines with context and keep going.
    Lenient,
    /// Quarantine like `Lenient`, but first try field-level defaults
    /// mirroring the paper's "Unknown" root-cause convention.
    BestEffort,
}

impl IngestPolicy {
    /// The command-line label (`strict`, `lenient`, `best-effort`).
    pub fn label(self) -> &'static str {
        match self {
            IngestPolicy::Strict => "strict",
            IngestPolicy::Lenient => "lenient",
            IngestPolicy::BestEffort => "best-effort",
        }
    }

    /// `true` if malformed lines are recovered rather than fatal.
    pub fn recovers(self) -> bool {
        !matches!(self, IngestPolicy::Strict)
    }

    fn relaxed(self) -> bool {
        matches!(self, IngestPolicy::BestEffort)
    }
}

impl fmt::Display for IngestPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for IngestPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(IngestPolicy::Strict),
            "lenient" => Ok(IngestPolicy::Lenient),
            "best-effort" | "besteffort" | "best_effort" => Ok(IngestPolicy::BestEffort),
            other => Err(format!(
                "unknown ingestion policy {other:?} (expected strict, lenient or best-effort)"
            )),
        }
    }
}

/// Longest raw-line prefix kept in a quarantine entry.
const RAW_SNIPPET_BYTES: usize = 120;

/// One malformed line that lenient ingestion set aside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// Source file name.
    pub file: String,
    /// 1-based line number within the file.
    pub line: usize,
    /// Why the line was rejected.
    pub message: String,
    /// The raw line (lossily decoded, truncated to a short snippet).
    pub raw: String,
}

impl fmt::Display for QuarantinedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Counts from the cross-record validation pass. Each field is the
/// number of findings of that kind; what happened to the offending
/// record depends on the policy (see the field docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataQualityReport {
    /// Failure records whose downtime was negative. Recovering policies
    /// drop the downtime field; `Strict` keeps the record as-is.
    pub negative_downtime: u64,
    /// Adjacent same-system failure pairs whose timestamps decrease in
    /// file order. Counted only — the store sorts on build.
    pub out_of_order_timestamps: u64,
    /// Records naming a node outside the system's configured node
    /// count. Fatal under `Strict`; dropped otherwise.
    pub unresolvable_nodes: u64,
    /// Same-node failure pairs whose repair window (time + downtime)
    /// overlaps the next failure. Counted only.
    pub overlapping_repairs: u64,
    /// Consecutive exact-duplicate lines. Recovering policies keep the
    /// first copy only; `Strict` keeps all.
    pub duplicate_records: u64,
    /// Records naming a system absent from `systems.csv`. Fatal under
    /// `Strict`; dropped otherwise.
    pub unknown_system_records: u64,
}

impl DataQualityReport {
    /// Total findings across all categories.
    pub fn total_findings(&self) -> u64 {
        self.negative_downtime
            + self.out_of_order_timestamps
            + self.unresolvable_nodes
            + self.overlapping_repairs
            + self.duplicate_records
            + self.unknown_system_records
    }

    /// `true` if the audit found nothing.
    pub fn is_clean(&self) -> bool {
        self.total_findings() == 0
    }
}

/// Everything a policy-aware load did beyond returning records.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The policy the load ran under.
    pub policy: IngestPolicy,
    /// Lines parsed into records (before cross-record drops).
    pub rows_ok: u64,
    /// Malformed lines set aside (always empty under `Strict`).
    pub quarantined: Vec<QuarantinedLine>,
    /// Fields replaced with defaults under `BestEffort` (plus negative
    /// downtimes nulled by the quality pass under recovering policies).
    pub defaulted_fields: u64,
    /// The cross-record audit results.
    pub quality: DataQualityReport,
}

impl IngestReport {
    /// An empty report for the given policy.
    pub fn new(policy: IngestPolicy) -> Self {
        IngestReport {
            policy,
            rows_ok: 0,
            quarantined: Vec::new(),
            defaulted_fields: 0,
            quality: DataQualityReport::default(),
        }
    }

    /// `true` if anything at all was quarantined, defaulted or flagged.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty() || self.defaulted_fields > 0 || !self.quality.is_clean()
    }
}

/// One file's records plus what recovery set aside.
#[derive(Debug, Clone)]
pub struct FileRead<T> {
    /// Successfully parsed records, in file order.
    pub records: Vec<T>,
    /// Malformed lines (empty under `Strict`, which errors instead).
    pub quarantined: Vec<QuarantinedLine>,
    /// Fields defaulted under `BestEffort`.
    pub defaulted_fields: u64,
    /// Consecutive exact-duplicate lines seen (dropped under
    /// recovering policies, kept under `Strict`).
    pub duplicates: u64,
}

impl<T> FileRead<T> {
    pub(crate) fn quarantine(&mut self, file: &str, line: usize, message: String, raw: &[u8]) {
        let mut snippet = String::from_utf8_lossy(raw).into_owned();
        if snippet.len() > RAW_SNIPPET_BYTES {
            let mut cut = RAW_SNIPPET_BYTES;
            while !snippet.is_char_boundary(cut) {
                cut -= 1;
            }
            snippet.truncate(cut);
        }
        self.quarantined.push(QuarantinedLine {
            file: file.to_owned(),
            line,
            message,
            raw: snippet,
        });
    }
}

/// The shared reading engine: raw byte lines (so invalid UTF-8 is a
/// per-line problem, not a stream abort), header skipping, and
/// policy-driven error handling around a per-line parser.
fn read_records<R, T, F>(
    r: R,
    file: &str,
    header: &str,
    header_anywhere: bool,
    policy: IngestPolicy,
    mut parse: F,
) -> Result<FileRead<T>, CsvError>
where
    R: Read,
    T: PartialEq,
    F: FnMut(&str, usize, bool) -> Result<(T, u32), CsvError>,
{
    let mut reader = BufReader::new(r);
    let mut out = FileRead {
        records: Vec::new(),
        quarantined: Vec::new(),
        defaulted_fields: 0,
        duplicates: 0,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let n = reader
            .read_until(b'\n', &mut buf)
            .map_err(|e| CsvError::from(e).in_file(file))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            if policy.recovers() {
                out.quarantine(file, lineno, "invalid UTF-8".into(), &buf);
                continue;
            }
            return Err(CsvError::Parse {
                line: lineno,
                message: "invalid UTF-8".into(),
            }
            .in_file(file));
        };
        if line.is_empty() {
            continue;
        }
        if line == header && (lineno == 1 || header_anywhere) {
            continue;
        }
        match parse(line, lineno, policy.relaxed()) {
            Ok((record, defaulted)) => {
                out.defaulted_fields += u64::from(defaulted);
                if out.records.last() == Some(&record) {
                    out.duplicates += 1;
                    if policy.recovers() {
                        continue;
                    }
                }
                out.records.push(record);
            }
            Err(e) => {
                if !policy.recovers() {
                    return Err(e.in_file(file));
                }
                let message = match &e {
                    CsvError::Parse { message, .. } => message.clone(),
                    other => other.to_string(),
                };
                out.quarantine(file, lineno, message, &buf);
            }
        }
    }
    hpcfail_obs::counter("ingest.rows_ok").add(out.records.len() as u64);
    hpcfail_obs::counter("ingest.quarantined").add(out.quarantined.len() as u64);
    hpcfail_obs::counter("ingest.defaulted").add(out.defaulted_fields);
    Ok(out)
}

/// Reads `failures.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_failures_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<FailureRecord>, CsvError> {
    read_records(
        r,
        file,
        headers::FAILURES,
        false,
        policy,
        csv::parse_failure_line,
    )
}

/// Reads `jobs.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_jobs_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<JobRecord>, CsvError> {
    read_records(r, file, headers::JOBS, false, policy, |l, n, _| {
        csv::parse_job_line(l, n).map(|r| (r, 0))
    })
}

/// Reads `temperatures.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_temperatures_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<TemperatureSample>, CsvError> {
    read_records(r, file, headers::TEMPERATURES, false, policy, |l, n, _| {
        csv::parse_temperature_line(l, n).map(|r| (r, 0))
    })
}

/// Reads `maintenance.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_maintenance_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<MaintenanceRecord>, CsvError> {
    read_records(r, file, headers::MAINTENANCE, false, policy, |l, n, _| {
        csv::parse_maintenance_line(l, n).map(|r| (r, 0))
    })
}

/// Reads `neutron.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_neutron_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<NeutronSample>, CsvError> {
    read_records(r, file, headers::NEUTRON, false, policy, |l, n, _| {
        csv::parse_neutron_line(l, n).map(|r| (r, 0))
    })
}

/// Reads `systems.csv` under the given policy.
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_system_configs_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<SystemConfig>, CsvError> {
    read_records(r, file, headers::SYSTEMS, false, policy, |l, n, _| {
        csv::parse_system_line(l, n).map(|r| (r, 0))
    })
}

/// Reads `layout.csv` placement rows under the given policy. The header
/// is skipped wherever it appears (concatenated per-system sections
/// repeat it mid-file).
///
/// # Errors
///
/// I/O failures always; parse failures only under `Strict`.
pub fn read_layout_rows_with<R: Read>(
    r: R,
    file: &str,
    policy: IngestPolicy,
) -> Result<FileRead<(SystemId, NodeId, NodeLocation)>, CsvError> {
    read_records(r, file, headers::LAYOUT, true, policy, |l, n, _| {
        csv::parse_layout_line(l, n).map(|r| (r, 0))
    })
}

/// Decides whether a record belongs to a known system and (when `node`
/// is given) a node inside its configured range. Under `Strict`, a
/// violation is an error; under recovering policies it is counted in
/// the quality report and the record dropped.
fn admit(
    configs: &BTreeMap<SystemId, u32>,
    policy: IngestPolicy,
    quality: &mut DataQualityReport,
    file: &'static str,
    system: SystemId,
    node: Option<NodeId>,
) -> Result<bool, CsvError> {
    let Some(&nodes) = configs.get(&system) else {
        if policy.recovers() {
            quality.unknown_system_records += 1;
            return Ok(false);
        }
        return Err(CsvError::Parse {
            line: 0,
            message: format!("record references unknown system {system}"),
        }
        .in_file(file));
    };
    if let Some(node) = node {
        if node.index() >= nodes as usize {
            if policy.recovers() {
                quality.unresolvable_nodes += 1;
                return Ok(false);
            }
            return Err(CsvError::Parse {
                line: 0,
                message: format!("node {node} out of range for {nodes}-node system {system}"),
            }
            .in_file(file));
        }
    }
    Ok(true)
}

/// Loads a trace directory (the layout written by
/// [`csv::save_trace`]) under the given ingestion policy, returning the
/// trace together with the full [`IngestReport`].
///
/// Under `Strict` this behaves like the historical
/// [`csv::load_trace`] — plus it rejects node ids outside a system's
/// configured node count, which previously corrupted the per-node index
/// (a release-mode panic). Under the recovering policies, malformed
/// lines are quarantined, consecutive duplicates deduplicated, and
/// out-of-range records dropped, with every incident counted.
///
/// # Errors
///
/// I/O failures opening or reading any file; parse and cross-record
/// violations only under `Strict`. Errors carry the source file name.
pub fn load_trace_with<P: AsRef<Path>>(
    dir: P,
    policy: IngestPolicy,
) -> Result<(Trace, IngestReport), CsvError> {
    let _span = hpcfail_obs::span("store.ingest.load");
    let dir = dir.as_ref();
    let mut report = IngestReport::new(policy);

    let open = |name: &str| {
        std::fs::File::open(dir.join(name)).map_err(|e| CsvError::from(e).in_file(name))
    };

    let systems = read_system_configs_with(open("systems.csv")?, "systems.csv", policy)?;
    let mut failures = read_failures_with(open("failures.csv")?, "failures.csv", policy)?;
    let jobs = read_jobs_with(open("jobs.csv")?, "jobs.csv", policy)?;
    let temperatures =
        read_temperatures_with(open("temperatures.csv")?, "temperatures.csv", policy)?;
    let maintenance = read_maintenance_with(open("maintenance.csv")?, "maintenance.csv", policy)?;
    let layout_rows = read_layout_rows_with(open("layout.csv")?, "layout.csv", policy)?;
    let neutron = read_neutron_with(open("neutron.csv")?, "neutron.csv", policy)?;

    report.rows_ok = (systems.records.len()
        + failures.records.len()
        + jobs.records.len()
        + temperatures.records.len()
        + maintenance.records.len()
        + layout_rows.records.len()
        + neutron.records.len()) as u64;
    for q in [
        &systems.quarantined,
        &failures.quarantined,
        &jobs.quarantined,
        &temperatures.quarantined,
        &maintenance.quarantined,
        &layout_rows.quarantined,
        &neutron.quarantined,
    ] {
        report.quarantined.extend(q.iter().cloned());
    }
    report.defaulted_fields = failures.defaulted_fields;
    report.quality.duplicate_records = systems.duplicates
        + failures.duplicates
        + jobs.duplicates
        + temperatures.duplicates
        + maintenance.duplicates
        + layout_rows.duplicates
        + neutron.duplicates;

    // Field-level audit: negative downtime. Recovering policies null
    // the field (the paper treats unknown repair times as missing).
    for f in failures.records.iter_mut() {
        if let Some(d) = f.downtime {
            if d.as_seconds() < 0 {
                report.quality.negative_downtime += 1;
                if policy.recovers() {
                    f.downtime = None;
                    report.defaulted_fields += 1;
                }
            }
        }
    }

    // Ordering audit: adjacent same-system inversions in file order.
    let mut last_time: BTreeMap<SystemId, Timestamp> = BTreeMap::new();
    for f in &failures.records {
        if let Some(&prev) = last_time.get(&f.system) {
            if f.time < prev {
                report.quality.out_of_order_timestamps += 1;
            }
        }
        last_time.insert(f.system, f.time);
    }

    // Repair-window audit: a node failing again before the previous
    // repair finished.
    let mut per_node: BTreeMap<(SystemId, NodeId), Vec<(i64, i64)>> = BTreeMap::new();
    for f in &failures.records {
        per_node.entry((f.system, f.node)).or_default().push((
            f.time.as_seconds(),
            f.downtime.map_or(0, |d| d.as_seconds().max(0)),
        ));
    }
    for events in per_node.values_mut() {
        events.sort_unstable();
        for w in events.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                report.quality.overlapping_repairs += 1;
            }
        }
    }

    // Resolve records against the configured systems and build.
    let configs: BTreeMap<SystemId, u32> =
        systems.records.iter().map(|c| (c.id, c.nodes)).collect();
    let mut builders: BTreeMap<SystemId, SystemTraceBuilder> = systems
        .records
        .into_iter()
        .map(|c| (c.id, SystemTraceBuilder::new(c)))
        .collect();
    let quality = &mut report.quality;
    for f in failures.records {
        if admit(
            &configs,
            policy,
            quality,
            "failures.csv",
            f.system,
            Some(f.node),
        )? {
            if let Some(b) = builders.get_mut(&f.system) {
                b.push_failure(f);
            }
        }
    }
    for j in jobs.records {
        if admit(&configs, policy, quality, "jobs.csv", j.system, None)? {
            if let Some(b) = builders.get_mut(&j.system) {
                b.push_job(j);
            }
        }
    }
    for t in temperatures.records {
        if admit(
            &configs,
            policy,
            quality,
            "temperatures.csv",
            t.system,
            Some(t.node),
        )? {
            if let Some(b) = builders.get_mut(&t.system) {
                b.push_temperature(t);
            }
        }
    }
    for m in maintenance.records {
        if admit(
            &configs,
            policy,
            quality,
            "maintenance.csv",
            m.system,
            Some(m.node),
        )? {
            if let Some(b) = builders.get_mut(&m.system) {
                b.push_maintenance(m);
            }
        }
    }
    let mut layouts: BTreeMap<SystemId, MachineLayout> = BTreeMap::new();
    for (system, node, loc) in layout_rows.records {
        if admit(&configs, policy, quality, "layout.csv", system, Some(node))? {
            layouts.entry(system).or_default().place(node, loc);
        }
    }
    for (system, layout) in layouts {
        if let Some(b) = builders.get_mut(&system) {
            b.layout(layout);
        }
    }

    let mut trace = Trace::new();
    for (_, b) in builders {
        trace.insert_system(b.build());
    }
    trace.set_neutron_samples(neutron.records);

    let q = report.quality;
    for (name, value) in [
        ("quality.negative_downtime", q.negative_downtime),
        ("quality.out_of_order_timestamps", q.out_of_order_timestamps),
        ("quality.unresolvable_nodes", q.unresolvable_nodes),
        ("quality.overlapping_repairs", q.overlapping_repairs),
        ("quality.duplicate_records", q.duplicate_records),
        ("quality.unknown_system_records", q.unknown_system_records),
    ] {
        hpcfail_obs::counter(name).add(value);
    }
    Ok((trace, report))
}

/// Load a trace, preferring a binary snapshot over CSV parsing.
///
/// If `snapshot` names a readable, checksum-verified `.hpcsnap` file the
/// trace is decoded from it in one bulk read — no CSV parse, no quality
/// audit — and the returned [`IngestReport`] is `None`. If the snapshot
/// is missing, corrupt or version-mismatched the load falls back to
/// [`load_trace_with`] on `dir` and the typed
/// [`SnapshotFallback`](crate::snapshot::SnapshotFallback) explaining
/// why is returned alongside, so callers can surface it as an audit
/// entry instead of a panic.
pub fn load_trace_snapshot_first<P: AsRef<Path>, Q: AsRef<Path>>(
    snapshot: P,
    dir: Q,
    policy: IngestPolicy,
) -> Result<
    (
        Trace,
        Option<IngestReport>,
        Option<crate::snapshot::SnapshotFallback>,
    ),
    CsvError,
> {
    match crate::snapshot::try_read_snapshot(snapshot) {
        crate::snapshot::SnapshotLoad::Loaded(trace) => Ok((*trace, None, None)),
        crate::snapshot::SnapshotLoad::Unusable(fallback) => {
            let (trace, report) = load_trace_with(dir, policy)?;
            Ok((trace, Some(report), Some(fallback)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "system,node,time,root_cause,sub_cause,downtime\n\
                         20,0,1000,HW,HW:CPU,3600\n\
                         20,5,2000,ENV,ENV:UPS,\n\
                         20,7,3000,UNDET,-,\n";

    #[test]
    fn policy_labels_round_trip() {
        for policy in [
            IngestPolicy::Strict,
            IngestPolicy::Lenient,
            IngestPolicy::BestEffort,
        ] {
            assert_eq!(policy.label().parse::<IngestPolicy>().unwrap(), policy);
        }
        assert!("bogus".parse::<IngestPolicy>().is_err());
    }

    #[test]
    fn clean_input_agrees_with_strict_reader() {
        let strict = csv::read_failures(CLEAN.as_bytes()).unwrap();
        for policy in [
            IngestPolicy::Strict,
            IngestPolicy::Lenient,
            IngestPolicy::BestEffort,
        ] {
            let read = read_failures_with(CLEAN.as_bytes(), "failures.csv", policy).unwrap();
            assert_eq!(read.records, strict, "{policy}");
            assert!(read.quarantined.is_empty(), "{policy}");
            assert_eq!(read.defaulted_fields, 0, "{policy}");
        }
    }

    #[test]
    fn lenient_quarantines_exactly_the_bad_lines() {
        let dirty = "system,node,time,root_cause,sub_cause,downtime\n\
                     20,0,1000,HW,HW:CPU,3600\n\
                     20,not-a-node,1500,HW,-,\n\
                     20,5,2000,ENV,ENV:UPS,\n\
                     garbage\n\
                     20,7,3000,UNDET,-,\n";
        let read = read_failures_with(dirty.as_bytes(), "failures.csv", IngestPolicy::Lenient)
            .expect("lenient never fails on parse errors");
        assert_eq!(read.records.len(), 3);
        let lines: Vec<usize> = read.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![3, 5]);
        assert!(read.quarantined[0].message.contains("node id"));
        assert_eq!(read.quarantined[1].raw, "garbage");
        assert!(read.quarantined[0].file == "failures.csv");

        let err =
            read_failures_with(dirty.as_bytes(), "failures.csv", IngestPolicy::Strict).unwrap_err();
        assert!(err.to_string().starts_with("failures.csv:"), "{err}");
    }

    #[test]
    fn invalid_utf8_is_quarantined_not_fatal() {
        let mut bytes = CLEAN.as_bytes().to_vec();
        bytes.extend_from_slice(b"20,9,4000,\xFF\xFE,-,\n");
        let read = read_failures_with(&bytes[..], "failures.csv", IngestPolicy::Lenient).unwrap();
        assert_eq!(read.records.len(), 3);
        assert_eq!(read.quarantined.len(), 1);
        assert_eq!(read.quarantined[0].line, 5);
        assert!(read.quarantined[0].message.contains("UTF-8"));
        assert!(read_failures_with(&bytes[..], "failures.csv", IngestPolicy::Strict).is_err());
    }

    #[test]
    fn best_effort_defaults_recoverable_fields() {
        let dirty = "system,node,time,root_cause,sub_cause,downtime\n\
                     20,0,1000,Gremlins,-,3600\n\
                     20,1,2000,NET,HW:CPU,\n\
                     20,2,3000,HW,HW:CPU,soon\n";
        let lenient =
            read_failures_with(dirty.as_bytes(), "failures.csv", IngestPolicy::Lenient).unwrap();
        assert_eq!(lenient.records.len(), 0);
        assert_eq!(lenient.quarantined.len(), 3);

        let best =
            read_failures_with(dirty.as_bytes(), "failures.csv", IngestPolicy::BestEffort).unwrap();
        assert_eq!(best.quarantined.len(), 0);
        assert_eq!(best.defaulted_fields, 3);
        assert_eq!(best.records[0].root_cause, RootCause::Undetermined);
        assert_eq!(best.records[1].sub_cause, SubCause::None);
        assert_eq!(best.records[2].downtime, None);
    }

    #[test]
    fn consecutive_duplicates_deduped_and_counted() {
        let dup = "system,node,time,root_cause,sub_cause,downtime\n\
                   20,0,1000,HW,HW:CPU,3600\n\
                   20,0,1000,HW,HW:CPU,3600\n\
                   20,5,2000,ENV,ENV:UPS,\n";
        let lenient =
            read_failures_with(dup.as_bytes(), "failures.csv", IngestPolicy::Lenient).unwrap();
        assert_eq!(lenient.records.len(), 2);
        assert_eq!(lenient.duplicates, 1);
        let strict =
            read_failures_with(dup.as_bytes(), "failures.csv", IngestPolicy::Strict).unwrap();
        assert_eq!(strict.records.len(), 3, "strict keeps today's behavior");
        assert_eq!(strict.duplicates, 1, "but still counts");
    }

    fn write_dir(dir: &std::path::Path, failures: &str, systems: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("systems.csv"), systems)?;
        std::fs::write(dir.join("failures.csv"), failures)?;
        std::fs::write(dir.join("jobs.csv"), format!("{}\n", headers::JOBS))?;
        std::fs::write(
            dir.join("temperatures.csv"),
            format!("{}\n", headers::TEMPERATURES),
        )?;
        std::fs::write(
            dir.join("maintenance.csv"),
            format!("{}\n", headers::MAINTENANCE),
        )?;
        std::fs::write(dir.join("layout.csv"), format!("{}\n", headers::LAYOUT))?;
        std::fs::write(dir.join("neutron.csv"), format!("{}\n", headers::NEUTRON))?;
        Ok(())
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hpcfail-ingest-{tag}-{}", std::process::id()))
    }

    const SYSTEMS: &str =
        "id,name,nodes,procs_per_node,hardware,start,end,has_layout,has_job_log,has_temperature\n\
                           20,sys20,8,4,SMP4,0,8640000,0,0,0\n";

    #[test]
    fn quality_pass_flags_and_recovers() {
        let failures = "system,node,time,root_cause,sub_cause,downtime\n\
                        20,0,5000,HW,HW:CPU,-3600\n\
                        20,1,4000,SW,SW:OS,\n\
                        20,99,4500,HW,-,\n\
                        77,0,100,HW,-,\n\
                        20,1,4100,HW,-,7200\n\
                        20,1,4200,NET,-,\n";
        let dir = temp_dir("quality");
        write_dir(&dir, failures, SYSTEMS).unwrap();

        let (trace, report) = load_trace_with(&dir, IngestPolicy::Lenient).unwrap();
        let q = report.quality;
        assert_eq!(q.negative_downtime, 1);
        assert!(q.out_of_order_timestamps >= 1, "5000 then 4000");
        assert_eq!(q.unresolvable_nodes, 1, "node 99 of an 8-node system");
        assert_eq!(q.unknown_system_records, 1, "system 77");
        assert_eq!(q.overlapping_repairs, 1, "7200s repair spans next failure");
        let sys = trace.system(SystemId::new(20)).unwrap();
        assert_eq!(sys.failures().len(), 4);
        assert!(
            sys.failures()
                .iter()
                .all(|f| f.downtime.is_none_or(|d| d.as_seconds() >= 0)),
            "negative downtime nulled"
        );

        // Strict rejects the out-of-range node with file context.
        let err = load_trace_with(&dir, IngestPolicy::Strict).unwrap_err();
        assert!(err.to_string().contains("failures.csv"), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_load_rejects_unknown_system_with_file_context() {
        let failures = "system,node,time,root_cause,sub_cause,downtime\n\
                        77,0,100,HW,-,\n";
        let dir = temp_dir("unknown");
        write_dir(&dir, failures, SYSTEMS).unwrap();
        let err = load_trace_with(&dir, IngestPolicy::Strict).unwrap_err();
        assert!(err.to_string().contains("failures.csv"), "{err}");
        assert!(err.to_string().contains("unknown system"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
