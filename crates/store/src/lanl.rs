//! Importer for CFDR-style LANL failure records.
//!
//! The public LANL release (LA-UR-05-7318, mirrored by the USENIX
//! Computer Failure Data Repository) ships failure records as
//! comma-separated rows with `MM/DD/YYYY HH:MM` timestamps and root
//! causes labeled `Facilities`, `Hardware`, `Human Error`, `Network`,
//! `Undetermined` and `Software`, plus free-text subcategories such as
//! `Memory Dimm` or `Power Supply`. This module maps that vocabulary
//! onto the `hpcfail` taxonomy so the real data — or any export in the
//! same style — can drive every analysis.
//!
//! Columns are located by header name (case-insensitive), so extra
//! columns in a site's export are ignored. The expected columns are:
//!
//! | header | content |
//! |---|---|
//! | `system` | system number |
//! | `nodenum` | node number within the system |
//! | `prob started` | `MM/DD/YYYY HH:MM` outage start |
//! | `prob fixed` | `MM/DD/YYYY HH:MM` repair completion (optional) |
//! | `cause` | one of the six LANL root-cause labels |
//! | `subcause` | optional subcategory (e.g. `Memory Dimm`) |
//!
//! Timestamps are converted to seconds since a configurable epoch date
//! (default 1996-01-01, the start of the LANL observation period).

use crate::csv::CsvError;
use crate::ingest::{FileRead, IngestPolicy};
use hpcfail_types::prelude::*;
use std::io::{BufRead, BufReader, Read};

/// Importer options: the epoch that maps calendar time onto trace time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanlImportOptions {
    /// Calendar date (year, month, day) of trace time zero.
    pub epoch: (i32, u32, u32),
}

impl Default for LanlImportOptions {
    fn default() -> Self {
        // The LANL observation period starts in 1996.
        LanlImportOptions {
            epoch: (1996, 1, 1),
        }
    }
}

/// Days from civil date to 1970-01-01 (Howard Hinnant's algorithm),
/// valid for all Gregorian dates.
///
/// # Examples
///
/// ```
/// use hpcfail_store::lanl::days_from_civil;
///
/// assert_eq!(days_from_civil(1970, 1, 1), 0);
/// assert_eq!(days_from_civil(2000, 3, 1), 11017);
/// assert_eq!(days_from_civil(1969, 12, 31), -1);
/// ```
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Parses a LANL `MM/DD/YYYY HH:MM` datetime into seconds since the
/// Unix epoch (no time zone: LANL timestamps are local wall-clock, and
/// the analyses only use differences).
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn parse_lanl_datetime(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (date, time) = s
        .split_once(' ')
        .ok_or_else(|| format!("missing time in {s:?}"))?;
    let mut date_parts = date.split('/');
    let (m, d, y) = (
        next_num(&mut date_parts, "month", date)?,
        next_num(&mut date_parts, "day", date)?,
        next_num(&mut date_parts, "year", date)?,
    );
    if date_parts.next().is_some() {
        return Err(format!("too many date fields in {date:?}"));
    }
    let mut time_parts = time.trim().split(':');
    let hh = next_num(&mut time_parts, "hour", time)?;
    let mm = next_num(&mut time_parts, "minute", time)?;
    let ss = match time_parts.next() {
        Some(v) => v
            .parse::<i64>()
            .map_err(|_| format!("bad seconds in {time:?}"))?,
        None => 0,
    };
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(format!("date {date:?} out of range"));
    }
    if !(0..24).contains(&hh) || !(0..60).contains(&mm) || !(0..60).contains(&ss) {
        return Err(format!("time {time:?} out of range"));
    }
    Ok(days_from_civil(y as i32, m as u32, d as u32) * 86_400 + hh * 3600 + mm * 60 + ss)
}

fn next_num<'a, I: Iterator<Item = &'a str>>(
    it: &mut I,
    what: &str,
    context: &str,
) -> Result<i64, String> {
    it.next()
        .ok_or_else(|| format!("missing {what} in {context:?}"))?
        .trim()
        .parse()
        .map_err(|_| format!("bad {what} in {context:?}"))
}

/// Maps a LANL root-cause label onto the taxonomy. `Facilities` is the
/// LANL name for what the paper calls environment failures.
pub fn map_root_cause(label: &str) -> Option<RootCause> {
    match label.trim().to_ascii_lowercase().as_str() {
        "facilities" | "environment" => Some(RootCause::Environment),
        "hardware" => Some(RootCause::Hardware),
        "human error" | "human" => Some(RootCause::HumanError),
        "network" => Some(RootCause::Network),
        "software" => Some(RootCause::Software),
        "undetermined" | "unknown" => Some(RootCause::Undetermined),
        _ => None,
    }
}

/// Maps a LANL subcategory label onto a [`SubCause`], given the root
/// cause. Unknown labels become the root's `Other` bucket (or
/// [`SubCause::None`] for roots without subcategories).
pub fn map_sub_cause(root: RootCause, label: &str) -> SubCause {
    let norm: String = label
        .trim()
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    if norm.is_empty() {
        return SubCause::None;
    }
    match root {
        RootCause::Hardware => {
            let component = match norm.as_str() {
                "cpu" | "processor" => HardwareComponent::Cpu,
                "memorydimm" | "memory" | "dimm" | "ram" => HardwareComponent::MemoryDimm,
                "nodeboard" | "motherboard" | "systemboard" => HardwareComponent::NodeBoard,
                "powersupply" | "psu" => HardwareComponent::PowerSupply,
                "fan" | "fanassembly" => HardwareComponent::Fan,
                "mscboard" | "msc" => HardwareComponent::MscBoard,
                "midplane" => HardwareComponent::Midplane,
                "nic" | "networkinterface" | "interconnectinterface" => HardwareComponent::Nic,
                "disk" | "diskdrive" | "harddrive" | "scsidrive" => HardwareComponent::Disk,
                _ => HardwareComponent::Other,
            };
            SubCause::Hardware(component)
        }
        RootCause::Software => {
            let cause = match norm.as_str() {
                "dst" | "distributedstoragesystem" | "distributedstorage" => SoftwareCause::Dst,
                "pfs" | "parallelfilesystem" => SoftwareCause::Pfs,
                "cfs" | "clusterfilesystem" => SoftwareCause::Cfs,
                "os" | "operatingsystem" | "kernel" => SoftwareCause::Os,
                "patchinstl" | "patchinstall" | "upgrade" => SoftwareCause::PatchInstall,
                _ => SoftwareCause::Other,
            };
            SubCause::Software(cause)
        }
        RootCause::Environment => {
            let cause = match norm.as_str() {
                "poweroutage" | "outage" => EnvironmentCause::PowerOutage,
                "powerspike" | "spike" => EnvironmentCause::PowerSpike,
                "ups" => EnvironmentCause::Ups,
                "chillers" | "chiller" | "ac" => EnvironmentCause::Chiller,
                _ => EnvironmentCause::Other,
            };
            SubCause::Environment(cause)
        }
        _ => SubCause::None,
    }
}

/// Column positions located from a LANL header row, plus the epoch
/// offset — everything needed to parse data rows.
struct LanlLayout {
    c_system: usize,
    c_node: usize,
    c_start: usize,
    c_fixed: Option<usize>,
    c_cause: usize,
    c_sub: Option<usize>,
    epoch_secs: i64,
}

impl LanlLayout {
    fn from_header(header: &str, options: LanlImportOptions) -> Result<Self, CsvError> {
        let columns: Vec<String> = header
            .split(',')
            .map(|h| h.trim().to_ascii_lowercase())
            .collect();
        let col = |names: &[&str]| -> Result<usize, CsvError> {
            names
                .iter()
                .find_map(|n| columns.iter().position(|c| c == n))
                .ok_or_else(|| CsvError::Parse {
                    line: 1,
                    message: format!("missing column (one of {names:?}) in header {header:?}"),
                })
        };
        let (ey, em, ed) = options.epoch;
        Ok(LanlLayout {
            c_system: col(&["system", "sys"])?,
            c_node: col(&["nodenum", "node", "nodenumz"])?,
            c_start: col(&["prob started", "prob_started", "started", "start time"])?,
            c_fixed: col(&["prob fixed", "prob_fixed", "fixed", "end time"]).ok(),
            c_cause: col(&["cause", "root cause", "category"])?,
            c_sub: col(&["subcause", "sub cause", "subcategory", "component"]).ok(),
            epoch_secs: days_from_civil(ey, em, ed) * 86_400,
        })
    }

    /// Parses one data row. `relaxed` applies the `BestEffort`
    /// conventions: an unknown root cause becomes `Undetermined` and a
    /// malformed repair timestamp becomes a missing downtime, each
    /// counted in the returned defaulted-field tally.
    fn parse_line(
        &self,
        line: &str,
        lineno: usize,
        relaxed: bool,
    ) -> Result<(FailureRecord, u32), CsvError> {
        let fields: Vec<&str> = line.split(',').collect();
        let get = |i: usize, what: &str| -> Result<&str, CsvError> {
            fields.get(i).copied().ok_or_else(|| CsvError::Parse {
                line: lineno,
                message: format!("row too short for {what}"),
            })
        };
        let parse_err = |message: String| CsvError::Parse {
            line: lineno,
            message,
        };
        let mut defaulted = 0u32;

        let system: u16 = get(self.c_system, "system")?
            .trim()
            .parse()
            .map_err(|_| parse_err(format!("bad system {:?}", fields[self.c_system])))?;
        let node: u32 = get(self.c_node, "node")?
            .trim()
            .parse()
            .map_err(|_| parse_err(format!("bad node {:?}", fields[self.c_node])))?;
        let start =
            parse_lanl_datetime(get(self.c_start, "start")?).map_err(&parse_err)? - self.epoch_secs;
        let cause_label = get(self.c_cause, "cause")?;
        let root = match map_root_cause(cause_label) {
            Some(root) => root,
            None if relaxed => {
                defaulted += 1;
                RootCause::Undetermined
            }
            None => return Err(parse_err(format!("unknown root cause {cause_label:?}"))),
        };
        let sub = match self.c_sub {
            Some(i) => map_sub_cause(root, fields.get(i).copied().unwrap_or("")),
            None => SubCause::None,
        };
        let mut record = FailureRecord::new(
            SystemId::new(system),
            NodeId::new(node),
            Timestamp::from_seconds(start),
            root,
            sub,
        );
        if let Some(i) = self.c_fixed {
            let raw = fields.get(i).copied().unwrap_or("").trim().to_owned();
            if !raw.is_empty() {
                match parse_lanl_datetime(&raw) {
                    Ok(t) => {
                        let fixed = t - self.epoch_secs;
                        if fixed >= start {
                            record = record.with_downtime(Duration::from_seconds(fixed - start));
                        }
                    }
                    Err(e) if relaxed => {
                        let _ = e;
                        defaulted += 1;
                    }
                    Err(e) => return Err(parse_err(e)),
                }
            }
        }
        Ok((record, defaulted))
    }
}

/// Reads CFDR-style LANL failure records.
///
/// Rows with unknown root causes or malformed timestamps are rejected
/// with their line number; blank lines are skipped.
///
/// # Errors
///
/// I/O failures and malformed rows.
pub fn read_lanl_failures<R: Read>(
    r: R,
    options: LanlImportOptions,
) -> Result<Vec<FailureRecord>, CsvError> {
    let read = read_lanl_failures_with(r, "lanl.csv", options, IngestPolicy::Strict)?;
    Ok(read.records)
}

/// Reads CFDR-style LANL failure records under an ingestion policy,
/// routing malformed rows through the same quarantine/audit machinery
/// as the native readers ([`crate::ingest`]): under
/// [`IngestPolicy::Lenient`] bad rows are set aside as
/// [`QuarantinedLine`](crate::ingest::QuarantinedLine)s and consecutive
/// exact duplicates dropped; under [`IngestPolicy::BestEffort`] unknown
/// root causes default to `Undetermined` and malformed repair
/// timestamps to a missing downtime before a row is given up on.
///
/// # Errors
///
/// I/O failures and a missing/defective header row always; per-row
/// parse failures only under [`IngestPolicy::Strict`].
pub fn read_lanl_failures_with<R: Read>(
    r: R,
    file: &str,
    options: LanlImportOptions,
    policy: IngestPolicy,
) -> Result<FileRead<FailureRecord>, CsvError> {
    let mut lines = BufReader::new(r).lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| CsvError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let layout = LanlLayout::from_header(&header?, options)?;
    let relaxed = matches!(policy, IngestPolicy::BestEffort);

    let mut out = FileRead {
        records: Vec::new(),
        quarantined: Vec::new(),
        defaulted_fields: 0,
        duplicates: 0,
    };
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        match layout.parse_line(&line, lineno, relaxed) {
            Ok((record, defaulted)) => {
                out.defaulted_fields += u64::from(defaulted);
                if out.records.last() == Some(&record) {
                    out.duplicates += 1;
                    if policy.recovers() {
                        continue;
                    }
                }
                out.records.push(record);
            }
            Err(e) => {
                if !policy.recovers() {
                    return Err(e);
                }
                let message = match &e {
                    CsvError::Parse { message, .. } => message.clone(),
                    other => other.to_string(),
                };
                out.quarantine(file, lineno, message, line.as_bytes());
            }
        }
    }
    hpcfail_obs::counter("store.lanl_rows_read").add(out.records.len() as u64);
    hpcfail_obs::counter("ingest.rows_ok").add(out.records.len() as u64);
    hpcfail_obs::counter("ingest.quarantined").add(out.quarantined.len() as u64);
    hpcfail_obs::counter("ingest.defaulted").add(out.defaulted_fields);
    Ok(out)
}

/// Reads CFDR-style LANL failure records from a file, attaching the
/// path to any error so "line 12" names which CSV it came from.
///
/// # Errors
///
/// Same as [`read_lanl_failures`], wrapped in
/// [`CsvError::InFile`].
pub fn read_lanl_failures_from_path<P: AsRef<std::path::Path>>(
    path: P,
    options: LanlImportOptions,
) -> Result<Vec<FailureRecord>, CsvError> {
    let path = path.as_ref();
    let file_label = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| CsvError::from(e).in_file(&*file_label))?;
    read_lanl_failures(file, options).map_err(|e| e.in_file(file_label))
}

/// Assembles imported failure records into a [`Trace`](crate::trace::Trace), inferring a
/// minimal [`SystemConfig`] per system: node count from the number of
/// distinct node ids seen (raw ids are remapped onto a dense `0..n`
/// range), observation span from the first/last record (rounded out to
/// whole days, with one day of margin at the end).
///
/// LANL releases number nodes sparsely — a system whose two surviving
/// records name nodes 1000 and 5000 has two observed nodes, not 5001.
/// Counting `max(raw) + 1` inflated every per-node baseline denominator
/// and allocated index space for thousands of phantom nodes, so raw ids
/// are compacted (order-preserving) before the config is inferred.
///
/// The inferred configs default to 4-way SMP hardware; adjust group-2
/// systems via `numa_systems` so the group split matches your site.
pub fn assemble_trace(records: Vec<FailureRecord>, numa_systems: &[u16]) -> crate::trace::Trace {
    use std::collections::{BTreeMap, BTreeSet};
    let mut by_system: BTreeMap<SystemId, Vec<FailureRecord>> = BTreeMap::new();
    for r in records {
        by_system.entry(r.system).or_default().push(r);
    }
    let mut trace = crate::trace::Trace::new();
    for (system, mut records) in by_system {
        let distinct: BTreeSet<u32> = records.iter().map(|r| r.node.raw()).collect();
        let dense: BTreeMap<u32, u32> = distinct
            .iter()
            .enumerate()
            .map(|(i, &raw)| (raw, i as u32))
            .collect();
        for r in &mut records {
            r.node = NodeId::new(dense[&r.node.raw()]);
        }
        let nodes = dense.len().max(1) as u32;
        let first = records
            .iter()
            .map(|r| r.time)
            .min()
            .unwrap_or(Timestamp::EPOCH);
        let last = records
            .iter()
            .map(|r| r.time)
            .max()
            .unwrap_or(Timestamp::EPOCH);
        let start = Timestamp::from_seconds(first.day_index().min(0) * 86_400);
        let end = Timestamp::from_seconds((last.day_index() + 2) * 86_400);
        let numa = numa_systems.contains(&system.raw());
        let config = SystemConfig {
            id: system,
            name: format!("system-{}", system.raw()),
            nodes,
            procs_per_node: if numa { 128 } else { 4 },
            hardware: if numa {
                HardwareClass::Numa
            } else {
                HardwareClass::Smp4Way
            },
            start,
            end,
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut builder = crate::trace::SystemTraceBuilder::new(config);
        for r in records {
            builder.push_failure(r);
        }
        trace.insert_system(builder.build());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_reference_points() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1996, 1, 1), 9496);
        assert_eq!(days_from_civil(2000, 1, 1), 10957);
        // Leap-year behaviour.
        assert_eq!(
            days_from_civil(2000, 2, 29) + 1,
            days_from_civil(2000, 3, 1)
        );
        assert_eq!(
            days_from_civil(1900, 2, 28) + 1,
            days_from_civil(1900, 3, 1)
        ); // not a leap year
        assert_eq!(
            days_from_civil(2004, 2, 29) + 1,
            days_from_civil(2004, 3, 1)
        );
    }

    #[test]
    fn datetime_parsing() {
        // 2003-10-23 14:55 local.
        let secs = parse_lanl_datetime("10/23/2003 14:55").unwrap();
        assert_eq!(secs % 86_400, 14 * 3600 + 55 * 60);
        assert_eq!(secs / 86_400, days_from_civil(2003, 10, 23));
        // With seconds.
        assert_eq!(
            parse_lanl_datetime("01/01/1996 00:00:30").unwrap(),
            days_from_civil(1996, 1, 1) * 86_400 + 30
        );
    }

    #[test]
    fn datetime_rejects_malformed() {
        assert!(parse_lanl_datetime("10/23/2003").is_err()); // missing time
        assert!(parse_lanl_datetime("13/01/2003 10:00").is_err()); // bad month
        assert!(parse_lanl_datetime("10/32/2003 10:00").is_err()); // bad day
        assert!(parse_lanl_datetime("10/23/2003 25:00").is_err()); // bad hour
        assert!(parse_lanl_datetime("10/23/2003 10:61").is_err()); // bad minute
        assert!(parse_lanl_datetime("10-23-2003 10:00").is_err()); // wrong separator
    }

    #[test]
    fn root_cause_labels() {
        assert_eq!(map_root_cause("Facilities"), Some(RootCause::Environment));
        assert_eq!(map_root_cause("Human Error"), Some(RootCause::HumanError));
        assert_eq!(map_root_cause(" hardware "), Some(RootCause::Hardware));
        assert_eq!(map_root_cause("Meteor"), None);
    }

    #[test]
    fn sub_cause_labels() {
        assert_eq!(
            map_sub_cause(RootCause::Hardware, "Memory Dimm"),
            SubCause::Hardware(HardwareComponent::MemoryDimm)
        );
        assert_eq!(
            map_sub_cause(RootCause::Hardware, "Power Supply"),
            SubCause::Hardware(HardwareComponent::PowerSupply)
        );
        assert_eq!(
            map_sub_cause(RootCause::Hardware, "Widget"),
            SubCause::Hardware(HardwareComponent::Other)
        );
        assert_eq!(
            map_sub_cause(RootCause::Software, "Parallel File System"),
            SubCause::Software(SoftwareCause::Pfs)
        );
        assert_eq!(
            map_sub_cause(RootCause::Environment, "Power Outage"),
            SubCause::Environment(EnvironmentCause::PowerOutage)
        );
        assert_eq!(map_sub_cause(RootCause::Network, "switch"), SubCause::None);
        assert_eq!(map_sub_cause(RootCause::Hardware, "  "), SubCause::None);
    }

    const SAMPLE: &str = "\
System,NodeNum,Prob Started,Prob Fixed,Cause,SubCause
20,0,10/23/2003 14:55,10/23/2003 18:20,Hardware,Memory Dimm
20,17,11/02/2003 03:10,,Facilities,Power Outage
2,5,01/15/1997 09:00,01/15/1997 10:30,Human Error,
";

    #[test]
    fn sample_rows_imported() {
        let records = read_lanl_failures(SAMPLE.as_bytes(), LanlImportOptions::default()).unwrap();
        assert_eq!(records.len(), 3);

        let r0 = &records[0];
        assert_eq!(r0.system, SystemId::new(20));
        assert_eq!(r0.node, NodeId::new(0));
        assert_eq!(r0.root_cause, RootCause::Hardware);
        assert_eq!(
            r0.sub_cause,
            SubCause::Hardware(HardwareComponent::MemoryDimm)
        );
        assert_eq!(
            r0.downtime,
            Some(Duration::from_seconds(3 * 3600 + 25 * 60))
        );
        // 2003-10-23 is day 2852 after 1996-01-01.
        assert_eq!(
            r0.time.as_seconds() / 86_400,
            days_from_civil(2003, 10, 23) - days_from_civil(1996, 1, 1)
        );

        let r1 = &records[1];
        assert_eq!(r1.root_cause, RootCause::Environment);
        assert_eq!(
            r1.sub_cause,
            SubCause::Environment(EnvironmentCause::PowerOutage)
        );
        assert_eq!(r1.downtime, None);

        let r2 = &records[2];
        assert_eq!(r2.root_cause, RootCause::HumanError);
        assert_eq!(r2.sub_cause, SubCause::None);
    }

    #[test]
    fn header_is_case_insensitive_and_reorderable() {
        let csv = "\
cause,prob started,system,nodenum
Software,05/05/2000 12:00,8,3
";
        let records = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].system, SystemId::new(8));
        assert_eq!(records[0].root_cause, RootCause::Software);
    }

    #[test]
    fn missing_column_reported() {
        let csv = "system,nodenum\n1,2\n";
        let err = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap_err();
        assert!(err.to_string().contains("missing column"), "{err}");
    }

    #[test]
    fn bad_rows_reported_with_line_numbers() {
        let csv = "\
system,nodenum,prob started,cause
20,0,10/23/2003 14:55,Gremlins
";
        let err = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("Gremlins"), "{err}");
    }

    #[test]
    fn assemble_infers_configs() {
        let records = read_lanl_failures(SAMPLE.as_bytes(), LanlImportOptions::default()).unwrap();
        let trace = assemble_trace(records, &[2]);
        assert_eq!(trace.len(), 2);
        let sys20 = trace.system(SystemId::new(20)).unwrap();
        assert_eq!(sys20.config().nodes, 2); // two distinct nodes (0, 17)
        assert_eq!(sys20.config().group(), SystemGroup::Group1);
        assert_eq!(sys20.failures().len(), 2);
        let sys2 = trace.system(SystemId::new(2)).unwrap();
        assert_eq!(sys2.config().group(), SystemGroup::Group2);
        assert_eq!(sys2.config().procs_per_node, 128);
        // Spans cover the records.
        for s in trace.systems() {
            for f in s.failures() {
                assert!(f.time >= s.config().start && f.time < s.config().end);
            }
        }
    }

    #[test]
    fn assemble_compacts_gappy_node_ids() {
        // Regression: sparse raw node numbering (1000, 5000) used to
        // infer 5001 nodes, inflating every per-node denominator.
        let csv = "\
system,nodenum,prob started,cause
9,1000,10/23/2003 14:55,Hardware
9,5000,11/02/2003 03:10,Software
9,1000,11/03/2003 08:00,Hardware
";
        let records = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap();
        let trace = assemble_trace(records, &[]);
        let sys = trace.system(SystemId::new(9)).unwrap();
        assert_eq!(sys.config().nodes, 2);
        // Remap is order-preserving: 1000 -> 0, 5000 -> 1.
        assert_eq!(sys.node_failure_count(NodeId::new(0)), 2);
        assert_eq!(sys.node_failure_count(NodeId::new(1)), 1);
        assert!(sys.failures().iter().all(|f| f.node.raw() < 2));
    }

    #[test]
    fn lenient_import_quarantines_bad_rows() {
        let csv = "\
System,NodeNum,Prob Started,Prob Fixed,Cause,SubCause
20,0,10/23/2003 14:55,10/23/2003 18:20,Hardware,Memory Dimm
20,zero,10/24/2003 09:00,,Hardware,
20,1,11/02/2003 03:10,,Gremlins,
20,2,11/03/2003 08:00,,Software,OS
";
        let read = read_lanl_failures_with(
            csv.as_bytes(),
            "upload.csv",
            LanlImportOptions::default(),
            IngestPolicy::Lenient,
        )
        .expect("lenient never fails on parse errors");
        assert_eq!(read.records.len(), 2);
        let lines: Vec<usize> = read.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![3, 4]);
        assert_eq!(read.quarantined[0].file, "upload.csv");
        assert!(read.quarantined[1].message.contains("Gremlins"));

        // Strict matches the historical reader: first bad row is fatal.
        let err = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn best_effort_import_defaults_unknown_causes() {
        let csv = "\
System,NodeNum,Prob Started,Prob Fixed,Cause
20,0,10/23/2003 14:55,not-a-time,Hardware
20,1,11/02/2003 03:10,,Gremlins
";
        let read = read_lanl_failures_with(
            csv.as_bytes(),
            "upload.csv",
            LanlImportOptions::default(),
            IngestPolicy::BestEffort,
        )
        .unwrap();
        assert_eq!(read.records.len(), 2);
        assert_eq!(read.quarantined.len(), 0);
        assert_eq!(read.defaulted_fields, 2);
        assert_eq!(read.records[0].downtime, None, "bad repair time dropped");
        assert_eq!(read.records[1].root_cause, RootCause::Undetermined);
    }

    #[test]
    fn consecutive_duplicate_rows_deduped_under_recovery() {
        let csv = "\
System,NodeNum,Prob Started,Cause
20,0,10/23/2003 14:55,Hardware
20,0,10/23/2003 14:55,Hardware
20,1,10/24/2003 10:00,Software
";
        let lenient = read_lanl_failures_with(
            csv.as_bytes(),
            "upload.csv",
            LanlImportOptions::default(),
            IngestPolicy::Lenient,
        )
        .unwrap();
        assert_eq!(lenient.records.len(), 2);
        assert_eq!(lenient.duplicates, 1);
        let strict = read_lanl_failures(csv.as_bytes(), LanlImportOptions::default()).unwrap();
        assert_eq!(strict.len(), 3, "strict keeps today's behavior");
    }

    #[test]
    fn custom_epoch_shifts_timestamps() {
        let csv = "\
system,nodenum,prob started,cause
1,0,01/02/2000 00:00,Hardware
";
        let records = read_lanl_failures(
            csv.as_bytes(),
            LanlImportOptions {
                epoch: (2000, 1, 1),
            },
        )
        .unwrap();
        assert_eq!(records[0].time, Timestamp::from_days(1.0));
    }
}
