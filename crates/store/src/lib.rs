//! Indexed trace store for HPC reliability data.
//!
//! A [`Trace`](trace::Trace) holds the full data release — one
//! [`SystemTrace`](trace::SystemTrace) per cluster plus fleet-wide
//! neutron-monitor samples. System traces are immutable once built and
//! carry per-node time indexes so window queries (the workhorse of every
//! analysis) are cheap.
//!
//! - [`trace`] — the store itself and its builder.
//! - [`query`] — window queries and empirical baseline probabilities.
//! - [`index`] — lazy, thread-safe per-system caches of day vectors and
//!   memoized baselines (the `indexed_*` methods on `SystemTrace`).
//! - [`features`] — derived per-node features (utilization, job counts,
//!   temperature aggregates) feeding the paper's regressions.
//! - [`csv`] — the toolkit's native CSV schema (ingest and export).
//! - [`ingest`] — policy-driven loading (strict / lenient / best-effort)
//!   with per-line quarantine and a cross-record data-quality audit.
//! - [`lanl`] — importer for CFDR-style LANL failure records
//!   (`MM/DD/YYYY HH:MM` timestamps, `Facilities`/`Human Error` cause
//!   labels).
//!
//! # Examples
//!
//! ```
//! use hpcfail_store::prelude::*;
//! use hpcfail_types::prelude::*;
//!
//! let config = SystemConfig {
//!     id: SystemId::new(1),
//!     name: "demo".into(),
//!     nodes: 4,
//!     procs_per_node: 4,
//!     hardware: HardwareClass::Smp4Way,
//!     start: Timestamp::EPOCH,
//!     end: Timestamp::from_days(100.0),
//!     has_layout: false,
//!     has_job_log: false,
//!     has_temperature: false,
//! };
//! let mut builder = SystemTraceBuilder::new(config);
//! builder.push_failure(FailureRecord::new(
//!     SystemId::new(1),
//!     NodeId::new(2),
//!     Timestamp::from_days(10.0),
//!     RootCause::Hardware,
//!     SubCause::Hardware(HardwareComponent::Cpu),
//! ));
//! let system = builder.build();
//! assert_eq!(system.failures().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod csv;
pub mod features;
pub mod index;
pub mod ingest;
pub mod lanl;
pub mod query;
pub mod snapshot;
pub mod trace;

/// The most frequently used items.
pub mod prelude {
    pub use crate::features::{FeatureError, NodeFeatures, NodeUsage, TemperatureAggregate};
    pub use crate::ingest::{
        load_trace_with, DataQualityReport, IngestPolicy, IngestReport, QuarantinedLine,
    };
    pub use crate::query::{BaselineEstimator, NodeEvents};
    pub use crate::snapshot::{read_snapshot, write_snapshot, SnapshotError};
    pub use crate::trace::{SystemTrace, SystemTraceBuilder, Trace};
}
