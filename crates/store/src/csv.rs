//! LANL-style CSV ingest and export.
//!
//! The public LANL release ships comma-separated record files; this
//! module reads and writes an equivalent schema so real or synthetic
//! traces can round-trip through plain files:
//!
//! | file | columns |
//! |---|---|
//! | `systems.csv` | `id,name,nodes,procs_per_node,hardware,start,end,has_layout,has_job_log,has_temperature` |
//! | `failures.csv` | `system,node,time,root_cause,sub_cause,downtime` |
//! | `jobs.csv` | `system,job_id,user,submit,dispatch,end,procs,nodes` (nodes `;`-separated) |
//! | `temperatures.csv` | `system,node,time,celsius` |
//! | `maintenance.csv` | `system,node,time,hardware_related,scheduled` |
//! | `neutron.csv` | `time,counts_per_minute` |
//! | `layout.csv` | `system,node,rack,position_in_rack,room_row,room_col` |
//!
//! Sub-causes are namespaced (`HW:CPU`, `SW:DST`, `ENV:UPS`, `-`).
//! All timestamps are integer seconds since the trace epoch.

use crate::trace::{SystemTrace, Trace};
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Expected header lines, shared by writers and readers. A reader
/// skips line 1 only when it matches its header exactly; anything else
/// is parsed as data, so a headerless export keeps its first record and
/// a malformed header surfaces as a parse error at line 1.
pub mod headers {
    /// `failures.csv` header.
    pub const FAILURES: &str = "system,node,time,root_cause,sub_cause,downtime";
    /// `jobs.csv` header.
    pub const JOBS: &str = "system,job_id,user,submit,dispatch,end,procs,nodes";
    /// `temperatures.csv` header.
    pub const TEMPERATURES: &str = "system,node,time,celsius";
    /// `maintenance.csv` header.
    pub const MAINTENANCE: &str = "system,node,time,hardware_related,scheduled";
    /// `neutron.csv` header.
    pub const NEUTRON: &str = "time,counts_per_minute";
    /// `layout.csv` header (repeated mid-file for concatenated systems).
    pub const LAYOUT: &str = "system,node,rack,position_in_rack,room_row,room_col";
    /// `systems.csv` header.
    pub const SYSTEMS: &str =
        "id,name,nodes,procs_per_node,hardware,start,end,has_layout,has_job_log,has_temperature";
}

/// True for lines a reader should skip: blank lines anywhere, and the
/// expected header on line 1 (`idx` is the 0-based line index).
fn skip_line(line: &str, idx: usize, header: &str) -> bool {
    line.is_empty() || (idx == 0 && line == header)
}

/// Errors from CSV reading or writing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An error with the source file attached, so a "line 12" from a
    /// directory load says which of the CSVs it came from.
    InFile {
        /// File name (or path) the error came from.
        file: String,
        /// The underlying error.
        source: Box<CsvError>,
    },
}

impl CsvError {
    /// Attaches a file name to this error. Wrapping an already
    /// file-qualified error keeps the innermost (most specific) file.
    #[must_use]
    pub fn in_file(self, file: impl Into<String>) -> CsvError {
        match self {
            CsvError::InFile { .. } => self,
            other => CsvError::InFile {
                file: file.into(),
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            CsvError::InFile { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
            CsvError::InFile { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses one CSV line into typed fields with line-number context.
struct Fields<'a> {
    parts: Vec<&'a str>,
    line: usize,
    cursor: usize,
}

impl<'a> Fields<'a> {
    fn new(s: &'a str, line: usize, expected: usize) -> Result<Self, CsvError> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != expected {
            return Err(CsvError::Parse {
                line,
                message: format!("expected {expected} fields, found {}", parts.len()),
            });
        }
        Ok(Fields {
            parts,
            line,
            cursor: 0,
        })
    }

    fn next_str(&mut self) -> &'a str {
        let s = self.parts[self.cursor];
        self.cursor += 1;
        s
    }

    fn next<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, CsvError>
    where
        T::Err: fmt::Display,
    {
        let raw = self.next_str();
        raw.parse().map_err(|e| CsvError::Parse {
            line: self.line,
            message: format!("bad {what} {raw:?}: {e}"),
        })
    }
}

fn sub_cause_label(sub: SubCause) -> String {
    match sub {
        SubCause::None => "-".to_owned(),
        SubCause::Hardware(c) => format!("HW:{}", c.label()),
        SubCause::Software(c) => format!("SW:{}", c.label()),
        SubCause::Environment(c) => format!("ENV:{}", c.label()),
    }
}

fn parse_sub_cause(raw: &str, line: usize) -> Result<SubCause, CsvError> {
    if raw == "-" || raw.is_empty() {
        return Ok(SubCause::None);
    }
    let err = |msg: String| CsvError::Parse { line, message: msg };
    let (ns, rest) = raw
        .split_once(':')
        .ok_or_else(|| err(format!("bad sub-cause {raw:?}: missing namespace")))?;
    match ns {
        "HW" => rest
            .parse::<HardwareComponent>()
            .map(SubCause::Hardware)
            .map_err(|e| err(format!("bad sub-cause {raw:?}: {e}"))),
        "SW" => rest
            .parse::<SoftwareCause>()
            .map(SubCause::Software)
            .map_err(|e| err(format!("bad sub-cause {raw:?}: {e}"))),
        "ENV" => rest
            .parse::<EnvironmentCause>()
            .map(SubCause::Environment)
            .map_err(|e| err(format!("bad sub-cause {raw:?}: {e}"))),
        _ => Err(err(format!("bad sub-cause namespace {ns:?}"))),
    }
}

/// Writes failure records. Pass `&mut w` to keep using the writer.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_failures<W: Write>(mut w: W, records: &[FailureRecord]) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::FAILURES)?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            r.system.raw(),
            r.node.raw(),
            r.time.as_seconds(),
            r.root_cause.label(),
            sub_cause_label(r.sub_cause),
            r.downtime
                .map_or(String::new(), |d| d.as_seconds().to_string()),
        )?;
    }
    Ok(())
}

/// Parses one `failures.csv` data line. Under `relaxed` (the
/// best-effort ingestion policy) recoverable fields fall back to the
/// paper's "Unknown" conventions instead of failing the line — a bad
/// root cause becomes [`RootCause::Undetermined`], a bad or
/// inconsistent sub-cause becomes [`SubCause::None`], and a bad
/// downtime is dropped — returning how many fields were defaulted.
/// Identity fields (system, node, time, field count) always error.
pub(crate) fn parse_failure_line(
    line: &str,
    lineno: usize,
    relaxed: bool,
) -> Result<(FailureRecord, u32), CsvError> {
    let mut defaulted = 0u32;
    let mut f = Fields::new(line, lineno, 6)?;
    let system = SystemId::new(f.next("system id")?);
    let node = NodeId::new(f.next("node id")?);
    let time = Timestamp::from_seconds(f.next("time")?);
    let root: RootCause = match f.next("root cause") {
        Ok(root) => root,
        Err(_) if relaxed => {
            defaulted += 1;
            RootCause::Undetermined
        }
        Err(e) => return Err(e),
    };
    let sub = match parse_sub_cause(f.next_str(), lineno) {
        Ok(sub) if sub.consistent_with(root) => sub,
        Ok(sub) if !relaxed => {
            return Err(CsvError::Parse {
                line: lineno,
                message: format!("sub-cause {sub} inconsistent with root cause {root}"),
            })
        }
        Err(e) if !relaxed => return Err(e),
        _ => {
            defaulted += 1;
            SubCause::None
        }
    };
    let downtime_raw = f.next_str();
    let mut record = FailureRecord::new(system, node, time, root, sub);
    if !downtime_raw.is_empty() {
        match downtime_raw.parse::<i64>() {
            Ok(secs) => record = record.with_downtime(Duration::from_seconds(secs)),
            Err(_) if relaxed => defaulted += 1,
            Err(e) => {
                return Err(CsvError::Parse {
                    line: lineno,
                    message: format!("bad downtime {downtime_raw:?}: {e}"),
                })
            }
        }
    }
    Ok((record, defaulted))
}

/// Reads failure records written by [`write_failures`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_failures<R: Read>(r: R) -> Result<Vec<FailureRecord>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::FAILURES) {
            continue;
        }
        let (record, _) = parse_failure_line(&line, idx + 1, false)?;
        out.push(record);
    }
    hpcfail_obs::counter("store.csv_rows_read").add(out.len() as u64);
    Ok(out)
}

/// Writes job records.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_jobs<W: Write>(mut w: W, records: &[JobRecord]) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::JOBS)?;
    for j in records {
        let nodes: Vec<String> = j.nodes.iter().map(|n| n.raw().to_string()).collect();
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            j.system.raw(),
            j.job_id.raw(),
            j.user.raw(),
            j.submit.as_seconds(),
            j.dispatch.as_seconds(),
            j.end.as_seconds(),
            j.procs,
            nodes.join(";"),
        )?;
    }
    Ok(())
}

/// Reads job records written by [`write_jobs`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_jobs<R: Read>(r: R) -> Result<Vec<JobRecord>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::JOBS) {
            continue;
        }
        out.push(parse_job_line(&line, idx + 1)?);
    }
    hpcfail_obs::counter("store.csv_rows_read").add(out.len() as u64);
    Ok(out)
}

/// Parses one `jobs.csv` data line.
pub(crate) fn parse_job_line(line: &str, lineno: usize) -> Result<JobRecord, CsvError> {
    let mut f = Fields::new(line, lineno, 8)?;
    let system = SystemId::new(f.next("system id")?);
    let job_id = JobId::new(f.next("job id")?);
    let user = UserId::new(f.next("user id")?);
    let submit = Timestamp::from_seconds(f.next("submit")?);
    let dispatch = Timestamp::from_seconds(f.next("dispatch")?);
    let end = Timestamp::from_seconds(f.next("end")?);
    let procs = f.next("procs")?;
    let nodes_raw = f.next_str();
    let mut nodes = Vec::new();
    for part in nodes_raw.split(';').filter(|p| !p.is_empty()) {
        let raw: u32 = part.parse().map_err(|e| CsvError::Parse {
            line: lineno,
            message: format!("bad node id {part:?}: {e}"),
        })?;
        nodes.push(NodeId::new(raw));
    }
    Ok(JobRecord {
        system,
        job_id,
        user,
        submit,
        dispatch,
        end,
        procs,
        nodes,
    })
}

/// Writes temperature samples.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_temperatures<W: Write>(
    mut w: W,
    samples: &[TemperatureSample],
) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::TEMPERATURES)?;
    for s in samples {
        writeln!(
            w,
            "{},{},{},{}",
            s.system.raw(),
            s.node.raw(),
            s.time.as_seconds(),
            s.celsius
        )?;
    }
    Ok(())
}

/// Reads temperature samples written by [`write_temperatures`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_temperatures<R: Read>(r: R) -> Result<Vec<TemperatureSample>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::TEMPERATURES) {
            continue;
        }
        out.push(parse_temperature_line(&line, idx + 1)?);
    }
    hpcfail_obs::counter("store.csv_rows_read").add(out.len() as u64);
    Ok(out)
}

/// Parses one `temperatures.csv` data line.
pub(crate) fn parse_temperature_line(
    line: &str,
    lineno: usize,
) -> Result<TemperatureSample, CsvError> {
    let mut f = Fields::new(line, lineno, 4)?;
    Ok(TemperatureSample {
        system: SystemId::new(f.next("system id")?),
        node: NodeId::new(f.next("node id")?),
        time: Timestamp::from_seconds(f.next("time")?),
        celsius: f.next("temperature")?,
    })
}

/// Writes maintenance records.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_maintenance<W: Write>(
    mut w: W,
    records: &[MaintenanceRecord],
) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::MAINTENANCE)?;
    for m in records {
        writeln!(
            w,
            "{},{},{},{},{}",
            m.system.raw(),
            m.node.raw(),
            m.time.as_seconds(),
            u8::from(m.hardware_related),
            u8::from(m.scheduled),
        )?;
    }
    Ok(())
}

/// Reads maintenance records written by [`write_maintenance`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_maintenance<R: Read>(r: R) -> Result<Vec<MaintenanceRecord>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::MAINTENANCE) {
            continue;
        }
        out.push(parse_maintenance_line(&line, idx + 1)?);
    }
    hpcfail_obs::counter("store.csv_rows_read").add(out.len() as u64);
    Ok(out)
}

/// Parses one `maintenance.csv` data line.
pub(crate) fn parse_maintenance_line(
    line: &str,
    lineno: usize,
) -> Result<MaintenanceRecord, CsvError> {
    let mut f = Fields::new(line, lineno, 5)?;
    let system = SystemId::new(f.next("system id")?);
    let node = NodeId::new(f.next("node id")?);
    let time = Timestamp::from_seconds(f.next("time")?);
    let hw: u8 = f.next("hardware_related flag")?;
    let sched: u8 = f.next("scheduled flag")?;
    Ok(MaintenanceRecord {
        system,
        node,
        time,
        hardware_related: hw != 0,
        scheduled: sched != 0,
    })
}

/// Writes neutron-monitor samples.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_neutron<W: Write>(mut w: W, samples: &[NeutronSample]) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::NEUTRON)?;
    for s in samples {
        writeln!(w, "{},{}", s.time.as_seconds(), s.counts_per_minute)?;
    }
    Ok(())
}

/// Reads neutron-monitor samples written by [`write_neutron`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_neutron<R: Read>(r: R) -> Result<Vec<NeutronSample>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::NEUTRON) {
            continue;
        }
        out.push(parse_neutron_line(&line, idx + 1)?);
    }
    hpcfail_obs::counter("store.csv_rows_read").add(out.len() as u64);
    Ok(out)
}

/// Parses one `neutron.csv` data line.
pub(crate) fn parse_neutron_line(line: &str, lineno: usize) -> Result<NeutronSample, CsvError> {
    let mut f = Fields::new(line, lineno, 2)?;
    Ok(NeutronSample {
        time: Timestamp::from_seconds(f.next("time")?),
        counts_per_minute: f.next("counts")?,
    })
}

/// Writes one system's machine-room layout.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_layout<W: Write>(
    mut w: W,
    system: SystemId,
    layout: &MachineLayout,
) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::LAYOUT)?;
    for (node, loc) in layout.iter() {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            system.raw(),
            node.raw(),
            loc.rack.raw(),
            loc.position_in_rack,
            loc.room_row,
            loc.room_col,
        )?;
    }
    Ok(())
}

/// Reads layouts written by [`write_layout`] (possibly several systems
/// concatenated), keyed by system id.
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_layouts<R: Read>(r: R) -> Result<BTreeMap<SystemId, MachineLayout>, CsvError> {
    let mut out: BTreeMap<SystemId, MachineLayout> = BTreeMap::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        // Concatenated per-system sections repeat the header mid-file;
        // skip it wherever it appears, but only on exact match so a
        // data-bearing first line is never dropped.
        if line.is_empty() || line == headers::LAYOUT {
            continue;
        }
        let (system, node, loc) = parse_layout_line(&line, idx + 1)?;
        out.entry(system).or_default().place(node, loc);
    }
    Ok(out)
}

/// Parses one `layout.csv` data line into its placement triple.
pub(crate) fn parse_layout_line(
    line: &str,
    lineno: usize,
) -> Result<(SystemId, NodeId, NodeLocation), CsvError> {
    let mut f = Fields::new(line, lineno, 6)?;
    let system = SystemId::new(f.next("system id")?);
    let node = NodeId::new(f.next("node id")?);
    let loc = NodeLocation {
        rack: RackId::new(f.next("rack id")?),
        position_in_rack: f.next("position in rack")?,
        room_row: f.next("room row")?,
        room_col: f.next("room column")?,
    };
    Ok((system, node, loc))
}

fn hardware_label(h: HardwareClass) -> &'static str {
    match h {
        HardwareClass::Smp4Way => "SMP4",
        HardwareClass::Numa => "NUMA",
    }
}

/// Writes system configurations.
///
/// # Errors
///
/// Any I/O failure from the writer.
pub fn write_system_configs<W: Write>(mut w: W, configs: &[SystemConfig]) -> Result<(), CsvError> {
    writeln!(w, "{}", headers::SYSTEMS)?;
    for c in configs {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            c.id.raw(),
            c.name,
            c.nodes,
            c.procs_per_node,
            hardware_label(c.hardware),
            c.start.as_seconds(),
            c.end.as_seconds(),
            u8::from(c.has_layout),
            u8::from(c.has_job_log),
            u8::from(c.has_temperature),
        )?;
    }
    Ok(())
}

/// Reads system configurations written by [`write_system_configs`].
///
/// # Errors
///
/// I/O failures and malformed lines.
pub fn read_system_configs<R: Read>(r: R) -> Result<Vec<SystemConfig>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if skip_line(&line, idx, headers::SYSTEMS) {
            continue;
        }
        out.push(parse_system_line(&line, idx + 1)?);
    }
    Ok(out)
}

/// Parses one `systems.csv` data line.
pub(crate) fn parse_system_line(line: &str, lineno: usize) -> Result<SystemConfig, CsvError> {
    let mut f = Fields::new(line, lineno, 10)?;
    let id = SystemId::new(f.next("system id")?);
    let name = f.next_str().to_owned();
    let nodes = f.next("node count")?;
    let procs_per_node = f.next("procs per node")?;
    let hardware = match f.next_str() {
        "SMP4" => HardwareClass::Smp4Way,
        "NUMA" => HardwareClass::Numa,
        other => {
            return Err(CsvError::Parse {
                line: lineno,
                message: format!("unknown hardware class {other:?}"),
            })
        }
    };
    let start = Timestamp::from_seconds(f.next("start")?);
    let end = Timestamp::from_seconds(f.next("end")?);
    let has_layout = f.next::<u8>("has_layout")? != 0;
    let has_job_log = f.next::<u8>("has_job_log")? != 0;
    let has_temperature = f.next::<u8>("has_temperature")? != 0;
    Ok(SystemConfig {
        id,
        name,
        nodes,
        procs_per_node,
        hardware,
        start,
        end,
        has_layout,
        has_job_log,
        has_temperature,
    })
}

/// Saves a full trace as a directory of CSV files.
///
/// # Errors
///
/// I/O failures creating the directory or writing any file.
pub fn save_trace<P: AsRef<Path>>(dir: P, trace: &Trace) -> Result<(), CsvError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let configs: Vec<SystemConfig> = trace.systems().map(|s| s.config().clone()).collect();
    write_system_configs(std::fs::File::create(dir.join("systems.csv"))?, &configs)?;

    let mut failures = std::fs::File::create(dir.join("failures.csv"))?;
    let mut jobs = std::fs::File::create(dir.join("jobs.csv"))?;
    let mut temps = std::fs::File::create(dir.join("temperatures.csv"))?;
    let mut maint = std::fs::File::create(dir.join("maintenance.csv"))?;
    let mut layout = std::fs::File::create(dir.join("layout.csv"))?;
    let mut wrote_header = (false, false, false, false, false);
    for s in trace.systems() {
        if !wrote_header.0 {
            write_failures(&mut failures, s.failures())?;
            wrote_header.0 = true;
        } else {
            append_failures(&mut failures, s.failures())?;
        }
        if !wrote_header.1 {
            write_jobs(&mut jobs, s.jobs())?;
            wrote_header.1 = true;
        } else {
            append_jobs(&mut jobs, s.jobs())?;
        }
        if !wrote_header.2 {
            write_temperatures(&mut temps, s.temperatures())?;
            wrote_header.2 = true;
        } else {
            append_temperatures(&mut temps, s.temperatures())?;
        }
        if !wrote_header.3 {
            write_maintenance(&mut maint, s.maintenance())?;
            wrote_header.3 = true;
        } else {
            append_maintenance(&mut maint, s.maintenance())?;
        }
        if let Some(l) = s.layout() {
            write_layout(&mut layout, s.id(), l)?;
            wrote_header.4 = true;
        }
    }
    write_neutron(
        std::fs::File::create(dir.join("neutron.csv"))?,
        trace.neutron_samples(),
    )?;
    Ok(())
}

fn append_failures<W: Write>(w: W, records: &[FailureRecord]) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    write_failures(&mut buf, records)?;
    skip_header_and_copy(w, &buf)
}

fn append_jobs<W: Write>(w: W, records: &[JobRecord]) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    write_jobs(&mut buf, records)?;
    skip_header_and_copy(w, &buf)
}

fn append_temperatures<W: Write>(w: W, records: &[TemperatureSample]) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    write_temperatures(&mut buf, records)?;
    skip_header_and_copy(w, &buf)
}

fn append_maintenance<W: Write>(w: W, records: &[MaintenanceRecord]) -> Result<(), CsvError> {
    let mut buf = Vec::new();
    write_maintenance(&mut buf, records)?;
    skip_header_and_copy(w, &buf)
}

fn skip_header_and_copy<W: Write>(mut w: W, buf: &[u8]) -> Result<(), CsvError> {
    let body_start = buf
        .iter()
        .position(|&b| b == b'\n')
        .map_or(buf.len(), |i| i + 1);
    w.write_all(&buf[body_start..])?;
    Ok(())
}

/// Loads a trace saved by [`save_trace`], failing fast on the first
/// malformed line (the [`IngestPolicy::Strict`](crate::ingest::IngestPolicy)
/// policy). Use [`crate::ingest::load_trace_with`] for lenient or
/// best-effort loads of dirty data.
///
/// # Errors
///
/// I/O failures and malformed lines, with the offending file name
/// attached. Records referencing a system id absent from `systems.csv`
/// or a node id outside the system's configured node count are
/// rejected.
pub fn load_trace<P: AsRef<Path>>(dir: P) -> Result<Trace, CsvError> {
    crate::ingest::load_trace_with(dir, crate::ingest::IngestPolicy::Strict).map(|(t, _)| t)
}

/// Convenience: one system's records round-tripped through buffers,
/// used by tests and the quickstart example.
pub fn system_to_csv_strings(system: &SystemTrace) -> (String, String) {
    let mut failures = Vec::new();
    write_failures(&mut failures, system.failures()).expect("in-memory write cannot fail");
    let mut jobs = Vec::new();
    write_jobs(&mut jobs, system.jobs()).expect("in-memory write cannot fail");
    (
        String::from_utf8(failures).expect("CSV output is UTF-8"),
        String::from_utf8(jobs).expect("CSV output is UTF-8"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_failures() -> Vec<FailureRecord> {
        vec![
            FailureRecord::new(
                SystemId::new(20),
                NodeId::new(0),
                Timestamp::from_seconds(1000),
                RootCause::Hardware,
                SubCause::Hardware(HardwareComponent::MemoryDimm),
            )
            .with_downtime(Duration::from_seconds(3600)),
            FailureRecord::new(
                SystemId::new(20),
                NodeId::new(5),
                Timestamp::from_seconds(2000),
                RootCause::Environment,
                SubCause::Environment(EnvironmentCause::PowerOutage),
            ),
            FailureRecord::new(
                SystemId::new(20),
                NodeId::new(7),
                Timestamp::from_seconds(3000),
                RootCause::Undetermined,
                SubCause::None,
            ),
        ]
    }

    #[test]
    fn failures_roundtrip() {
        let records = sample_failures();
        let mut buf = Vec::new();
        write_failures(&mut buf, &records).unwrap();
        let parsed = read_failures(&buf[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn headerless_file_keeps_first_record() {
        // A file exported without a header must not lose its first row.
        let records = sample_failures();
        let mut buf = Vec::new();
        write_failures(&mut buf, &records).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let headerless = body.split_once('\n').unwrap().1;
        assert_eq!(read_failures(headerless.as_bytes()).unwrap(), records);

        let jobs = vec![JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(1),
            user: UserId::new(2),
            submit: Timestamp::from_seconds(10),
            dispatch: Timestamp::from_seconds(20),
            end: Timestamp::from_seconds(30),
            procs: 4,
            nodes: vec![NodeId::new(3)],
        }];
        let mut buf = Vec::new();
        write_jobs(&mut buf, &jobs).unwrap();
        let body = String::from_utf8(buf).unwrap();
        let headerless = body.split_once('\n').unwrap().1;
        assert_eq!(read_jobs(headerless.as_bytes()).unwrap(), jobs);
    }

    #[test]
    fn malformed_header_is_a_parse_error_at_line_1() {
        // Neither the expected header nor parseable data.
        let csv = "node,system,time\n20,0,10,HW,-,\n";
        let err = read_failures(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn foreign_header_is_rejected_not_skipped() {
        // A jobs header atop failure data means a mixed-up export;
        // surface it instead of silently dropping a line.
        let csv = format!("{}\n20,0,10,HW,-,\n", super::headers::JOBS);
        let err = read_failures(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn concatenated_layout_sections_parse() {
        let place = |layout: &mut MachineLayout, n: u32| {
            layout.place(
                NodeId::new(n),
                NodeLocation {
                    rack: RackId::new(0),
                    position_in_rack: (n + 1) as u8,
                    room_row: 0,
                    room_col: 0,
                },
            );
        };
        let mut a = MachineLayout::new();
        place(&mut a, 0);
        let mut b = MachineLayout::new();
        place(&mut b, 1);
        let mut buf = Vec::new();
        write_layout(&mut buf, SystemId::new(1), &a).unwrap();
        write_layout(&mut buf, SystemId::new(2), &b).unwrap();
        let parsed = read_layouts(&buf[..]).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[&SystemId::new(1)], a);
        assert_eq!(parsed[&SystemId::new(2)], b);
    }

    #[test]
    fn failures_reject_bad_root_cause() {
        let csv = "system,node,time,root_cause,sub_cause,downtime\n20,0,10,BOGUS,-,\n";
        let err = read_failures(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn failures_reject_inconsistent_subcause() {
        let csv = "system,node,time,root_cause,sub_cause,downtime\n20,0,10,NET,HW:CPU,\n";
        let err = read_failures(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn failures_reject_wrong_field_count() {
        let csv = "system,node,time,root_cause,sub_cause,downtime\n20,0,10,HW\n";
        let err = read_failures(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 6 fields"));
    }

    #[test]
    fn jobs_roundtrip() {
        let jobs = vec![JobRecord {
            system: SystemId::new(8),
            job_id: JobId::new(42),
            user: UserId::new(3),
            submit: Timestamp::from_seconds(100),
            dispatch: Timestamp::from_seconds(150),
            end: Timestamp::from_seconds(500),
            procs: 8,
            nodes: vec![NodeId::new(1), NodeId::new(2)],
        }];
        let mut buf = Vec::new();
        write_jobs(&mut buf, &jobs).unwrap();
        assert_eq!(read_jobs(&buf[..]).unwrap(), jobs);
    }

    #[test]
    fn temperatures_and_neutron_roundtrip() {
        let temps = vec![TemperatureSample {
            system: SystemId::new(20),
            node: NodeId::new(9),
            time: Timestamp::from_seconds(77),
            celsius: 35.25,
        }];
        let mut buf = Vec::new();
        write_temperatures(&mut buf, &temps).unwrap();
        assert_eq!(read_temperatures(&buf[..]).unwrap(), temps);

        let neutron = vec![NeutronSample {
            time: Timestamp::from_seconds(1),
            counts_per_minute: 4123.5,
        }];
        let mut buf = Vec::new();
        write_neutron(&mut buf, &neutron).unwrap();
        assert_eq!(read_neutron(&buf[..]).unwrap(), neutron);
    }

    #[test]
    fn maintenance_roundtrip() {
        let records = vec![MaintenanceRecord {
            system: SystemId::new(2),
            node: NodeId::new(1),
            time: Timestamp::from_seconds(9),
            hardware_related: true,
            scheduled: false,
        }];
        let mut buf = Vec::new();
        write_maintenance(&mut buf, &records).unwrap();
        assert_eq!(read_maintenance(&buf[..]).unwrap(), records);
    }

    #[test]
    fn layout_roundtrip() {
        let mut layout = MachineLayout::new();
        for n in 0..10u32 {
            layout.place(
                NodeId::new(n),
                NodeLocation {
                    rack: RackId::new((n / 5) as u16),
                    position_in_rack: (n % 5 + 1) as u8,
                    room_row: 1,
                    room_col: (n / 5) as u16,
                },
            );
        }
        let mut buf = Vec::new();
        write_layout(&mut buf, SystemId::new(18), &layout).unwrap();
        let parsed = read_layouts(&buf[..]).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[&SystemId::new(18)], layout);
    }

    #[test]
    fn system_configs_roundtrip() {
        let configs = vec![SystemConfig {
            id: SystemId::new(23),
            name: "numa-23".into(),
            nodes: 5,
            procs_per_node: 128,
            hardware: HardwareClass::Numa,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(365.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        }];
        let mut buf = Vec::new();
        write_system_configs(&mut buf, &configs).unwrap();
        assert_eq!(read_system_configs(&buf[..]).unwrap(), configs);
    }

    #[test]
    fn trace_directory_roundtrip() {
        use crate::trace::SystemTraceBuilder;
        let dir = std::env::temp_dir().join(format!("hpcfail-csv-test-{}", std::process::id()));
        let config = SystemConfig {
            id: SystemId::new(20),
            name: "sys20".into(),
            nodes: 8,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: true,
            has_job_log: true,
            has_temperature: true,
        };
        let mut b = SystemTraceBuilder::new(config);
        for r in sample_failures() {
            b.push_failure(r);
        }
        let mut layout = MachineLayout::new();
        layout.place(
            NodeId::new(0),
            NodeLocation {
                rack: RackId::new(0),
                position_in_rack: 1,
                room_row: 0,
                room_col: 0,
            },
        );
        b.layout(layout);
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace.set_neutron_samples(vec![NeutronSample {
            time: Timestamp::from_seconds(5),
            counts_per_minute: 4000.0,
        }]);

        save_trace(&dir, &trace).unwrap();
        let loaded = load_trace(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        assert_eq!(loaded.len(), 1);
        let sys = loaded.system(SystemId::new(20)).unwrap();
        assert_eq!(
            sys.failures(),
            trace.system(SystemId::new(20)).unwrap().failures()
        );
        assert_eq!(sys.layout().unwrap().len(), 1);
        assert_eq!(loaded.neutron_samples().len(), 1);
    }
}
