//! Property-based tests for the trace store: window counting against a
//! brute-force oracle, the columnar query paths against row-struct
//! scans, snapshot round-trips, CSV round-trips over arbitrary records,
//! and usage-union invariants.

use hpcfail_store::csv;
use hpcfail_store::features::compute_usage;
use hpcfail_store::query::{covered_window_starts, BaselineEstimator, NodeEvents};
use hpcfail_store::snapshot::{decode_snapshot, snapshot_bytes};
use hpcfail_store::trace::{SystemTraceBuilder, Trace};
use hpcfail_types::prelude::*;
use proptest::prelude::*;

/// Brute-force oracle for [`covered_window_starts`].
fn brute_force(days: &[i64], total_days: i64, window: i64) -> u64 {
    let mut count = 0;
    for start in 0..=(total_days - window).max(-1) {
        if days.iter().any(|&d| d >= start && d < start + window) {
            count += 1;
        }
    }
    count
}

fn config(nodes: u32, days: i64) -> SystemConfig {
    SystemConfig {
        id: SystemId::new(1),
        name: "prop".into(),
        nodes,
        procs_per_node: 4,
        hardware: HardwareClass::Smp4Way,
        start: Timestamp::EPOCH,
        end: Timestamp::from_seconds(days * 86_400),
        has_layout: false,
        has_job_log: false,
        has_temperature: false,
    }
}

fn root_cause(i: u8) -> RootCause {
    match i % 6 {
        0 => RootCause::Environment,
        1 => RootCause::Hardware,
        2 => RootCause::HumanError,
        3 => RootCause::Network,
        4 => RootCause::Software,
        _ => RootCause::Undetermined,
    }
}

/// A sub-cause consistent with `root`, varied by `pick`, so the
/// columnar class codes see every namespace.
fn sub_cause(root: RootCause, pick: u8) -> SubCause {
    match (root, pick % 3) {
        (RootCause::Hardware, 0) => SubCause::Hardware(HardwareComponent::Cpu),
        (RootCause::Hardware, 1) => SubCause::Hardware(HardwareComponent::MemoryDimm),
        (RootCause::Software, 0) => SubCause::Software(SoftwareCause::Os),
        (RootCause::Software, 1) => SubCause::Software(SoftwareCause::Pfs),
        (RootCause::Environment, 0) => SubCause::Environment(EnvironmentCause::PowerOutage),
        (RootCause::Environment, 1) => SubCause::Environment(EnvironmentCause::Ups),
        _ => SubCause::None,
    }
}

/// The failure classes a query can restrict to, spanning `Any`, root
/// and sub-cause granularity.
const QUERY_CLASSES: &[FailureClass] = &[
    FailureClass::Any,
    FailureClass::Root(RootCause::Hardware),
    FailureClass::Root(RootCause::Software),
    FailureClass::Root(RootCause::Environment),
    FailureClass::Root(RootCause::Undetermined),
    FailureClass::Hw(HardwareComponent::Cpu),
    FailureClass::Hw(HardwareComponent::MemoryDimm),
    FailureClass::Sw(SoftwareCause::Os),
    FailureClass::Env(EnvironmentCause::PowerOutage),
];

fn build_trace(
    failures: &[(u32, i64, u8, u8)],
    maintenance: &[(u32, i64, u8)],
) -> hpcfail_store::trace::SystemTrace {
    let mut b = SystemTraceBuilder::new(config(5, 100));
    for &(node, sec, root, pick) in failures {
        let root = root_cause(root);
        b.push_failure(FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node),
            Timestamp::from_seconds(sec),
            root,
            sub_cause(root, pick),
        ));
    }
    for &(node, sec, flags) in maintenance {
        b.push_maintenance(MaintenanceRecord {
            system: SystemId::new(1),
            node: NodeId::new(node),
            time: Timestamp::from_seconds(sec),
            hardware_related: flags & 2 != 0,
            scheduled: flags & 1 != 0,
        });
    }
    b.build()
}

proptest! {
    #[test]
    fn covered_starts_matches_brute_force(
        mut days in prop::collection::vec(0i64..60, 0..20),
        total in 1i64..70,
        window in 1i64..35,
    ) {
        days.sort_unstable();
        let fast = covered_window_starts(&days, total, window);
        let slow = brute_force(&days, total, window);
        prop_assert_eq!(fast, slow, "days {:?} total {} window {}", days, total, window);
    }

    #[test]
    fn baseline_probability_in_unit_interval(
        failures in prop::collection::vec((0u32..5, 0i64..100 * 86_400, 0u8..6), 0..60),
    ) {
        let mut b = SystemTraceBuilder::new(config(5, 100));
        for &(node, sec, root) in &failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(node),
                Timestamp::from_seconds(sec),
                root_cause(root),
                SubCause::None,
            ));
        }
        let t = b.build();
        let est = BaselineEstimator::new(&t);
        for window in Window::ALL {
            let c = est.failure_probability(FailureClass::Any, window);
            prop_assert!(c.hits <= c.total);
            // Longer windows can only raise the per-window hit probability.
        }
        let day = est.failure_probability(FailureClass::Any, Window::Day).probability();
        let month = est.failure_probability(FailureClass::Any, Window::Month).probability();
        prop_assert!(month >= day - 1e-12, "month {month} < day {day}");
    }

    #[test]
    fn window_query_matches_linear_scan(
        failures in prop::collection::vec((0i64..50 * 86_400, 0u8..6), 0..40),
        after in 0i64..50 * 86_400,
        span in 1i64..20 * 86_400,
    ) {
        let mut b = SystemTraceBuilder::new(config(1, 50));
        for &(sec, root) in &failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(0),
                Timestamp::from_seconds(sec),
                root_cause(root),
                SubCause::None,
            ));
        }
        let t = b.build();
        let node = NodeId::new(0);
        let t0 = Timestamp::from_seconds(after);
        let t1 = Timestamp::from_seconds(after + span);
        let fast = t.node_has_failure_in(node, FailureClass::Any, t0, t1);
        let slow = failures.iter().any(|&(sec, _)| sec > after && sec <= after + span);
        prop_assert_eq!(fast, slow);
        let fast_count = t.node_failures_in(node, FailureClass::Any, t0, t1);
        let slow_count =
            failures.iter().filter(|&&(sec, _)| sec > after && sec <= after + span).count();
        prop_assert_eq!(fast_count, slow_count);
    }

    #[test]
    fn indexed_paths_match_direct_scan(
        failures in prop::collection::vec((0u32..5, 0i64..100 * 86_400, 0u8..6), 0..60),
        maintenance in prop::collection::vec((0u32..5, 0i64..100 * 86_400, 0u8..2), 0..20),
    ) {
        let mut b = SystemTraceBuilder::new(config(5, 100));
        for &(node, sec, root) in &failures {
            b.push_failure(FailureRecord::new(
                SystemId::new(1),
                NodeId::new(node),
                Timestamp::from_seconds(sec),
                root_cause(root),
                SubCause::None,
            ));
        }
        for &(node, sec, scheduled) in &maintenance {
            b.push_maintenance(MaintenanceRecord {
                system: SystemId::new(1),
                node: NodeId::new(node),
                time: Timestamp::from_seconds(sec),
                hardware_related: true,
                scheduled: scheduled == 1,
            });
        }
        let t = b.build();
        let est = BaselineEstimator::new(&t);
        let events = NodeEvents::new(&t);
        let classes = [
            FailureClass::Any,
            FailureClass::Root(RootCause::Hardware),
            FailureClass::Root(RootCause::Software),
            FailureClass::Root(RootCause::Environment),
        ];
        for class in classes {
            for window in Window::ALL {
                prop_assert_eq!(
                    t.indexed_failure_baseline(class, window),
                    est.failure_probability(class, window),
                    "baseline mismatch for {:?} {:?}", class, window
                );
                for node in t.nodes() {
                    prop_assert_eq!(
                        t.indexed_node_failure_baseline(node, class, window),
                        est.node_failure_probability(node, class, window),
                        "node baseline mismatch for {:?} {:?} {:?}", node, class, window
                    );
                }
            }
            for node in t.nodes() {
                let indexed = t.indexed_failure_days(node, class);
                let direct = events.failure_days(node, class);
                prop_assert_eq!(
                    indexed.as_slice(), direct.as_slice(),
                    "day vector mismatch for {:?} {:?}", node, class
                );
            }
        }
        for window in Window::ALL {
            prop_assert_eq!(
                t.indexed_maintenance_baseline(window),
                est.maintenance_probability(window),
                "maintenance baseline mismatch for {:?}", window
            );
        }
        for node in t.nodes() {
            let indexed = t.indexed_maintenance_days(node);
            let direct = events.unscheduled_hw_maintenance_days(node);
            prop_assert_eq!(
                indexed.as_slice(), direct.as_slice(),
                "maintenance days mismatch for {:?}", node
            );
        }
    }

    /// Differential test of the columnar query paths: every class
    /// granularity (any / root / sub-cause), every node, against plain
    /// scans over the materialized row structs.
    #[test]
    fn columnar_queries_match_row_scans(
        failures in prop::collection::vec(
            (0u32..5, 0i64..100 * 86_400, 0u8..6, 0u8..3), 0..60),
        maintenance in prop::collection::vec(
            (0u32..5, 0i64..100 * 86_400, 0u8..4), 0..20),
        after in 0i64..100 * 86_400,
        span in 1i64..30 * 86_400,
    ) {
        let t = build_trace(&failures, &maintenance);
        let events = NodeEvents::new(&t);
        let rows = t.failures();
        let t0 = Timestamp::from_seconds(after);
        let t1 = Timestamp::from_seconds(after + span);
        for &class in QUERY_CLASSES {
            for node in t.nodes() {
                let mut oracle_days: Vec<i64> = rows
                    .iter()
                    .filter(|r| r.node == node && class.matches(r))
                    .map(|r| r.time.day_index())
                    .collect();
                oracle_days.sort_unstable();
                oracle_days.dedup();
                prop_assert_eq!(
                    events.failure_days(node, class),
                    oracle_days,
                    "day vector mismatch for {:?} {:?}", node, class
                );
                let oracle_count = rows
                    .iter()
                    .filter(|r| {
                        r.node == node && class.matches(r) && r.time > t0 && r.time <= t1
                    })
                    .count();
                prop_assert_eq!(
                    t.node_failures_in(node, class, t0, t1),
                    oracle_count,
                    "window count mismatch for {:?} {:?}", node, class
                );
                prop_assert_eq!(
                    t.node_has_failure_in(node, class, t0, t1),
                    oracle_count > 0,
                    "window presence mismatch for {:?} {:?}", node, class
                );
            }
        }
        for node in t.nodes() {
            let mut oracle_days: Vec<i64> = t
                .maintenance()
                .iter()
                .filter(|m| m.node == node && m.hardware_related && !m.scheduled)
                .map(|m| m.time.day_index())
                .collect();
            oracle_days.sort_unstable();
            oracle_days.dedup();
            prop_assert_eq!(
                events.unscheduled_hw_maintenance_days(node),
                oracle_days,
                "maintenance day mismatch for {:?}", node
            );
        }
    }

    /// A snapshot round trip reproduces the exact row structs and the
    /// same answers to every query granularity.
    #[test]
    fn snapshot_round_trip_is_lossless(
        failures in prop::collection::vec(
            (0u32..5, 0i64..100 * 86_400, 0u8..6, 0u8..3), 0..60),
        maintenance in prop::collection::vec(
            (0u32..5, 0i64..100 * 86_400, 0u8..4), 0..20),
    ) {
        let mut trace = Trace::new();
        trace.insert_system(build_trace(&failures, &maintenance));
        let restored = decode_snapshot(&snapshot_bytes(&trace)).expect("round trip");
        let before = trace.system(SystemId::new(1)).unwrap();
        let system = restored.system(SystemId::new(1)).unwrap();
        prop_assert_eq!(before.failures(), system.failures());
        prop_assert_eq!(before.maintenance(), system.maintenance());
        let a = BaselineEstimator::new(before);
        let b = BaselineEstimator::new(system);
        for &class in QUERY_CLASSES {
            for window in Window::ALL {
                prop_assert_eq!(
                    a.failure_probability(class, window),
                    b.failure_probability(class, window),
                    "baseline mismatch for {:?} {:?}", class, window
                );
            }
        }
        for window in Window::ALL {
            prop_assert_eq!(
                a.maintenance_probability(window),
                b.maintenance_probability(window)
            );
        }
    }

    #[test]
    fn failures_roundtrip_csv(
        records in prop::collection::vec(
            (0u32..64, 0i64..10_000_000, 0u8..6, prop::option::of(1i64..100_000)),
            0..40,
        ),
    ) {
        let failures: Vec<FailureRecord> = records
            .iter()
            .map(|&(node, sec, root, downtime)| {
                let mut r = FailureRecord::new(
                    SystemId::new(7),
                    NodeId::new(node),
                    Timestamp::from_seconds(sec),
                    root_cause(root),
                    SubCause::None,
                );
                if let Some(d) = downtime {
                    r = r.with_downtime(Duration::from_seconds(d));
                }
                r
            })
            .collect();
        let mut buf = Vec::new();
        csv::write_failures(&mut buf, &failures).expect("in-memory write");
        let parsed = csv::read_failures(&buf[..]).expect("parse back");
        prop_assert_eq!(parsed, failures);
    }

    #[test]
    fn jobs_roundtrip_csv(
        jobs in prop::collection::vec(
            (0u32..500, 0i64..1_000_000, 1i64..100_000, 1u32..64, prop::collection::vec(0u32..64, 1..5)),
            0..25,
        ),
    ) {
        let records: Vec<JobRecord> = jobs
            .iter()
            .enumerate()
            .map(|(i, (user, submit, run, procs, nodes))| JobRecord {
                system: SystemId::new(8),
                job_id: JobId::new(i as u64),
                user: UserId::new(*user),
                submit: Timestamp::from_seconds(*submit),
                dispatch: Timestamp::from_seconds(*submit + 60),
                end: Timestamp::from_seconds(*submit + 60 + *run),
                procs: *procs,
                nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
            })
            .collect();
        let mut buf = Vec::new();
        csv::write_jobs(&mut buf, &records).expect("in-memory write");
        prop_assert_eq!(csv::read_jobs(&buf[..]).expect("parse back"), records);
    }

    #[test]
    fn utilization_bounded_by_one(
        jobs in prop::collection::vec((0u32..4, 0i64..90, 1i64..40), 0..30),
    ) {
        let mut b = SystemTraceBuilder::new(config(4, 100));
        for (i, &(node, start, len)) in jobs.iter().enumerate() {
            b.push_job(JobRecord {
                system: SystemId::new(1),
                job_id: JobId::new(i as u64),
                user: UserId::new(0),
                submit: Timestamp::from_days(start as f64),
                dispatch: Timestamp::from_days(start as f64),
                end: Timestamp::from_days((start + len) as f64),
                procs: 4,
                nodes: vec![NodeId::new(node)],
            });
        }
        let t = b.build();
        for u in compute_usage(&t) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u.utilization));
            prop_assert!(u.busy.as_seconds() <= 100 * 86_400);
        }
    }
}
