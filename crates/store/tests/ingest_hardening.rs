//! Reader-hardening properties: arbitrary bytes through every reader
//! must never panic, lenient reads must never fail on parse errors, and
//! strict and lenient must agree on clean input.

use hpcfail_store::csv::{self, headers};
use hpcfail_store::ingest::{
    read_failures_with, read_jobs_with, read_layout_rows_with, read_maintenance_with,
    read_neutron_with, read_system_configs_with, read_temperatures_with, IngestPolicy,
};
use proptest::prelude::*;

/// Biases raw fuzz bytes toward CSV-looking content (digits, commas,
/// newlines) so the fuzz reaches past the field-count check into value
/// parsing, while keeping plenty of genuinely arbitrary bytes.
fn soupify(raw: Vec<u8>) -> Vec<u8> {
    const PALETTE: &[u8] = b",\n\r-:.";
    raw.into_iter()
        .map(|b| match b % 4 {
            0 => PALETTE[(b as usize / 4) % PALETTE.len()],
            1 => b'0' + (b / 4) % 10,
            _ => b,
        })
        .collect()
}

/// A clean failures file with one line replaced by arbitrary bytes.
fn mutate_failures(line: usize, junk: &[u8]) -> Vec<u8> {
    let clean = format!(
        "{}\n20,0,1000,HW,HW:CPU,3600\n20,5,2000,ENV,ENV:UPS,\n20,7,3000,UNDET,-,\n",
        headers::FAILURES
    );
    let mut lines: Vec<Vec<u8>> = clean
        .trim_end()
        .split('\n')
        .map(|l| l.as_bytes().to_vec())
        .collect();
    // Keep the mutation on one physical line so the damage is exactly
    // one line's worth.
    lines[line] = junk
        .iter()
        .copied()
        .filter(|&b| b != b'\n' && b != b'\r')
        .collect();
    let mut out = lines.join(&b"\n"[..]);
    out.push(b'\n');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_reader_panics_on_arbitrary_bytes(raw in prop::collection::vec(0u8..=255, 0..400)) {
        let bytes = soupify(raw);
        // Lenient never fails on content, only on I/O (impossible here).
        prop_assert!(read_failures_with(&bytes[..], "f", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_jobs_with(&bytes[..], "j", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_temperatures_with(&bytes[..], "t", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_maintenance_with(&bytes[..], "m", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_neutron_with(&bytes[..], "n", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_system_configs_with(&bytes[..], "s", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_layout_rows_with(&bytes[..], "l", IngestPolicy::Lenient).is_ok());
        prop_assert!(read_failures_with(&bytes[..], "f", IngestPolicy::BestEffort).is_ok());
        // Strict may reject, but must return an error, not panic.
        let _ = csv::read_failures(&bytes[..]);
        let _ = csv::read_jobs(&bytes[..]);
        let _ = csv::read_temperatures(&bytes[..]);
        let _ = csv::read_maintenance(&bytes[..]);
        let _ = csv::read_neutron(&bytes[..]);
        let _ = csv::read_system_configs(&bytes[..]);
        let _ = csv::read_layouts(&bytes[..]);
    }

    #[test]
    fn mutated_lines_never_panic_and_lenient_recovers(
        line in 0usize..4,
        junk in prop::collection::vec(0u8..=255, 0..60),
    ) {
        let bytes = mutate_failures(line, &junk);
        let lenient = read_failures_with(&bytes[..], "failures.csv", IngestPolicy::Lenient);
        prop_assert!(lenient.is_ok());
        let lenient = lenient.unwrap();
        // One mutated line can cost at most one quarantine entry, and
        // at least two of the three data lines are untouched.
        prop_assert!(lenient.quarantined.len() <= 1);
        prop_assert!(lenient.records.len() >= 2);
        let _ = csv::read_failures(&bytes[..]);
    }

    #[test]
    fn strict_and_lenient_agree_on_clean_failures(
        n in 0usize..20,
        times in prop::collection::vec(0i64..1_000_000, 20),
        causes in prop::collection::vec(0u8..6, 20),
    ) {
        let labels = ["ENV", "HW", "HUMAN", "NET", "SW", "UNDET"];
        let mut text = format!("{}\n", headers::FAILURES);
        for i in 0..n {
            text.push_str(&format!(
                "20,{},{},{},-,\n",
                i % 7,
                times[i],
                labels[causes[i] as usize],
            ));
        }
        let strict = csv::read_failures(text.as_bytes()).expect("clean input");
        let lenient = read_failures_with(text.as_bytes(), "f", IngestPolicy::Lenient)
            .expect("lenient never fails on content");
        let best = read_failures_with(text.as_bytes(), "f", IngestPolicy::BestEffort)
            .expect("best-effort never fails on content");
        prop_assert_eq!(&lenient.records, &strict);
        prop_assert_eq!(&best.records, &strict);
        prop_assert!(lenient.quarantined.is_empty());
        prop_assert_eq!(lenient.defaulted_fields, 0);
        prop_assert_eq!(best.defaulted_fields, 0);
    }
}
