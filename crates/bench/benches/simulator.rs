//! Criterion benches over the synthetic-fleet generator, including the
//! mechanism ablations DESIGN.md calls out (excitation, frailty, node-0
//! role, cluster events): the ablated fleets must not be slower than
//! the full mechanism set, and the bench output doubles as a timing
//! record of what each mechanism costs.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcfail_synth::excitation::ExcitationMatrix;
use hpcfail_synth::sim::SimOptions;
use hpcfail_synth::spec::{FleetSpec, SystemSpec};

fn small_fleet() -> FleetSpec {
    let mut fleet = FleetSpec::demo();
    fleet.systems = vec![SystemSpec::smp(18, 128, 730), SystemSpec::numa(2, 16, 730)];
    fleet
}

fn bench_generation(c: &mut Criterion) {
    let fleet = small_fleet();
    c.bench_function("generate_small_fleet", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            fleet.generate(seed)
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    let fleet = small_fleet();
    let mut group = c.benchmark_group("ablations");
    type Case = (&'static str, fn() -> SimOptions);
    let cases: [Case; 5] = [
        ("full", SimOptions::default),
        ("no_excitation", || SimOptions {
            excitation: ExcitationMatrix::disabled(),
            ..SimOptions::default()
        }),
        ("no_frailty", || SimOptions {
            frailty: false,
            ..SimOptions::default()
        }),
        ("no_node0_role", || SimOptions {
            node0_role: false,
            ..SimOptions::default()
        }),
        ("no_cluster_events", || SimOptions {
            cluster_events: false,
            ..SimOptions::default()
        }),
    ];
    for (name, make) in cases {
        group.bench_function(name, |b| {
            let options = make();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fleet.generate_with(seed, &options)
            })
        });
    }
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    use hpcfail_synth::workload::{accumulate_usage, generate_workload};
    use hpcfail_types::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let spec = hpcfail_synth::spec::WorkloadSpec::default();
    c.bench_function("generate_workload_1y", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            generate_workload(&mut rng, &spec, SystemId::new(8), 256, 4, 365)
        })
    });
    let mut rng = StdRng::seed_from_u64(1);
    let workload = generate_workload(&mut rng, &spec, SystemId::new(8), 256, 4, 365);
    c.bench_function("accumulate_usage_1y", |b| {
        b.iter(|| accumulate_usage(&workload, 256, 365))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_ablations, bench_workload
}
criterion_main!(benches);
