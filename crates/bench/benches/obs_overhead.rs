//! Measures the cost of the observability layer on the hot paths it
//! instruments.
//!
//! Two kinds of comparison:
//!
//! - micro: a raw front-door call (counter increment, histogram record,
//!   span enter/exit) against the equivalent uninstrumented work;
//! - macro: `parallel_map` over a realistic per-item workload against a
//!   hand-rolled uninstrumented equivalent, which bounds the
//!   end-to-end overhead of its instrumentation.
//!
//! Build with `--no-default-features --features no-obs` to see the
//! compiled-out variant: the front-door calls then cost nothing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpcfail_core::parallel::parallel_map;

/// The per-item workload for the macro comparison: enough arithmetic
/// that one item is comparable to a small window-counting query.
fn work(x: &u64) -> u64 {
    let mut acc = *x;
    for i in 0..512 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17) ^ i;
    }
    acc
}

/// `parallel_map` without any instrumentation, for the baseline.
fn bare_parallel_map(items: &[u64], threads: usize) -> Vec<u64> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let results: Vec<Mutex<Option<u64>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let results = &results;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *results[i].lock().unwrap() = Some(work(&items[i]));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().unwrap())
        .collect()
}

fn bench_front_door(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_front_door");
    group.bench_function("counter_inc", |b| {
        let counter = hpcfail_obs::counter("bench.overhead.count");
        b.iter(|| counter.inc());
    });
    group.bench_function("histogram_record", |b| {
        let hist = hpcfail_obs::histogram("bench.overhead.hist");
        b.iter(|| hist.record(black_box(1_500)));
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let _span = hpcfail_obs::span("bench.overhead.span");
        });
    });
    group.bench_function("registry_lookup", |b| {
        b.iter(|| hpcfail_obs::counter(black_box("bench.overhead.lookup")));
    });
    group.finish();
}

fn bench_parallel_map_overhead(c: &mut Criterion) {
    let items: Vec<u64> = (0..4_096).collect();
    let mut group = c.benchmark_group("obs_parallel_map");
    group.bench_function("instrumented", |b| {
        b.iter(|| parallel_map(black_box(&items), 4, work));
    });
    group.bench_function("uninstrumented_baseline", |b| {
        b.iter(|| bare_parallel_map(black_box(&items), 4));
    });
    group.finish();
}

criterion_group!(benches, bench_front_door, bench_parallel_map_overhead);
criterion_main!(benches);
