//! Cold-build vs warm-hit benches for the store's timeline index,
//! against the direct-scan `BaselineEstimator` as the reference point.
//!
//! Three measurements per baseline kind:
//!
//! - `*_direct_scan` — the pre-index path, re-deriving day vectors from
//!   raw records on every call;
//! - `*_cache_cold` — first query on a fresh index (clone of the trace,
//!   whose index starts empty), paying the build;
//! - `*_cache_warm` — repeat query on an already-built index, the
//!   steady-state cost every later consumer pays.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcfail_store::query::BaselineEstimator;
use hpcfail_store::trace::Trace;
use hpcfail_synth::spec::FleetSpec;
use hpcfail_types::prelude::*;

fn bench_fleet() -> Trace {
    FleetSpec::lanl_scaled(0.2).generate(42).into_store()
}

fn bench_failure_baseline(c: &mut Criterion) {
    let trace = bench_fleet();
    let system = trace.system(SystemId::new(18)).expect("system 18 exists");

    c.bench_function("failure_baseline_direct_scan", |b| {
        b.iter(|| {
            BaselineEstimator::new(system).failure_probability(FailureClass::Any, Window::Week)
        })
    });
    c.bench_function("failure_baseline_cache_cold", |b| {
        // Cloning a SystemTrace yields a cold index, so every iteration
        // pays the full build.
        b.iter_batched(
            || system.clone(),
            |fresh| fresh.indexed_failure_baseline(FailureClass::Any, Window::Week),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("failure_baseline_cache_warm", |b| {
        system.indexed_failure_baseline(FailureClass::Any, Window::Week);
        b.iter(|| system.indexed_failure_baseline(FailureClass::Any, Window::Week))
    });
}

fn bench_maintenance_baseline(c: &mut Criterion) {
    let trace = bench_fleet();
    let system = trace.system(SystemId::new(18)).expect("system 18 exists");

    c.bench_function("maintenance_baseline_direct_scan", |b| {
        b.iter(|| BaselineEstimator::new(system).maintenance_probability(Window::Month))
    });
    c.bench_function("maintenance_baseline_cache_cold", |b| {
        b.iter_batched(
            || system.clone(),
            |fresh| fresh.indexed_maintenance_baseline(Window::Month),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("maintenance_baseline_cache_warm", |b| {
        system.indexed_maintenance_baseline(Window::Month);
        b.iter(|| system.indexed_maintenance_baseline(Window::Month))
    });
}

fn bench_day_vectors(c: &mut Criterion) {
    let trace = bench_fleet();
    let system = trace.system(SystemId::new(18)).expect("system 18 exists");
    let node = NodeId::new(0);

    c.bench_function("failure_days_cache_cold", |b| {
        b.iter_batched(
            || system.clone(),
            |fresh| fresh.indexed_failure_days(node, FailureClass::Any),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("failure_days_cache_warm", |b| {
        system.indexed_failure_days(node, FailureClass::Any);
        b.iter(|| system.indexed_failure_days(node, FailureClass::Any))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_failure_baseline, bench_maintenance_baseline, bench_day_vectors
}
criterion_main!(benches);
