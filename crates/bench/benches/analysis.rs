//! Criterion benches over the analysis hot paths: baseline estimation,
//! conditional window counting at each scope, pairwise summaries, GLM
//! fits and CSV serialization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcfail_core::correlation::Scope;
use hpcfail_core::engine::Engine;
use hpcfail_core::predict::AlarmRule;
use hpcfail_core::regression_study::StudyFamily;
use hpcfail_stats::glm::{fit_negative_binomial, Family, GlmModel};
use hpcfail_store::csv;
use hpcfail_store::query::{covered_window_starts, BaselineEstimator};
use hpcfail_store::trace::Trace;
use hpcfail_synth::spec::FleetSpec;
use hpcfail_types::prelude::*;

fn bench_fleet() -> Trace {
    FleetSpec::lanl_scaled(0.2).generate(42).into_store()
}

fn bench_baseline(c: &mut Criterion) {
    let trace = bench_fleet();
    let system = trace.system(SystemId::new(18)).expect("system 18 exists");
    c.bench_function("baseline_week_probability", |b| {
        b.iter(|| {
            BaselineEstimator::new(system).failure_probability(FailureClass::Any, Window::Week)
        })
    });
    c.bench_function("baseline_month_memory", |b| {
        b.iter(|| {
            BaselineEstimator::new(system).failure_probability(
                FailureClass::Hw(HardwareComponent::MemoryDimm),
                Window::Month,
            )
        })
    });
}

fn bench_conditionals(c: &mut Criterion) {
    let engine = Engine::new(bench_fleet());
    let analysis = engine.correlation();
    c.bench_function("conditional_same_node_week", |b| {
        b.iter(|| {
            analysis.group_conditional(
                SystemGroup::Group1,
                FailureClass::Any,
                FailureClass::Any,
                Window::Week,
                Scope::SameNode,
            )
        })
    });
    c.bench_function("conditional_same_rack_week", |b| {
        b.iter(|| {
            analysis.group_conditional(
                SystemGroup::Group1,
                FailureClass::Root(RootCause::Environment),
                FailureClass::Any,
                Window::Week,
                Scope::SameRack,
            )
        })
    });
    c.bench_function("conditional_same_system_week", |b| {
        b.iter(|| {
            analysis.group_conditional(
                SystemGroup::Group1,
                FailureClass::Root(RootCause::Network),
                FailureClass::Any,
                Window::Week,
                Scope::SameSystem,
            )
        })
    });
    c.bench_function("pairwise_same_type_summaries", |b| {
        let pairwise = engine.pairwise();
        b.iter(|| pairwise.same_type_summaries(SystemGroup::Group1, Window::Week, Scope::SameNode))
    });
    c.bench_function("power_figure10_left", |b| {
        let power = engine.power();
        b.iter(|| power.figure10_left())
    });
    c.bench_function("alarm_rule_week_evaluation", |b| {
        let rule = AlarmRule {
            trigger: FailureClass::Any,
            window: Window::Week,
        };
        b.iter(|| rule.evaluate_group(engine.trace(), SystemGroup::Group1))
    });
}

fn bench_window_kernel(c: &mut Criterion) {
    // The O(#events) interval-union kernel under the baselines.
    let days: Vec<i64> = (0..2000).map(|i| (i * 13) % 3000).collect();
    let mut sorted = days.clone();
    sorted.sort_unstable();
    c.bench_function("covered_window_starts_2000_events", |b| {
        b.iter(|| covered_window_starts(&sorted, 3000, 7))
    });
}

fn bench_glm(c: &mut Criterion) {
    let engine = Engine::new(bench_fleet());
    let study = engine.regression();
    c.bench_function("table2_poisson_fit", |b| {
        b.iter(|| {
            study
                .fit(SystemId::new(20), StudyFamily::Poisson, false)
                .expect("fits")
        })
    });
    c.bench_function("table3_negative_binomial_fit", |b| {
        b.iter(|| {
            study
                .fit(SystemId::new(20), StudyFamily::NegativeBinomial, false)
                .expect("fits")
        })
    });
    // A synthetic medium-size fit independent of the fleet.
    let n = 2000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 2.0 - 1.0).collect();
    let y: Vec<f64> = x.iter().map(|v| (1.0 + v).exp().round()).collect();
    c.bench_function("glm_poisson_2000x1", |b| {
        b.iter_batched(
            || {
                let mut m = GlmModel::new(Family::Poisson);
                m.term("x", &x);
                m
            },
            |m| m.fit(&y).expect("fits"),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("glm_nb_ml_2000x1", |b| {
        b.iter_batched(
            || {
                let mut m = GlmModel::new(Family::Poisson);
                m.term("x", &x);
                m
            },
            |m| fit_negative_binomial(&m, &y).expect("fits"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_csv(c: &mut Criterion) {
    let trace = bench_fleet();
    let system = trace.system(SystemId::new(18)).expect("system 18 exists");
    c.bench_function("csv_write_failures", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            csv::write_failures(&mut buf, system.failures()).expect("in-memory write");
            buf
        })
    });
    let mut encoded = Vec::new();
    csv::write_failures(&mut encoded, system.failures()).expect("in-memory write");
    c.bench_function("csv_read_failures", |b| {
        b.iter(|| csv::read_failures(&encoded[..]).expect("parse"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_baseline, bench_conditionals, bench_window_kernel, bench_glm, bench_csv
}
criterion_main!(benches);
