//! The reproduction harness: regenerates every table and figure of
//! El-Sayed & Schroeder (DSN 2013) against a synthetic LANL fleet.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run -p hpcfail-bench --bin repro --release -- all
//! cargo run -p hpcfail-bench --bin repro --release -- fig1a --scale 0.5 --seed 7
//! ```
//!
//! Each experiment is also callable as a library function returning its
//! report text, which the integration tests assert against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use hpcfail_core::channels::{missing_channels, Channel};
use hpcfail_core::engine::Engine;
use hpcfail_store::trace::Trace;
use hpcfail_synth::spec::FleetSpec;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The shared context: one generated fleet behind one [`Engine`].
#[derive(Debug, Clone)]
pub struct ReproContext {
    engine: Engine,
    seed: u64,
    scale: f64,
}

impl ReproContext {
    /// Generates the fleet at `scale` (1.0 = the full LANL-sized fleet)
    /// with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        let spec = if scale >= 1.0 {
            FleetSpec::lanl()
        } else {
            FleetSpec::lanl_scaled(scale)
        };
        ReproContext {
            engine: Engine::new(spec.generate(seed).into_store()),
            seed,
            scale,
        }
    }

    /// Wraps an already-loaded trace (e.g. from `--trace DIR`) so the
    /// experiments run against real records instead of a generated
    /// fleet. `seed` and `scale` are recorded for report banners only.
    pub fn from_trace(trace: Trace, seed: u64, scale: f64) -> Self {
        ReproContext {
            engine: Engine::new(trace),
            seed,
            scale,
        }
    }

    /// The analysis engine over the generated trace; every experiment
    /// reaches its per-analysis view through this single entry point.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The generated trace.
    pub fn trace(&self) -> &Trace {
        self.engine.trace()
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// How one experiment's execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentOutcome {
    /// Ran to completion; the report text.
    Report(String),
    /// Not run: the trace lacks required data channels.
    Skipped {
        /// Labels of the missing channels.
        missing: Vec<&'static str>,
    },
    /// The implementation panicked; the panic message.
    Failed {
        /// The captured panic payload (or a placeholder).
        message: String,
    },
}

impl ExperimentOutcome {
    /// `true` only for [`ExperimentOutcome::Failed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, ExperimentOutcome::Failed { .. })
    }
}

/// One experiment: id, the paper artifact it reproduces, the optional
/// data channels it needs, and its implementation.
pub struct Experiment {
    /// Short id used on the command line (e.g. `fig1a`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Channels beyond the failure log the experiment needs; it is
    /// skipped (not failed) when the trace lacks any of them.
    pub requires: &'static [Channel],
    /// Produces the report text.
    pub run: fn(&ReproContext) -> String,
}

impl Experiment {
    /// Runs the experiment inside an `exp.<id>` observability span, so
    /// every run shows up in snapshots and manifests with its wall
    /// time. Prefer this over calling `run` directly: missing channels
    /// become a typed skip and a panic is caught and reported as
    /// [`ExperimentOutcome::Failed`] (with a `repro.failed.<id>`
    /// counter) instead of tearing down the whole run.
    pub fn execute(&self, ctx: &ReproContext) -> ExperimentOutcome {
        self.execute_opts(ctx, false)
    }

    /// [`Experiment::execute`] with an optional injected failure, used
    /// by the degradation smoke tests to exercise the failure path
    /// deterministically.
    pub fn execute_opts(&self, ctx: &ReproContext, inject_failure: bool) -> ExperimentOutcome {
        let missing = missing_channels(ctx.trace(), self.requires);
        if !missing.is_empty() {
            hpcfail_obs::counter(&format!("repro.skipped.{}", self.id)).inc();
            return ExperimentOutcome::Skipped {
                missing: missing.into_iter().map(Channel::label).collect(),
            };
        }
        let _span = hpcfail_obs::span(&format!("exp.{}", self.id));
        hpcfail_obs::counter("bench.experiments_run").inc();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_failure {
                panic!("injected failure (--inject-failure)");
            }
            (self.run)(ctx)
        }));
        match result {
            Ok(report) => ExperimentOutcome::Report(report),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_owned());
                hpcfail_obs::counter(&format!("repro.failed.{}", self.id)).inc();
                ExperimentOutcome::Failed { message }
            }
        }
    }
}

/// Every experiment, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "sec3a",
        title: "III-A.1: failure probability after a failure vs a random day/week",
        requires: &[],
        run: experiments::sec3a,
    },
    Experiment {
        id: "fig1a",
        title: "Fig 1(a): P(any follow-up | failure of type X), same node, week",
        requires: &[],
        run: experiments::fig1a,
    },
    Experiment {
        id: "fig1b",
        title: "Fig 1(b): P(type X | same type / any / random), same node, week",
        requires: &[],
        run: experiments::fig1b,
    },
    Experiment {
        id: "fig2a",
        title: "Fig 2(left): P(any follow-up in rack | type X), week",
        requires: &[],
        run: experiments::fig2a,
    },
    Experiment {
        id: "fig2b",
        title: "Fig 2(right): P(type X in rack | same type / any / random), week",
        requires: &[],
        run: experiments::fig2b,
    },
    Experiment {
        id: "fig3",
        title: "Fig 3: P(any follow-up elsewhere in system | type X), week",
        requires: &[],
        run: experiments::fig3,
    },
    Experiment {
        id: "fig4",
        title: "Fig 4: failures per node id + equal-rates chi-square",
        requires: &[],
        run: experiments::fig4,
    },
    Experiment {
        id: "sec4c",
        title: "IV-C: physical location vs failure rates (null result)",
        requires: &[],
        run: experiments::sec4c,
    },
    Experiment {
        id: "fig5",
        title: "Fig 5: root-cause breakdown, node 0 vs rest",
        requires: &[],
        run: experiments::fig5,
    },
    Experiment {
        id: "fig6",
        title: "Fig 6: per-type failure probability, node 0 vs rest",
        requires: &[],
        run: experiments::fig6,
    },
    Experiment {
        id: "fig7",
        title: "Fig 7: failures vs utilization / jobs + Pearson r",
        requires: &[Channel::JobLog],
        run: experiments::fig7,
    },
    Experiment {
        id: "fig8",
        title: "Fig 8: failures per processor-day for the 50 heaviest users + ANOVA",
        requires: &[Channel::JobLog],
        run: experiments::fig8,
    },
    Experiment {
        id: "fig9",
        title: "Fig 9: breakdown of environmental failures",
        requires: &[],
        run: experiments::fig9,
    },
    Experiment {
        id: "fig10",
        title: "Fig 10: power problems vs hardware failures",
        requires: &[],
        run: experiments::fig10,
    },
    Experiment {
        id: "fig11",
        title: "Fig 11: power problems vs software failures",
        requires: &[],
        run: experiments::fig11,
    },
    Experiment {
        id: "sec7a2",
        title: "VII-A.2: unscheduled maintenance after power problems",
        requires: &[],
        run: experiments::sec7a2,
    },
    Experiment {
        id: "fig12",
        title: "Fig 12: time-space scatter of power problems (system 2)",
        requires: &[],
        run: experiments::fig12,
    },
    Experiment {
        id: "fig13",
        title: "Fig 13: fan/chiller failures vs hardware failures",
        requires: &[],
        run: experiments::fig13,
    },
    Experiment {
        id: "sec8a",
        title: "VIII-A: regressions of outages on average/max/var temperature",
        requires: &[Channel::Temperature],
        run: experiments::sec8a,
    },
    Experiment {
        id: "fig14",
        title: "Fig 14: DRAM/CPU failure probability vs neutron flux",
        requires: &[Channel::Neutron],
        run: experiments::fig14,
    },
    Experiment {
        id: "tab1",
        title: "Table I: the regression feature matrix (summary)",
        requires: &[Channel::JobLog, Channel::Temperature],
        run: experiments::tab1,
    },
    Experiment {
        id: "tab2",
        title: "Table II: Poisson regression coefficients (system 20)",
        requires: &[Channel::JobLog, Channel::Temperature],
        run: experiments::tab2,
    },
    Experiment {
        id: "tab3",
        title: "Table III: negative-binomial regression coefficients (system 20)",
        requires: &[Channel::JobLog, Channel::Temperature],
        run: experiments::tab3,
    },
    Experiment {
        id: "predict",
        title: "Extension: alarm-rule precision/recall from the correlations",
        requires: &[],
        run: experiments::predict,
    },
    Experiment {
        id: "ablation",
        title: "Extension: mechanism ablations (excitation/frailty/node-0/events/usage)",
        requires: &[],
        run: experiments::ablation,
    },
    Experiment {
        id: "interarrival",
        title: "Extension: inter-arrival distribution fits and autocorrelation",
        requires: &[],
        run: experiments::interarrival,
    },
    Experiment {
        id: "availability",
        title: "Extension: MTBF/MTTR/availability report",
        requires: &[],
        run: experiments::availability,
    },
    Experiment {
        id: "checkpoint",
        title: "Extension: checkpoint-policy replay (uniform vs correlation-adaptive)",
        requires: &[],
        run: experiments::checkpoint,
    },
    Experiment {
        id: "sweep",
        title: "Extension: window x scope sweep of the headline conditional",
        requires: &[],
        run: experiments::sweep,
    },
    Experiment {
        id: "validate",
        title: "Extension: calibration self-check against the paper's headline numbers",
        requires: &[],
        run: experiments::validate,
    },
];

/// Looks up an experiment by id.
pub fn experiment(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 30, "all experiments registered, got {n}");
    }

    #[test]
    fn lookup_works() {
        assert!(experiment("fig1a").is_some());
        assert!(experiment("nope").is_none());
    }
}
