//! The reproduction harness: regenerates every table and figure of
//! El-Sayed & Schroeder (DSN 2013) against a synthetic LANL fleet.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run -p hpcfail-bench --bin repro --release -- all
//! cargo run -p hpcfail-bench --bin repro --release -- fig1a --scale 0.5 --seed 7
//! ```
//!
//! Each experiment is also callable as a library function returning its
//! report text, which the integration tests assert against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use hpcfail_store::trace::Trace;
use hpcfail_synth::spec::FleetSpec;

/// The shared context: one generated fleet.
#[derive(Debug, Clone)]
pub struct ReproContext {
    trace: Trace,
    seed: u64,
    scale: f64,
}

impl ReproContext {
    /// Generates the fleet at `scale` (1.0 = the full LANL-sized fleet)
    /// with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        let spec = if scale >= 1.0 {
            FleetSpec::lanl()
        } else {
            FleetSpec::lanl_scaled(scale)
        };
        ReproContext {
            trace: spec.generate(seed).into_store(),
            seed,
            scale,
        }
    }

    /// The generated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// One experiment: id, the paper artifact it reproduces, and its
/// implementation.
pub struct Experiment {
    /// Short id used on the command line (e.g. `fig1a`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Produces the report text.
    pub run: fn(&ReproContext) -> String,
}

impl Experiment {
    /// Runs the experiment inside an `exp.<id>` observability span, so
    /// every run shows up in snapshots and manifests with its wall
    /// time. Prefer this over calling `run` directly.
    pub fn execute(&self, ctx: &ReproContext) -> String {
        let _span = hpcfail_obs::span(&format!("exp.{}", self.id));
        hpcfail_obs::counter("bench.experiments_run").inc();
        (self.run)(ctx)
    }
}

/// Every experiment, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "sec3a",
        title: "III-A.1: failure probability after a failure vs a random day/week",
        run: experiments::sec3a,
    },
    Experiment {
        id: "fig1a",
        title: "Fig 1(a): P(any follow-up | failure of type X), same node, week",
        run: experiments::fig1a,
    },
    Experiment {
        id: "fig1b",
        title: "Fig 1(b): P(type X | same type / any / random), same node, week",
        run: experiments::fig1b,
    },
    Experiment {
        id: "fig2a",
        title: "Fig 2(left): P(any follow-up in rack | type X), week",
        run: experiments::fig2a,
    },
    Experiment {
        id: "fig2b",
        title: "Fig 2(right): P(type X in rack | same type / any / random), week",
        run: experiments::fig2b,
    },
    Experiment {
        id: "fig3",
        title: "Fig 3: P(any follow-up elsewhere in system | type X), week",
        run: experiments::fig3,
    },
    Experiment {
        id: "fig4",
        title: "Fig 4: failures per node id + equal-rates chi-square",
        run: experiments::fig4,
    },
    Experiment {
        id: "sec4c",
        title: "IV-C: physical location vs failure rates (null result)",
        run: experiments::sec4c,
    },
    Experiment {
        id: "fig5",
        title: "Fig 5: root-cause breakdown, node 0 vs rest",
        run: experiments::fig5,
    },
    Experiment {
        id: "fig6",
        title: "Fig 6: per-type failure probability, node 0 vs rest",
        run: experiments::fig6,
    },
    Experiment {
        id: "fig7",
        title: "Fig 7: failures vs utilization / jobs + Pearson r",
        run: experiments::fig7,
    },
    Experiment {
        id: "fig8",
        title: "Fig 8: failures per processor-day for the 50 heaviest users + ANOVA",
        run: experiments::fig8,
    },
    Experiment {
        id: "fig9",
        title: "Fig 9: breakdown of environmental failures",
        run: experiments::fig9,
    },
    Experiment {
        id: "fig10",
        title: "Fig 10: power problems vs hardware failures",
        run: experiments::fig10,
    },
    Experiment {
        id: "fig11",
        title: "Fig 11: power problems vs software failures",
        run: experiments::fig11,
    },
    Experiment {
        id: "sec7a2",
        title: "VII-A.2: unscheduled maintenance after power problems",
        run: experiments::sec7a2,
    },
    Experiment {
        id: "fig12",
        title: "Fig 12: time-space scatter of power problems (system 2)",
        run: experiments::fig12,
    },
    Experiment {
        id: "fig13",
        title: "Fig 13: fan/chiller failures vs hardware failures",
        run: experiments::fig13,
    },
    Experiment {
        id: "sec8a",
        title: "VIII-A: regressions of outages on average/max/var temperature",
        run: experiments::sec8a,
    },
    Experiment {
        id: "fig14",
        title: "Fig 14: DRAM/CPU failure probability vs neutron flux",
        run: experiments::fig14,
    },
    Experiment {
        id: "tab1",
        title: "Table I: the regression feature matrix (summary)",
        run: experiments::tab1,
    },
    Experiment {
        id: "tab2",
        title: "Table II: Poisson regression coefficients (system 20)",
        run: experiments::tab2,
    },
    Experiment {
        id: "tab3",
        title: "Table III: negative-binomial regression coefficients (system 20)",
        run: experiments::tab3,
    },
    Experiment {
        id: "predict",
        title: "Extension: alarm-rule precision/recall from the correlations",
        run: experiments::predict,
    },
    Experiment {
        id: "ablation",
        title: "Extension: mechanism ablations (excitation/frailty/node-0/events/usage)",
        run: experiments::ablation,
    },
    Experiment {
        id: "interarrival",
        title: "Extension: inter-arrival distribution fits and autocorrelation",
        run: experiments::interarrival,
    },
    Experiment {
        id: "availability",
        title: "Extension: MTBF/MTTR/availability report",
        run: experiments::availability,
    },
    Experiment {
        id: "checkpoint",
        title: "Extension: checkpoint-policy replay (uniform vs correlation-adaptive)",
        run: experiments::checkpoint,
    },
    Experiment {
        id: "sweep",
        title: "Extension: window x scope sweep of the headline conditional",
        run: experiments::sweep,
    },
    Experiment {
        id: "validate",
        title: "Extension: calibration self-check against the paper's headline numbers",
        run: experiments::validate,
    },
];

/// Looks up an experiment by id.
pub fn experiment(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 30, "all experiments registered, got {n}");
    }

    #[test]
    fn lookup_works() {
        assert!(experiment("fig1a").is_some());
        assert!(experiment("nope").is_none());
    }
}
