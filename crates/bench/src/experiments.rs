//! Implementations of every experiment, one function per paper
//! table/figure. Each returns the plain-text report.

use crate::ReproContext;
use hpcfail_core::correlation::Scope;
use hpcfail_core::engine::Engine;
use hpcfail_core::parallel::{default_threads, parallel_map};
use hpcfail_core::power::PowerProblem;
use hpcfail_core::predict::AlarmRule;
use hpcfail_core::regression_study::{RegressionStudy, StudyFamily};
use hpcfail_core::temperature::TempPredictor;
use hpcfail_report::chart::ScatterPlot;
use hpcfail_report::figures::{render_conditional_table, render_glm_table};
use hpcfail_report::fmt::{factor, p_value, pct, stars};
use hpcfail_report::table::Table;
use hpcfail_types::prelude::*;

/// Systems the paper singles out.
const BIG_SYSTEMS: [u16; 3] = [18, 19, 20];
const JOB_LOG_SYSTEMS: [u16; 2] = [8, 20];
const COSMIC_SYSTEMS: [u16; 4] = [2, 18, 19, 20];
const TEMP_SYSTEM: u16 = 20;
const SCATTER_SYSTEM: u16 = 2;

pub(crate) fn sec3a(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().correlation();
    let mut t = Table::new(&["group", "window", "P(after failure)", "P(random)", "factor"]);
    for group in SystemGroup::ALL {
        for window in [Window::Day, Window::Week] {
            let e = analysis.group_conditional(
                group,
                FailureClass::Any,
                FailureClass::Any,
                window,
                Scope::SameNode,
            );
            t.row(&[
                group.label().to_owned(),
                window.to_string(),
                pct(e.conditional.estimate()),
                pct(e.baseline.estimate()),
                factor(e.factor()),
            ]);
        }
    }
    format!(
        "III-A.1 — failure probability after a failure vs random window\n{}",
        t.render()
    )
}

fn any_followup_figure(ctx: &ReproContext, window: Window, scope: Scope, title: &str) -> String {
    let analysis = ctx.engine().correlation();
    let groups: Vec<SystemGroup> = match scope {
        // Rack layout exists only for group-1 systems.
        Scope::SameRack => vec![SystemGroup::Group1],
        _ => SystemGroup::ALL.to_vec(),
    };
    let mut out = String::new();
    for group in groups {
        let bars = parallel_map(&FailureClass::FIGURE1, default_threads(), |&class| {
            (
                class,
                analysis.group_conditional(group, class, FailureClass::Any, window, scope),
            )
        });
        let labeled: Vec<(&str, _)> = bars.iter().map(|(c, e)| (c.label(), *e)).collect();
        out.push_str(&format!("{title} — {}\n", group.label()));
        out.push_str(&render_conditional_table(&labeled));
        out.push('\n');
    }
    out
}

pub(crate) fn fig1a(ctx: &ReproContext) -> String {
    any_followup_figure(
        ctx,
        Window::Week,
        Scope::SameNode,
        "Fig 1(a): P(any node failure in the week after a type-X failure)",
    )
}

fn same_type_figure(ctx: &ReproContext, scope: Scope, title: &str) -> String {
    let analysis = ctx.engine().pairwise();
    let groups: Vec<SystemGroup> = match scope {
        Scope::SameRack => vec![SystemGroup::Group1],
        _ => SystemGroup::ALL.to_vec(),
    };
    let mut out = String::new();
    for group in groups {
        let rows = analysis.same_type_summaries(group, Window::Week, scope);
        let mut t = Table::new(&[
            "type",
            "P(X|same X)",
            "factor",
            "P(X|any)",
            "factor",
            "P(X|random)",
            "signif",
        ]);
        for r in &rows {
            t.row(&[
                r.class.label().to_owned(),
                pct(r.after_same_type.conditional.estimate()),
                factor(r.same_type_factor()),
                pct(r.after_any.conditional.estimate()),
                factor(r.after_any.factor()),
                pct(r.after_same_type.baseline.estimate()),
                stars(r.after_same_type.test().p_value).to_owned(),
            ]);
        }
        out.push_str(&format!("{title} — {}\n{}\n", group.label(), t.render()));
    }
    out
}

pub(crate) fn fig1b(ctx: &ReproContext) -> String {
    same_type_figure(
        ctx,
        Scope::SameNode,
        "Fig 1(b): probability of a type-X failure following failures, same node, week",
    )
}

pub(crate) fn fig2a(ctx: &ReproContext) -> String {
    any_followup_figure(
        ctx,
        Window::Week,
        Scope::SameRack,
        "Fig 2(left): P(any failure in another node of the rack in the week after type X)",
    )
}

pub(crate) fn fig2b(ctx: &ReproContext) -> String {
    same_type_figure(
        ctx,
        Scope::SameRack,
        "Fig 2(right): probability of a type-X failure in another node of the rack, week",
    )
}

pub(crate) fn fig3(ctx: &ReproContext) -> String {
    any_followup_figure(
        ctx,
        Window::Week,
        Scope::SameSystem,
        "Fig 3: P(any failure in another node of the system in the week after type X)",
    )
}

pub(crate) fn fig4(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().nodes();
    let mut out = String::from("Fig 4: total failures per node id\n");
    for id in BIG_SYSTEMS {
        let system = SystemId::new(id);
        let counts = analysis.failure_counts(system);
        if counts.is_empty() {
            continue;
        }
        let total: u64 = counts.iter().sum();
        let avg = total as f64 / counts.len() as f64;
        let Some(top) = analysis.most_failure_prone(system) else {
            out.push_str(&format!("system {id}: no failures recorded, skipped\n"));
            continue;
        };
        let top_count = counts[top.index()];
        let (Some(all), Some(rest)) = (
            analysis.equal_rates_test(system, FailureClass::Any, &[]),
            analysis.equal_rates_test(system, FailureClass::Any, &[top]),
        ) else {
            out.push_str(&format!(
                "system {id}: too few nodes for the equal-rates test, skipped\n"
            ));
            continue;
        };
        out.push_str(&format!(
            "system {id}: {} nodes, {total} failures; max = {top} with {top_count} \
             ({:.1}x the average {avg:.1})\n  equal-rates chi-square: p {} {} | \
             without {top}: p {} {}\n",
            counts.len(),
            top_count as f64 / avg.max(1e-9),
            p_value(all.p_value),
            if all.significant_at(0.01) {
                "(rejected)"
            } else {
                "(not rejected)"
            },
            p_value(rest.p_value),
            if rest.significant_at(0.01) {
                "(rejected)"
            } else {
                "(not rejected)"
            },
        ));
        // The paper repeats the test per failure type and can reject for
        // every type except human error.
        let per_type: Vec<String> = RootCause::ALL
            .iter()
            .filter_map(|&root| {
                analysis
                    .equal_rates_test(system, FailureClass::Root(root), &[])
                    .map(|t| {
                        format!(
                            "{}{}",
                            root.label(),
                            if t.significant_at(0.01) {
                                "(rej)"
                            } else {
                                "(keep)"
                            }
                        )
                    })
            })
            .collect();
        out.push_str(&format!("  per-type equal-rates: {}\n", per_type.join(" ")));
    }
    out
}

pub(crate) fn fig5(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().nodes();
    let mut out = String::from("Fig 5: root-cause breakdown, node 0 vs rest of system\n");
    for id in BIG_SYSTEMS {
        let system = SystemId::new(id);
        let node0 = NodeId::new(0);
        let n0 = analysis.root_cause_shares(system, &[node0]);
        let rest = analysis.root_cause_shares(system, &analysis.rest_of(system, node0));
        if n0.is_empty() && rest.is_empty() {
            continue;
        }
        let mut t = Table::new(&["root cause", "node 0", "rest"]);
        for root in RootCause::ALL {
            t.row(&[
                root.label().to_owned(),
                pct(n0.get(&root).copied().unwrap_or(0.0)),
                pct(rest.get(&root).copied().unwrap_or(0.0)),
            ]);
        }
        out.push_str(&format!("system {id}:\n{}\n", t.render()));
    }
    out
}

pub(crate) fn fig6(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().nodes();
    let classes: [FailureClass; 6] = [
        FailureClass::Root(RootCause::Environment),
        FailureClass::Root(RootCause::Network),
        FailureClass::Root(RootCause::Software),
        FailureClass::Root(RootCause::Hardware),
        FailureClass::Root(RootCause::HumanError),
        FailureClass::Root(RootCause::Undetermined),
    ];
    let mut out =
        String::from("Fig 6: per-type failure probability, node 0 vs rest (day/week/month)\n");
    for id in BIG_SYSTEMS {
        let system = SystemId::new(id);
        if ctx.trace().system(system).is_none() {
            continue;
        }
        let mut t = Table::new(&["type", "window", "P(node 0)", "P(rest)", "factor"]);
        for class in classes {
            for window in Window::ALL {
                let cmp = analysis.node_vs_rest(system, NodeId::new(0), class, window);
                t.row(&[
                    class.label().to_owned(),
                    window.to_string(),
                    pct(cmp.node.estimate()),
                    pct(cmp.rest.estimate()),
                    factor(cmp.factor()),
                ]);
            }
        }
        out.push_str(&format!("system {id}:\n{}\n", t.render()));
    }
    out
}

pub(crate) fn fig7(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().usage();
    let mut out = String::from("Fig 7: node failures vs usage\n");
    for id in JOB_LOG_SYSTEMS {
        let system = SystemId::new(id);
        let points = analysis.scatter(system);
        if points.is_empty() {
            continue;
        }
        let mut by_util = ScatterPlot::new(
            &format!("system {id}: failures vs utilization"),
            "utilization %",
            "failures",
        );
        let mut by_jobs = ScatterPlot::new(
            &format!("system {id}: failures vs jobs"),
            "jobs",
            "failures",
        );
        for p in &points {
            let glyph = if p.node == NodeId::new(0) { 'X' } else { 'o' };
            by_util.point(p.utilization_pct, p.failures as f64, glyph);
            by_jobs.point(p.num_jobs as f64, p.failures as f64, glyph);
        }
        let jobs_r = analysis.jobs_failures_pearson(system);
        let util_r = analysis.util_failures_pearson(system);
        let rank = analysis.jobs_failures_spearman(system);
        out.push_str(&by_util.render(60, 14));
        out.push_str(&by_jobs.render(60, 14));
        out.push_str(&format!(
            "Pearson r(jobs, failures) = {:.3} | without node 0 = {:.3}\n\
             Pearson r(util, failures) = {:.3} | without node 0 = {:.3}\n\
             Spearman rho(jobs, failures) = {:.3} (robust check)\n\n",
            jobs_r.all_nodes.unwrap_or(f64::NAN),
            jobs_r.without_node0.unwrap_or(f64::NAN),
            util_r.all_nodes.unwrap_or(f64::NAN),
            util_r.without_node0.unwrap_or(f64::NAN),
            rank.all_nodes.unwrap_or(f64::NAN),
        ));
    }
    out
}

pub(crate) fn fig8(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().users();
    let mut out = String::from("Fig 8: node failures per processor-day, 50 heaviest users\n");
    for id in JOB_LOG_SYSTEMS {
        let system = SystemId::new(id);
        let top = analysis.heaviest_users(system, 50);
        if top.is_empty() {
            continue;
        }
        let rates: Vec<f64> = top.iter().map(|u| u.failures_per_processor_day()).collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let test = analysis.heterogeneity_test(&top);
        out.push_str(&format!(
            "system {id}: {} heavy users; failure rate per processor-day \
             min {min:.2e}, max {max:.2e} ({}x spread)\n",
            top.len(),
            if min > 0.0 {
                format!("{:.0}", max / min)
            } else {
                "inf".to_owned()
            },
        ));
        if let Some(t) = test {
            out.push_str(&format!(
                "  ANOVA saturated-vs-common-rate: chi2 = {:.1} (df {}), p {} {}\n",
                t.statistic,
                t.df,
                p_value(t.p_value),
                if t.significant_at(0.01) {
                    "-> per-user rates differ (saturated model wins)"
                } else {
                    "-> no significant heterogeneity"
                },
            ));
        }
    }
    out
}

pub(crate) fn fig9(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().power();
    let shares = analysis.env_shares();
    let counts = analysis.env_breakdown();
    let mut t = Table::new(&["environment sub-cause", "count", "share"]);
    for cause in EnvironmentCause::ALL {
        t.row(&[
            cause.label().to_owned(),
            counts.get(&cause).copied().unwrap_or(0).to_string(),
            pct(shares.get(&cause).copied().unwrap_or(0.0)),
        ]);
    }
    format!(
        "Fig 9: breakdown of environmental failures (fleet-wide)\n{}",
        t.render()
    )
}

pub(crate) fn fig10(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().power();
    let mut out = String::from(
        "Fig 10 (left): P(hardware failure on the node within window after power problem)\n",
    );
    let mut left = Table::new(&[
        "trigger",
        "window",
        "P(cond)",
        "P(random)",
        "factor",
        "signif",
    ]);
    for (problem, window, e) in analysis.figure10_left() {
        left.row(&[
            problem.label().to_owned(),
            window.to_string(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
            stars(e.test().p_value).to_owned(),
        ]);
    }
    out.push_str(&left.render());
    out.push_str("\nFig 10 (right): per-component probability within a month\n");
    let mut right = Table::new(&["component", "trigger", "P(cond)", "P(random)", "factor"]);
    for (problem, component, e) in analysis.figure10_right() {
        right.row(&[
            component.label().to_owned(),
            problem.label().to_owned(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
        ]);
    }
    out.push_str(&right.render());
    out
}

pub(crate) fn fig11(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().power();
    let mut out = String::from(
        "Fig 11 (left): P(software failure on the node within window after power problem)\n",
    );
    let mut left = Table::new(&[
        "trigger",
        "window",
        "P(cond)",
        "P(random)",
        "factor",
        "signif",
    ]);
    for (problem, window, e) in analysis.figure11_left() {
        left.row(&[
            problem.label().to_owned(),
            window.to_string(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
            stars(e.test().p_value).to_owned(),
        ]);
    }
    out.push_str(&left.render());
    out.push_str("\nFig 11 (right): per-software-sub-cause probability within a month\n");
    let mut right = Table::new(&["sub-cause", "trigger", "P(cond)", "P(random)", "factor"]);
    for (problem, cause, e) in analysis.figure11_right() {
        right.row(&[
            cause.label().to_owned(),
            problem.label().to_owned(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
        ]);
    }
    out.push_str(&right.render());
    out
}

pub(crate) fn sec7a2(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().power();
    let mut t = Table::new(&[
        "trigger",
        "P(maint within month)",
        "P(random month)",
        "factor",
        "signif",
    ]);
    for problem in PowerProblem::ALL {
        let e = analysis.maintenance_after(problem);
        t.row(&[
            problem.label().to_owned(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
            stars(e.test().p_value).to_owned(),
        ]);
    }
    format!(
        "VII-A.2: unscheduled hardware maintenance within a month of a power problem\n{}",
        t.render()
    )
}

pub(crate) fn fig12(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().power();
    let system = SystemId::new(SCATTER_SYSTEM);
    let points = analysis.scatter(system);
    let mut out =
        format!("Fig 12: power-related failures over time and nodes (system {SCATTER_SYSTEM})\n");
    if points.is_empty() {
        out.push_str("(no power-related failures recorded)\n");
        return out;
    }
    for problem in PowerProblem::ALL {
        let mut plot = ScatterPlot::new(problem.label(), "time (day)", "node id");
        for p in points.iter().filter(|p| p.kind == problem) {
            plot.point(p.time.as_days(), p.node.raw() as f64, '*');
        }
        if plot.is_empty() {
            out.push_str(&format!("{}: (none)\n", problem.label()));
        } else {
            out.push_str(&plot.render(70, 12));
        }
    }
    out
}

pub(crate) fn fig13(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().temperature();
    let mut out = String::from(
        "Fig 13 (left): P(hardware failure within window after fan/chiller failure)\n",
    );
    let mut left = Table::new(&[
        "trigger",
        "window",
        "P(cond)",
        "P(random)",
        "factor",
        "signif",
    ]);
    for (trigger, window, e) in analysis.figure13_left() {
        left.row(&[
            trigger.label().to_owned(),
            window.to_string(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
            stars(e.test().p_value).to_owned(),
        ]);
    }
    out.push_str(&left.render());
    out.push_str("\nFig 13 (right): per-component probability within a month\n");
    let mut right = Table::new(&["component", "trigger", "P(cond)", "P(random)", "factor"]);
    for (trigger, component, e) in analysis.figure13_right() {
        right.row(&[
            component.label().to_owned(),
            trigger.label().to_owned(),
            pct(e.conditional.estimate()),
            pct(e.baseline.estimate()),
            factor(e.factor()),
        ]);
    }
    out.push_str(&right.render());
    out
}

pub(crate) fn sec8a(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().temperature();
    let system = SystemId::new(TEMP_SYSTEM);
    let targets = [
        ("hardware", FailureClass::Root(RootCause::Hardware)),
        ("CPU", FailureClass::Hw(HardwareComponent::Cpu)),
        ("DRAM", FailureClass::Hw(HardwareComponent::MemoryDimm)),
    ];
    let mut out = format!(
        "VIII-A: regressions of per-node outage counts on temperature (system {TEMP_SYSTEM})\n         Both families, as in the paper; per-node frailty overdisperses the counts, so the\n         Poisson fit understates errors and the negative-binomial column is the one to read.\n"
    );
    let families = [
        ("Poisson", hpcfail_stats::glm::Family::Poisson),
        (
            "NegBin",
            hpcfail_stats::glm::Family::NegativeBinomial { theta: 1.0 },
        ),
    ];
    let mut t = Table::new(&[
        "target",
        "predictor",
        "family",
        "estimate",
        "p-value",
        "significant?",
    ]);
    for (name, target) in targets {
        for predictor in TempPredictor::ALL {
            for (family_name, family) in families {
                match analysis.regression(system, predictor, target, family) {
                    Ok(fit) => {
                        if let Some(c) = fit.coefficient(predictor.label()) {
                            t.row(&[
                                name.to_owned(),
                                predictor.label().to_owned(),
                                family_name.to_owned(),
                                format!("{:.5}", c.estimate),
                                p_value(c.p_value),
                                if c.significant_at(0.05) {
                                    "yes".into()
                                } else {
                                    "no".into()
                                },
                            ]);
                        }
                    }
                    Err(e) => {
                        t.row(&[
                            name.to_owned(),
                            predictor.label().to_owned(),
                            family_name.to_owned(),
                            "-".to_owned(),
                            "-".to_owned(),
                            format!("unfit: {e}"),
                        ]);
                    }
                }
            }
        }
    }
    out.push_str(&t.render());
    out.push_str("(paper: temperature aggregates are NOT significant predictors of outages)\n");
    out
}

pub(crate) fn fig14(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().cosmic();
    let mut out = String::from("Fig 14: monthly failure probability vs monthly neutron counts\n");
    let targets = [
        ("DRAM", FailureClass::Hw(HardwareComponent::MemoryDimm)),
        ("CPU", FailureClass::Hw(HardwareComponent::Cpu)),
    ];
    for (name, class) in targets {
        out.push_str(&format!("{name} failures:\n"));
        let mut t = Table::new(&[
            "system",
            "Pearson r",
            "Spearman rho",
            "bins (flux -> probability)",
        ]);
        for id in COSMIC_SYSTEMS {
            let system = SystemId::new(id);
            if ctx.trace().system(system).is_none() {
                continue;
            }
            let r = analysis.flux_correlation(system, class);
            let rho = analysis.flux_rank_correlation(system, class);
            let bins = analysis.binned_series(system, class, 4);
            let bins_text: Vec<String> = bins
                .iter()
                .map(|(f, p)| format!("{f:.0}->{}", pct(*p)))
                .collect();
            t.row(&[
                format!("system {id}"),
                r.map_or("NA".into(), |v| format!("{v:.3}")),
                rho.map_or("NA".into(), |v| format!("{v:.3}")),
                bins_text.join(", "),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("(paper: DRAM flat with flux; CPU slightly positive in 3 of 4 systems)\n");
    out
}

pub(crate) fn tab1(ctx: &ReproContext) -> String {
    let study = ctx.engine().regression();
    let rows = study.features(SystemId::new(TEMP_SYSTEM));
    let mut out = format!(
        "Table I: regression variables (system {TEMP_SYSTEM}; {} node rows)\n",
        rows.len()
    );
    if rows.is_empty() {
        return out;
    }
    let summarize = |name: &str, values: Vec<f64>| {
        let s = hpcfail_stats::summary::Summary::of(&values);
        format!(
            "{name:<14} mean {:>10.3}  min {:>10.3}  max {:>10.3}\n",
            s.mean, s.min, s.max
        )
    };
    out.push_str(&summarize(
        "fails_count",
        rows.iter().map(|r| r.fails_count as f64).collect(),
    ));
    out.push_str(&summarize(
        "avg_temp",
        rows.iter().map(|r| r.avg_temp).collect(),
    ));
    out.push_str(&summarize(
        "max_temp",
        rows.iter().map(|r| r.max_temp).collect(),
    ));
    out.push_str(&summarize(
        "temp_var",
        rows.iter().map(|r| r.temp_var).collect(),
    ));
    out.push_str(&summarize(
        "num_hightemp",
        rows.iter().map(|r| r.num_hightemp).collect(),
    ));
    out.push_str(&summarize(
        "num_jobs",
        rows.iter().map(|r| r.num_jobs).collect(),
    ));
    out.push_str(&summarize("util", rows.iter().map(|r| r.util).collect()));
    out.push_str(&summarize("PIR", rows.iter().map(|r| r.pir).collect()));
    out
}

fn regression_table(ctx: &ReproContext, family: StudyFamily, title: &str) -> String {
    let study = ctx.engine().regression();
    let system = SystemId::new(TEMP_SYSTEM);
    match study.fit(system, family, false) {
        Ok(fit) => {
            let mut out = render_glm_table(title, &fit);
            let sig = RegressionStudy::significant_predictors(&fit, 0.01);
            out.push_str(&format!("significant at 99%: {sig:?}\n"));
            // The paper's robustness check: refit without node 0.
            if let Ok(refit) = study.fit(system, family, true) {
                let sig0 = RegressionStudy::significant_predictors(&refit, 0.01);
                out.push_str(&format!("without node 0, significant at 99%: {sig0:?}\n"));
            }
            // ... and the rerun with only the significant predictors.
            if let Ok(refit) = study.refit_significant_only(system, family, &fit, 0.01) {
                let sig2 = RegressionStudy::significant_predictors(&refit, 0.01);
                out.push_str(&format!(
                    "refit with only the significant predictors, still at 99%: {sig2:?}\n"
                ));
            }
            out
        }
        Err(e) => format!("{title}\nfit failed: {e}\n"),
    }
}

pub(crate) fn tab2(ctx: &ReproContext) -> String {
    regression_table(
        ctx,
        StudyFamily::Poisson,
        "Table II: Poisson regression of node outages (system 20)",
    )
}

pub(crate) fn tab3(ctx: &ReproContext) -> String {
    regression_table(
        ctx,
        StudyFamily::NegativeBinomial,
        "Table III: negative-binomial regression of node outages (system 20)",
    )
}

pub(crate) fn predict(ctx: &ReproContext) -> String {
    let mut out = String::from(
        "Extension: alarm rule 'after a type-X failure, flag the node for one window'\n",
    );
    let triggers = [
        FailureClass::Any,
        FailureClass::Root(RootCause::Environment),
        FailureClass::Root(RootCause::Network),
        FailureClass::Root(RootCause::Hardware),
    ];
    let mut t = Table::new(&[
        "trigger",
        "window",
        "precision",
        "recall",
        "flagged time",
        "alarms",
    ]);
    for trigger in triggers {
        for window in [Window::Day, Window::Week] {
            let rule = AlarmRule { trigger, window };
            let eval = rule.evaluate_group(ctx.trace(), SystemGroup::Group1);
            t.row(&[
                trigger.label().to_owned(),
                window.to_string(),
                pct(eval.precision()),
                pct(eval.recall()),
                pct(eval.flagged_fraction()),
                eval.alarms.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "(flagging a node for the week after any failure catches a large share of\n\
         failures while flagging a small fraction of node-time)\n",
    );
    out
}

pub(crate) fn ablation(ctx: &ReproContext) -> String {
    use hpcfail_synth::excitation::ExcitationMatrix;
    use hpcfail_synth::sim::SimOptions;
    use hpcfail_synth::spec::FleetSpec;

    // Ablations re-generate small fleets, so they use their own spec;
    // only the seed comes from the context.
    let spec = FleetSpec::lanl_scaled(0.12);
    let seed = ctx.seed();

    struct Case {
        name: &'static str,
        options: SimOptions,
    }
    let cases = vec![
        Case {
            name: "full model",
            options: SimOptions::default(),
        },
        Case {
            name: "no excitation",
            options: SimOptions {
                excitation: ExcitationMatrix::disabled(),
                ..SimOptions::default()
            },
        },
        Case {
            name: "no frailty",
            options: SimOptions {
                frailty: false,
                ..SimOptions::default()
            },
        },
        Case {
            name: "no node-0 role",
            options: SimOptions {
                node0_role: false,
                ..SimOptions::default()
            },
        },
        Case {
            name: "no cluster events",
            options: SimOptions {
                cluster_events: false,
                ..SimOptions::default()
            },
        },
        Case {
            name: "no usage effect",
            options: SimOptions {
                usage_effect: false,
                ..SimOptions::default()
            },
        },
    ];

    let mut t = Table::new(&[
        "mechanism set",
        "post-failure week factor",
        "rack week factor",
        "node0 / avg",
        "env share",
        "r(jobs, failures)",
    ]);
    for case in cases {
        let engine = Engine::new(spec.generate_with(seed, &case.options).into_store());
        let correlation = engine.correlation();
        let week = correlation.group_conditional(
            SystemGroup::Group1,
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        let rack = correlation.group_conditional(
            SystemGroup::Group1,
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameRack,
        );
        let nodes = engine.nodes();
        let counts = nodes.failure_counts(SystemId::new(18));
        let avg = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
        let node0_ratio = counts.first().map_or(0.0, |&c| c as f64 / avg.max(1e-9));
        let env_share = {
            let mut env = 0u64;
            let mut total = 0u64;
            for s in engine.trace().systems() {
                for f in s.failures() {
                    total += 1;
                    if f.root_cause == RootCause::Environment {
                        env += 1;
                    }
                }
            }
            env as f64 / total.max(1) as f64
        };
        let r = engine
            .usage()
            .jobs_failures_pearson(SystemId::new(20))
            .all_nodes;
        t.row(&[
            case.name.to_owned(),
            factor(week.factor()),
            factor(rack.factor()),
            format!("{node0_ratio:.1}x"),
            pct(env_share),
            r.map_or("NA".into(), |v| format!("{v:.2}")),
        ]);
    }
    format!(
        "Ablation study: which generator mechanism produces which observed statistic\n\
         (each row regenerates the fleet with one mechanism removed)\n{}\n\
         Reading guide: removing excitation flattens the post-failure factor;\n\
         removing the node-0 role flattens the node0/avg ratio; removing cluster\n\
         events empties the environment share and rack coupling; removing the\n\
         usage effect weakens the jobs-failures correlation.\n",
        t.render()
    )
}

pub(crate) fn interarrival(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().arrivals();
    let mut out = String::from(
        "Extension: the statistical-model view — inter-arrival fits and autocorrelation\n\
         (the literature the paper positions itself against; Weibull/gamma shape < 1 and\n\
         significant Ljung-Box autocorrelation are the model-world face of Section III)\n",
    );
    let mut t = Table::new(&[
        "system",
        "gaps",
        "MTBF (h)",
        "best fit (AIC)",
        "KS D",
        "acf lag-1",
        "Ljung-Box p",
        "clustering?",
    ]);
    for system in ctx.trace().systems() {
        match analysis.profile(system.id(), FailureClass::Any) {
            Ok(p) => {
                let best = p.best_fit();
                t.row(&[
                    system.config().name.clone(),
                    p.gaps.to_string(),
                    format!("{:.1}", p.mtbf_hours),
                    best.dist.to_string(),
                    format!("{:.3}", best.ks_statistic),
                    format!("{:.2}", p.daily_acf.first().copied().unwrap_or(0.0)),
                    p_value(p.ljung_box.p_value),
                    if p.clustering_detected() {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]);
            }
            Err(e) => {
                t.row(&[
                    system.config().name.clone(),
                    "-".into(),
                    "-".into(),
                    e.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}

pub(crate) fn availability(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().availability();
    let mut out =
        String::from("Extension: availability report (MTBF / MTTR / downtime by root cause)\n");
    let mut t = Table::new(&[
        "system",
        "failures",
        "node MTBF (h)",
        "MTTR (h)",
        "availability",
        "nines",
        "costliest cause",
    ]);
    for r in analysis.all_reports() {
        t.row(&[
            format!("system {}", r.system.raw()),
            r.failures.to_string(),
            format!("{:.0}", r.node_mtbf_hours),
            format!("{:.1}", r.mttr_hours),
            format!("{:.4}%", r.availability * 100.0),
            format!("{:.1}", r.nines()),
            r.costliest_root_cause()
                .map_or("-".into(), |c| c.label().to_owned()),
        ]);
    }
    out.push_str(&t.render());
    out
}

pub(crate) fn checkpoint(ctx: &ReproContext) -> String {
    use hpcfail_core::checkpoint::{CheckpointPolicy, CheckpointSimulator};

    let sim = CheckpointSimulator::typical();
    // Tune the uniform baseline with the Young/Daly interval from the
    // measured group-1 node MTBF.
    let availability = ctx.engine().availability();
    let mtbfs: Vec<f64> = ctx
        .trace()
        .group_systems(SystemGroup::Group1)
        .filter_map(|s| availability.report(s.id()))
        .map(|r| r.node_mtbf_hours)
        .filter(|m| m.is_finite())
        .collect();
    if mtbfs.is_empty() {
        return "checkpoint: no group-1 systems with failures".into();
    }
    let mtbf = mtbfs.iter().sum::<f64>() / mtbfs.len() as f64;
    let daly = sim.daly_interval(mtbf);

    let policies: Vec<(String, CheckpointPolicy)> = vec![
        (
            format!("uniform Daly ({daly:.0}h)"),
            CheckpointPolicy::Uniform {
                interval_hours: daly,
            },
        ),
        (
            "uniform 24h".into(),
            CheckpointPolicy::Uniform {
                interval_hours: 24.0,
            },
        ),
        (
            "adaptive: Daly + 2h while flagged (day after any failure)".to_string(),
            CheckpointPolicy::Adaptive {
                base_hours: daly,
                flagged_hours: 2.0,
                rule: AlarmRule {
                    trigger: FailureClass::Any,
                    window: Window::Day,
                },
            },
        ),
        (
            "adaptive: Daly + 4h while flagged (week after any failure)".to_string(),
            CheckpointPolicy::Adaptive {
                base_hours: daly,
                flagged_hours: 4.0,
                rule: AlarmRule {
                    trigger: FailureClass::Any,
                    window: Window::Week,
                },
            },
        ),
    ];

    let mut t = Table::new(&[
        "policy",
        "goodput",
        "lost work (node-h)",
        "checkpoint cost (node-h)",
        "restarts (node-h)",
    ]);
    for (name, policy) in policies {
        let o = sim.replay_group(ctx.trace(), SystemGroup::Group1, policy);
        t.row(&[
            name,
            format!("{:.4}%", o.goodput() * 100.0),
            format!("{:.0}", o.lost_hours),
            format!("{:.0}", o.checkpoint_hours),
            format!("{:.0}", o.restart_hours),
        ]);
    }
    format!(
        "Extension: checkpoint-policy replay over the group-1 failure timeline\n\
         (group-1 node MTBF {mtbf:.0}h; 0.1h checkpoints, 0.5h restarts)\n{}\n\
         The adaptive policies act on the paper's Section III finding: a node that\n\
         just failed is ~20x more likely to fail again, so cheap checkpoints right\n\
         after a failure buy back lost work at minimal steady-state cost.\n",
        t.render()
    )
}

pub(crate) fn sec4c(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().nodes();
    let mut out = String::from(
        "IV-C: does physical location predict failure rates? (chi-square, node 0 excluded)\n",
    );
    let mut t = Table::new(&["system", "grouping", "chi2", "p-value", "pattern?"]);
    for id in BIG_SYSTEMS {
        let system = SystemId::new(id);
        for (name, test) in [
            ("position in rack", analysis.position_in_rack_effect(system)),
            ("machine-room row", analysis.room_row_effect(system)),
        ] {
            match test {
                Some(result) => t.row(&[
                    format!("system {id}"),
                    name.to_owned(),
                    format!("{:.1}", result.statistic),
                    p_value(result.p_value),
                    if result.significant_at(0.01) {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]),
                None => t.row(&[
                    format!("system {id}"),
                    name.to_owned(),
                    "-".into(),
                    "-".into(),
                    "no layout".into(),
                ]),
            };
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper: no clear location patterns once node 0 is set aside. Our generator's\n\
         sticky power-event zones concentrate environment failures in fixed racks, so\n\
         with enough records the chi-square registers that concentration; see the\n\
         known-deviations list in EXPERIMENTS.md.)\n",
    );
    out
}

pub(crate) fn sweep(ctx: &ReproContext) -> String {
    let analysis = ctx.engine().correlation();
    let mut out = String::from(
        "Window x scope sweep: P(any follow-up | any failure), factor over random window\n",
    );
    for group in SystemGroup::ALL {
        let mut t = Table::new(&["scope", "day", "week", "month"]);
        for scope in Scope::ALL {
            let mut cells = vec![scope.label().to_owned()];
            for window in Window::ALL {
                let e = analysis.group_conditional(
                    group,
                    FailureClass::Any,
                    FailureClass::Any,
                    window,
                    scope,
                );
                cells.push(if e.is_empty() {
                    "-".into()
                } else {
                    format!("{} ({})", pct(e.conditional.estimate()), factor(e.factor()))
                });
            }
            t.row(&cells);
        }
        out.push_str(&format!("{}\n{}\n", group.label(), t.render()));
    }
    out
}

pub(crate) fn validate(ctx: &ReproContext) -> String {
    // Executable calibration targets: each band is the acceptable range
    // for a headline statistic at full scale (generous at smaller
    // scales, where event counts stay fixed while node counts shrink).
    let analysis = ctx.engine().correlation();
    let loose = if ctx.scale() < 0.9 { 3.0 } else { 1.0 };

    struct Check {
        name: &'static str,
        value: f64,
        lo: f64,
        hi: f64,
    }
    let mut checks: Vec<Check> = Vec::new();

    let g1_day = analysis.group_conditional(
        SystemGroup::Group1,
        FailureClass::Any,
        FailureClass::Any,
        Window::Day,
        Scope::SameNode,
    );
    checks.push(Check {
        name: "group-1 daily baseline (paper 0.31%)",
        value: g1_day.baseline.estimate(),
        lo: 0.0015 / loose,
        hi: 0.006 * loose,
    });
    checks.push(Check {
        name: "group-1 post-failure day factor (paper ~20x)",
        value: g1_day.factor().unwrap_or(0.0),
        lo: 8.0 / loose,
        hi: 40.0 * loose,
    });
    let g2_day = analysis.group_conditional(
        SystemGroup::Group2,
        FailureClass::Any,
        FailureClass::Any,
        Window::Day,
        Scope::SameNode,
    );
    checks.push(Check {
        name: "group-2 daily baseline (paper 4.6%)",
        value: g2_day.baseline.estimate(),
        lo: 0.02 / loose,
        hi: 0.10 * loose,
    });

    // Hardware share ~60%, CPU 40% / memory 20% of hardware.
    let mut total = 0f64;
    let mut hw = 0f64;
    let mut cpu = 0f64;
    let mut mem = 0f64;
    for s in ctx.trace().systems() {
        for f in s.failures() {
            total += 1.0;
            if f.root_cause == RootCause::Hardware {
                hw += 1.0;
                match f.sub_cause {
                    SubCause::Hardware(HardwareComponent::Cpu) => cpu += 1.0,
                    SubCause::Hardware(HardwareComponent::MemoryDimm) => mem += 1.0,
                    _ => {}
                }
            }
        }
    }
    checks.push(Check {
        name: "hardware share of failures (paper 60%)",
        value: hw / total.max(1.0),
        lo: 0.40,
        hi: 0.75,
    });
    checks.push(Check {
        name: "CPU share of hardware (paper 40%)",
        value: cpu / hw.max(1.0),
        lo: 0.25,
        hi: 0.55,
    });
    checks.push(Check {
        name: "memory share of hardware (paper 20%)",
        value: mem / hw.max(1.0),
        lo: 0.12,
        hi: 0.32,
    });

    let mut out = String::from("Calibration self-check (generator vs paper headline numbers)\n");
    let mut t = Table::new(&["check", "value", "band", "status"]);
    let mut failures = 0;
    for c in &checks {
        let ok = c.value >= c.lo && c.value <= c.hi;
        if !ok {
            failures += 1;
        }
        t.row(&[
            c.name.to_owned(),
            format!("{:.4}", c.value),
            format!("[{:.4}, {:.4}]", c.lo, c.hi),
            if ok { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "{} of {} checks passed\n",
        checks.len() - failures,
        checks.len()
    ));
    out
}
