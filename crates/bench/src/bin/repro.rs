//! Command-line reproduction harness.
//!
//! ```text
//! repro [--scale S] [--seed N] [--list] <experiment>... | all
//! ```

use hpcfail_bench::{experiment, ReproContext, EXPERIMENTS};
use std::process::ExitCode;

fn usage() -> String {
    let mut out = String::from(
        "usage: repro [--scale S] [--seed N] [--list] <experiment>... | all\n\n\
         Regenerates the tables and figures of El-Sayed & Schroeder (DSN 2013)\n\
         against a synthetic LANL-like fleet.\n\n\
         options:\n\
           --scale S   fleet scale in (0, 1], default 1.0 (full LANL size)\n\
           --seed N    generation seed, default 42\n\
           --out DIR   also write each report to DIR/<id>.txt\n\
           --list      list experiments and exit\n\n\
         experiments:\n",
    );
    for e in EXPERIMENTS {
        out.push_str(&format!("  {:<8} {}\n", e.id, e.title));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--scale" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a value in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|e| e.id.to_owned()).collect();
    }
    // Validate ids before paying for generation.
    for id in &ids {
        if experiment(id).is_none() {
            eprintln!("unknown experiment {id:?}; try --list");
            return ExitCode::FAILURE;
        }
    }

    eprintln!("generating fleet (scale {scale}, seed {seed})...");
    let start = std::time::Instant::now();
    let ctx = ReproContext::generate(scale, seed);
    eprintln!(
        "generated {} failures across {} systems in {:.1?}\n",
        ctx.trace().total_failures(),
        ctx.trace().len(),
        start.elapsed()
    );

    if let Some(dir) = &out_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for id in &ids {
        let e = experiment(id).expect("validated above");
        let start = std::time::Instant::now();
        let report = (e.run)(&ctx);
        println!("==== {} ({}) ====", e.id, e.title);
        println!("{report}");
        eprintln!("[{} took {:.1?}]\n", e.id, start.elapsed());
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id));
            if let Err(err) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
