//! Command-line reproduction harness.
//!
//! ```text
//! repro [--scale S] [--seed N] [--quiet] [--manifest PATH] [--list] <experiment>... | all
//! ```
//!
//! Timing is collected by the `hpcfail-obs` layer: fleet generation and
//! every experiment run inside spans, and the run ends with a summary
//! table on stderr (suppressed by `--quiet`) and, under `--manifest`, a
//! machine-readable JSON run manifest.

use hpcfail_bench::{experiment, ReproContext, EXPERIMENTS};
use hpcfail_obs::manifest::{git_describe, ManifestSink};
use hpcfail_obs::sink::Sink;
use hpcfail_report::obs_sink::TableSink;
use std::process::ExitCode;

fn usage() -> String {
    let mut out = String::from(
        "usage: repro [options] <experiment>... | all\n\n\
         Regenerates the tables and figures of El-Sayed & Schroeder (DSN 2013)\n\
         against a synthetic LANL-like fleet.\n\n\
         options:\n\
           --scale S        fleet scale in (0, 1], default 1.0 (full LANL size)\n\
           --seed N         generation seed, default 42\n\
           --out DIR        also write each report to DIR/<id>.txt\n\
           --manifest PATH  write a JSON run manifest (seed, scale, build,\n\
                            per-span timings, counters) to PATH\n\
           --quiet          suppress progress and the metrics summary on stderr\n\
           --list           list experiments and exit\n\n\
         experiments:\n",
    );
    for e in EXPERIMENTS {
        out.push_str(&format!("  {:<8} {}\n", e.id, e.title));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut manifest_path: Option<std::path::PathBuf> = None;
    let mut quiet = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--manifest" => match iter.next() {
                Some(path) => manifest_path = Some(path.into()),
                None => {
                    eprintln!("--manifest needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--quiet" => quiet = true,
            "--scale" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a value in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|e| e.id.to_owned()).collect();
    }
    // Validate ids before paying for generation.
    for id in &ids {
        if experiment(id).is_none() {
            eprintln!("unknown experiment {id:?}; try --list");
            return ExitCode::FAILURE;
        }
    }

    if !quiet {
        eprintln!("generating fleet (scale {scale}, seed {seed})...");
    }
    let ctx = {
        let _span = hpcfail_obs::span("repro.generate");
        ReproContext::generate(scale, seed)
    };
    if !quiet {
        eprintln!(
            "generated {} failures across {} systems\n",
            ctx.trace().total_failures(),
            ctx.trace().len(),
        );
    }

    if let Some(dir) = &out_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    // Experiments are pure functions of the read-only context, so they
    // run concurrently; parallel_map returns results in input order and
    // printing happens afterwards on this thread, keeping stdout
    // byte-identical to the sequential loop.
    let threads = hpcfail_core::parallel::default_threads();
    let reports = hpcfail_core::parallel::parallel_map(&ids, threads, |id| {
        let e = experiment(id).expect("validated above");
        (e, e.execute(&ctx))
    });
    for (e, report) in &reports {
        println!("==== {} ({}) ====", e.id, e.title);
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id));
            if let Err(err) = std::fs::write(&path, report) {
                eprintln!("cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let snapshot = hpcfail_obs::snapshot();
    if !quiet {
        if let Err(err) = TableSink::new(std::io::stderr().lock()).export(&snapshot) {
            eprintln!("cannot render metrics summary: {err}");
        }
    }
    if let Some(path) = &manifest_path {
        let mut sink = ManifestSink::new(path, seed, scale, git_describe());
        if let Err(err) = sink.export(&snapshot) {
            eprintln!("cannot write manifest {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote run manifest to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
