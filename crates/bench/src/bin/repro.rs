//! Command-line reproduction harness.
//!
//! ```text
//! repro [--scale S] [--seed N] [--quiet] [--manifest PATH] [--list] <experiment>... | all
//! ```
//!
//! Timing is collected by the `hpcfail-obs` layer: fleet generation and
//! every experiment run inside spans, and the run ends with a summary
//! table on stderr (suppressed by `--quiet`) and, under `--manifest`, a
//! machine-readable JSON run manifest.
//!
//! The harness degrades gracefully: experiments whose required data
//! channels are missing are skipped, a panicking experiment is caught
//! and reported (counter `repro.failed.<id>`) while the rest keep
//! running, and `--trace DIR --policy lenient` loads dirty CSV input
//! with per-line quarantine instead of aborting.
//!
//! Exit codes: `0` clean, `1` fatal (bad arguments, unreadable trace,
//! write failure), `2` degraded (at least one failed experiment or
//! quarantined input line — results were produced but are incomplete).

use hpcfail_bench::{experiment, Experiment, ExperimentOutcome, ReproContext, EXPERIMENTS};
use hpcfail_obs::manifest::{git_describe, ManifestSink};
use hpcfail_obs::sink::Sink;
use hpcfail_report::obs_sink::TableSink;
use hpcfail_store::ingest::{load_trace_with, IngestPolicy, IngestReport};
use hpcfail_store::snapshot::{read_snapshot, write_snapshot};
use std::process::ExitCode;

fn usage() -> String {
    let mut out = String::from(
        "usage: repro [options] <experiment>... | all\n\n\
         Regenerates the tables and figures of El-Sayed & Schroeder (DSN 2013)\n\
         against a synthetic LANL-like fleet, or against a trace directory.\n\n\
         options:\n\
           --scale S        fleet scale in (0, 1], default 1.0 (full LANL size)\n\
           --seed N         generation seed, default 42\n\
           --trace DIR      load the trace from DIR (CSV layout written by\n\
                            save_trace) instead of generating a fleet\n\
           --policy P       ingestion policy for --trace: strict (default),\n\
                            lenient, or best-effort\n\
           --snapshot PATH  load the trace from a binary .hpcsnap snapshot\n\
                            (one bulk read, no CSV parse) instead of\n\
                            generating a fleet or reading --trace\n\
           --scenario NAME  generate a scenario pack (builtin name or path\n\
                            to a scenario JSON file) instead of the\n\
                            LANL-shaped fleet; the pack's own seed is used\n\
           --write-snapshot PATH  after loading, write the trace to PATH as\n\
                            a .hpcsnap snapshot; with no experiments given\n\
                            the run writes the snapshot and exits\n\
           --inject-failure ID  make experiment ID fail (degradation testing)\n\
           --out DIR        also write each report to DIR/<id>.txt\n\
           --manifest PATH  write a JSON run manifest (seed, scale, build,\n\
                            per-span timings, counters) to PATH\n\
           --quiet          suppress progress and the metrics summary on stderr\n\
           --list           list experiments and exit\n\n\
         exit codes:\n\
           0  clean run\n\
           1  fatal error (bad arguments, unreadable trace, write failure)\n\
           2  degraded run (failed experiments and/or quarantined input lines;\n\
              a summary is printed to stderr)\n\n\
         experiments:\n",
    );
    for e in EXPERIMENTS {
        out.push_str(&format!("  {:<8} {}\n", e.id, e.title));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut manifest_path: Option<std::path::PathBuf> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut snapshot_path: Option<std::path::PathBuf> = None;
    let mut scenario_name: Option<String> = None;
    let mut write_snapshot_path: Option<std::path::PathBuf> = None;
    let mut policy = IngestPolicy::Strict;
    let mut inject_failure: Option<String> = None;
    let mut quiet = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--manifest" => match iter.next() {
                Some(path) => manifest_path = Some(path.into()),
                None => {
                    eprintln!("--manifest needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(dir) => trace_dir = Some(dir.into()),
                None => {
                    eprintln!("--trace needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--snapshot" => match iter.next() {
                Some(path) => snapshot_path = Some(path.into()),
                None => {
                    eprintln!("--snapshot needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario" => match iter.next() {
                Some(name) => scenario_name = Some(name.clone()),
                None => {
                    eprintln!("--scenario needs a pack name or file path");
                    return ExitCode::FAILURE;
                }
            },
            "--write-snapshot" => match iter.next() {
                Some(path) => write_snapshot_path = Some(path.into()),
                None => {
                    eprintln!("--write-snapshot needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match iter.next().map(|v| v.parse()) {
                Some(Ok(p)) => policy = p,
                Some(Err(err)) => {
                    eprintln!("{err}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--policy needs a value (strict, lenient, best-effort)");
                    return ExitCode::FAILURE;
                }
            },
            "--inject-failure" => match iter.next() {
                Some(id) => inject_failure = Some(id.clone()),
                None => {
                    eprintln!("--inject-failure needs an experiment id");
                    return ExitCode::FAILURE;
                }
            },
            "--quiet" => quiet = true,
            "--scale" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a value in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if snapshot_path.is_some() && trace_dir.is_some() {
        eprintln!("--snapshot and --trace are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if scenario_name.is_some() && (snapshot_path.is_some() || trace_dir.is_some()) {
        eprintln!("--scenario is mutually exclusive with --trace and --snapshot");
        return ExitCode::FAILURE;
    }
    // A bare snapshot-writing run is legal: load (or generate), write
    // the snapshot, exit without running any experiment.
    if ids.is_empty() && write_snapshot_path.is_none() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|e| e.id.to_owned()).collect();
    }
    // Resolve ids before paying for generation; keeps the run loop
    // free of "already validated" lookups.
    let mut selected: Vec<&'static Experiment> = Vec::with_capacity(ids.len());
    for id in &ids {
        match experiment(id) {
            Some(e) => selected.push(e),
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(id) = &inject_failure {
        if experiment(id).is_none() {
            eprintln!("--inject-failure: unknown experiment {id:?}; try --list");
            return ExitCode::FAILURE;
        }
    }

    let mut ingest_report: Option<IngestReport> = None;
    let ctx = if let Some(dir) = &trace_dir {
        if !quiet {
            eprintln!("loading trace from {} ({policy} policy)...", dir.display());
        }
        let loaded = {
            let _span = hpcfail_obs::span("repro.load");
            load_trace_with(dir, policy)
        };
        match loaded {
            Ok((trace, report)) => {
                ingest_report = Some(report);
                ReproContext::from_trace(trace, seed, scale)
            }
            Err(err) => {
                eprintln!("cannot load trace from {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(path) = &snapshot_path {
        if !quiet {
            eprintln!("loading snapshot {}...", path.display());
        }
        let loaded = {
            let _span = hpcfail_obs::span("repro.load");
            read_snapshot(path)
        };
        match loaded {
            Ok(trace) => ReproContext::from_trace(trace, seed, scale),
            Err(err) => {
                eprintln!("cannot load snapshot {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(name) = &scenario_name {
        let scenario = match hpcfail_synth::scenario::load(name) {
            Ok(scenario) => scenario,
            Err(err) => {
                eprintln!("cannot load scenario {name:?}: {err}");
                return ExitCode::FAILURE;
            }
        };
        if !quiet {
            eprintln!(
                "generating scenario {} (seed {})...",
                scenario.name, scenario.seed
            );
        }
        let pack_seed = scenario.seed;
        let trace = {
            let _span = hpcfail_obs::span("repro.generate");
            scenario.generate().into_store()
        };
        ReproContext::from_trace(trace, pack_seed, scale)
    } else {
        if !quiet {
            eprintln!("generating fleet (scale {scale}, seed {seed})...");
        }
        let _span = hpcfail_obs::span("repro.generate");
        ReproContext::generate(scale, seed)
    };
    if !quiet {
        eprintln!(
            "loaded {} failures across {} systems\n",
            ctx.trace().total_failures(),
            ctx.trace().len(),
        );
        if let Some(report) = &ingest_report {
            eprintln!("{}", hpcfail_report::quality::render_ingest_report(report));
        }
    }

    if let Some(path) = &write_snapshot_path {
        if let Err(err) = write_snapshot(path, ctx.trace()) {
            eprintln!("cannot write snapshot {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote snapshot to {}", path.display());
        }
    }

    if let Some(dir) = &out_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    // Experiments are pure functions of the read-only context, so they
    // run concurrently; parallel_map returns results in input order and
    // printing happens afterwards on this thread, keeping stdout
    // byte-identical to the sequential loop.
    let threads = hpcfail_core::parallel::default_threads();
    let inject = inject_failure.as_deref();
    // A panicking experiment is caught and rendered as FAILED; silence
    // the default hook so the raw panic message and backtrace don't
    // interleave with other experiments' progress on stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let reports = hpcfail_core::parallel::parallel_map(&selected, threads, |&e| {
        (e, e.execute_opts(&ctx, inject == Some(e.id)))
    });
    let _ = std::panic::take_hook();
    let mut failed: Vec<&str> = Vec::new();
    let mut skipped = 0usize;
    for (e, outcome) in &reports {
        let body = match outcome {
            ExperimentOutcome::Report(text) => text.clone(),
            ExperimentOutcome::Skipped { missing } => {
                skipped += 1;
                format!(
                    "SKIPPED: trace lacks required channels: {}",
                    missing.join(", ")
                )
            }
            ExperimentOutcome::Failed { message } => {
                failed.push(e.id);
                format!("FAILED: {message}")
            }
        };
        println!("==== {} ({}) ====", e.id, e.title);
        println!("{body}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id));
            if let Err(err) = std::fs::write(&path, &body) {
                eprintln!("cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let snapshot = hpcfail_obs::snapshot();
    if !quiet {
        if let Err(err) = TableSink::new(std::io::stderr().lock()).export(&snapshot) {
            eprintln!("cannot render metrics summary: {err}");
        }
    }
    if let Some(path) = &manifest_path {
        let mut sink = ManifestSink::new(path, seed, scale, git_describe());
        if let Err(err) = sink.export(&snapshot) {
            eprintln!("cannot write manifest {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote run manifest to {}", path.display());
        }
    }

    let quarantined = ingest_report.as_ref().map_or(0, |r| r.quarantined.len());
    if !failed.is_empty() || quarantined > 0 {
        eprintln!(
            "degraded run: {} failed experiment(s){}{}, {} skipped, {} quarantined input line(s)",
            failed.len(),
            if failed.is_empty() { "" } else { " " },
            if failed.is_empty() {
                String::new()
            } else {
                format!("[{}]", failed.join(", "))
            },
            skipped,
            quarantined,
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
