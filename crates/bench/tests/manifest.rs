//! End-to-end check of the `repro --manifest` flow: run the real
//! binary, parse the manifest it writes, and check it describes the
//! run.

use hpcfail_obs::manifest::RunManifest;
use std::process::Command;

fn manifest_from_run(args: &[&str], path: &std::path::Path) -> RunManifest {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .arg("--manifest")
        .arg(path)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(path).expect("manifest written");
    RunManifest::from_json_str(&text).expect("manifest parses")
}

#[test]
fn manifest_describes_the_run() {
    let path = std::env::temp_dir().join(format!("hpcfail-manifest-{}.json", std::process::id()));
    let manifest = manifest_from_run(
        &[
            "--scale", "0.05", "--seed", "7", "--quiet", "sec3a", "fig9", "fig14",
        ],
        &path,
    );
    std::fs::remove_file(&path).ok();

    // Run parameters round-trip.
    assert_eq!(manifest.seed, 7);
    assert!((manifest.scale - 0.05).abs() < 1e-12);

    if !hpcfail_obs::ENABLED {
        return; // under no-obs the manifest legitimately observes nothing
    }

    // One span per executed experiment, each entered exactly once.
    for id in ["sec3a", "fig9", "fig14"] {
        let span = manifest
            .snapshot
            .spans
            .get(&format!("exp.{id}"))
            .unwrap_or_else(|| panic!("missing span exp.{id}"));
        assert_eq!(span.count, 1, "exp.{id} entered once");
        assert!(span.total_ns > 0, "exp.{id} took time");
        assert!(span.self_ns <= span.total_ns);
    }
    let experiment_spans = manifest
        .snapshot
        .spans
        .keys()
        .filter(|k| k.starts_with("exp."))
        .count();
    assert_eq!(experiment_spans, 3, "exactly the executed experiments");
    assert_eq!(manifest.snapshot.counters["bench.experiments_run"], 3);

    // The pipeline stages underneath reported in.
    assert_eq!(manifest.snapshot.counters["synth.fleets_generated"], 1);
    assert!(manifest.snapshot.counters["synth.records.failure"] > 0);
    assert!(manifest.snapshot.counters["store.rows_scanned"] > 0);
    assert!(manifest.snapshot.spans.contains_key("repro.generate"));
}
