//! End-to-end check of the `repro --manifest` flow: run the real
//! binary, parse the manifest it writes, and check it describes the
//! run.

use hpcfail_obs::manifest::RunManifest;
use std::process::Command;

fn manifest_from_run(args: &[&str], path: &std::path::Path) -> RunManifest {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .arg("--manifest")
        .arg(path)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(path).expect("manifest written");
    RunManifest::from_json_str(&text).expect("manifest parses")
}

#[test]
fn manifest_describes_the_run() {
    let path = std::env::temp_dir().join(format!("hpcfail-manifest-{}.json", std::process::id()));
    let manifest = manifest_from_run(
        &[
            "--scale", "0.05", "--seed", "7", "--quiet", "sec3a", "fig9", "fig14",
        ],
        &path,
    );
    std::fs::remove_file(&path).ok();

    // Run parameters round-trip.
    assert_eq!(manifest.seed, 7);
    assert!((manifest.scale - 0.05).abs() < 1e-12);

    if !hpcfail_obs::ENABLED {
        return; // under no-obs the manifest legitimately observes nothing
    }

    // One span per executed experiment, each entered exactly once.
    for id in ["sec3a", "fig9", "fig14"] {
        let span = manifest
            .snapshot
            .spans
            .get(&format!("exp.{id}"))
            .unwrap_or_else(|| panic!("missing span exp.{id}"));
        assert_eq!(span.count, 1, "exp.{id} entered once");
        assert!(span.total_ns > 0, "exp.{id} took time");
        assert!(span.self_ns <= span.total_ns);
    }
    let experiment_spans = manifest
        .snapshot
        .spans
        .keys()
        .filter(|k| k.starts_with("exp."))
        .count();
    assert_eq!(experiment_spans, 3, "exactly the executed experiments");
    assert_eq!(manifest.snapshot.counters["bench.experiments_run"], 3);

    // The pipeline stages underneath reported in.
    assert_eq!(manifest.snapshot.counters["synth.fleets_generated"], 1);
    assert!(manifest.snapshot.counters["synth.records.failure"] > 0);
    assert!(manifest.snapshot.counters["store.rows_scanned"] > 0);
    assert!(manifest.snapshot.spans.contains_key("repro.generate"));
}

#[test]
fn written_manifest_round_trips_byte_identically() {
    let path =
        std::env::temp_dir().join(format!("hpcfail-manifest-rt-{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "0.05", "--seed", "7", "--quiet", "sec3a"])
        .arg("--manifest")
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(output.status.success());
    let written = std::fs::read_to_string(&path).expect("manifest written");
    std::fs::remove_file(&path).ok();

    let parsed = RunManifest::from_json_str(&written).expect("manifest parses");
    assert_eq!(
        parsed.to_json().pretty(),
        written,
        "parse -> re-serialize reproduces the exact bytes on disk"
    );
}

#[test]
fn old_format_manifest_without_p95_still_parses() {
    // A manifest written before histograms carried p95 and before the
    // windows section existed. Tools must keep reading these.
    let old = r#"{
  "schema_version": 1,
  "seed": 7,
  "scale": 0.05,
  "git_describe": null,
  "spans": [
    {"name": "exp.sec3a", "count": 1, "total_ns": 10, "self_ns": 10}
  ],
  "counters": {"bench.experiments_run": 1},
  "gauges": {},
  "histograms": {
    "engine.lat_ns": {"count": 2, "sum": 30, "max": 20, "p50": 10.0, "p90": 20.0, "p99": 20.0}
  }
}"#;
    let manifest = RunManifest::from_json_str(old).expect("pre-p95 manifest parses");
    assert_eq!(manifest.seed, 7);
    let hist = &manifest.snapshot.histograms["engine.lat_ns"];
    assert_eq!(hist.count, 2);
    assert_eq!(hist.p95, 0.0, "absent p95 defaults to zero");
    assert!(
        manifest.snapshot.windows.is_empty(),
        "absent windows section defaults to empty"
    );
}
