//! Text bar charts and scatter grids.

/// A horizontal bar chart with a value and annotation per bar — the
//  text rendering of the paper's bar figures.
///
/// # Examples
///
/// ```
/// use hpcfail_report::chart::BarChart;
///
/// let mut chart = BarChart::new("weekly failure probability");
/// chart.bar("ENV", 0.472, "23.1x");
/// chart.bar("RANDOM", 0.0204, "");
/// let text = chart.render(40);
/// assert!(text.contains("ENV"));
/// assert!(text.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64, String)>,
}

impl BarChart {
    /// Creates a chart with a title line.
    pub fn new(title: &str) -> Self {
        BarChart {
            title: title.to_owned(),
            bars: Vec::new(),
        }
    }

    /// Appends a bar with a label, a non-negative value and an
    /// annotation printed after the value (e.g. a factor).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn bar(&mut self, label: &str, value: f64, annotation: &str) -> &mut Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar value must be non-negative"
        );
        self.bars
            .push((label.to_owned(), value, annotation.to_owned()));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// `true` if no bars were added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Renders with bars scaled so the maximum spans `width` characters.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let max = self.bars.iter().map(|&(_, v, _)| v).fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, value, annotation) in &self.bars {
            let n = if max > 0.0 {
                ((value / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "{label:<label_w$} |{} {value:.4}{}{annotation}\n",
                "#".repeat(n),
                if annotation.is_empty() { "" } else { " " },
            ));
        }
        out
    }
}

/// An ASCII scatter grid — the text rendering of Figures 7, 12 and 14.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    x_label: String,
    y_label: String,
    points: Vec<(f64, f64, char)>,
}

impl ScatterPlot {
    /// Creates a plot with axis labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        ScatterPlot {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            points: Vec::new(),
        }
    }

    /// Adds a point drawn with `glyph` (use different glyphs per
    /// series, e.g. `o` for ordinary nodes and `X` for node 0).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn point(&mut self, x: f64, y: f64, glyph: char) -> &mut Self {
        assert!(
            x.is_finite() && y.is_finite(),
            "scatter point must be finite"
        );
        self.points.push((x, y, glyph));
        self
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders to a `width x height` grid with axis ranges in the
    /// footer. Later points overwrite earlier ones in a shared cell.
    pub fn render(&self, width: usize, height: usize) -> String {
        let (width, height) = (width.max(2), height.max(2));
        if self.points.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let xs: Vec<f64> = self.points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.1).collect();
        let (x0, x1) = (min(&xs), max(&xs));
        let (y0, y1) = (min(&ys), max(&ys));
        let dx = (x1 - x0).max(1e-12);
        let dy = (y1 - y0).max(1e-12);
        let mut grid = vec![vec![' '; width]; height];
        for &(x, y, glyph) in &self.points {
            let col = (((x - x0) / dx) * (width - 1) as f64).round() as usize;
            let row = (((y - y0) / dy) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col] = glyph;
        }
        let mut out = format!("{}\n", self.title);
        for line in grid {
            out.push('|');
            out.extend(line);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "x: {} [{:.4} .. {:.4}], y: {} [{:.4} .. {:.4}]\n",
            self.x_label, x0, x1, self.y_label, y0, y1
        ));
        out
    }
}

fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("t");
        c.bar("a", 1.0, "");
        c.bar("b", 0.5, "x2");
        let text = c.render(10);
        let lines: Vec<&str> = text.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&ch| ch == '#').count();
        assert_eq!(hashes(lines[1]), 10);
        assert_eq!(hashes(lines[2]), 5);
        assert!(lines[2].contains("x2"));
    }

    #[test]
    fn zero_bars_render_empty() {
        let mut c = BarChart::new("t");
        c.bar("a", 0.0, "");
        let text = c.render(10);
        assert!(!text.lines().nth(1).unwrap().contains('#'));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bar_rejected() {
        let mut c = BarChart::new("t");
        c.bar("a", -1.0, "");
    }

    #[test]
    fn scatter_places_extremes_in_corners() {
        let mut p = ScatterPlot::new("t", "x", "y");
        p.point(0.0, 0.0, 'o');
        p.point(1.0, 1.0, 'X');
        let text = p.render(10, 5);
        let lines: Vec<&str> = text.lines().collect();
        // Top line holds the max-y point at the right edge.
        assert!(lines[1].ends_with('X'));
        // Bottom grid line holds the min point at the left edge.
        assert_eq!(lines[5].chars().nth(1), Some('o'));
        assert!(text.contains("x: x [0.0000 .. 1.0000]"));
    }

    #[test]
    fn empty_scatter_degrades_gracefully() {
        let p = ScatterPlot::new("t", "x", "y");
        assert!(p.is_empty());
        assert!(p.render(10, 5).contains("(no data)"));
    }

    #[test]
    fn single_point_no_panic() {
        let mut p = ScatterPlot::new("t", "x", "y");
        p.point(3.0, 4.0, '*');
        let text = p.render(8, 4);
        assert!(text.contains('*'));
    }
}
