//! Number formatting shared by every renderer.

/// Formats a probability as a percentage with adaptive precision:
/// rare events keep more digits ("0.31%"), common ones fewer ("21.4%").
///
/// # Examples
///
/// ```
/// use hpcfail_report::fmt::pct;
///
/// assert_eq!(pct(0.0031), "0.31%");
/// assert_eq!(pct(0.2145), "21.45%");
/// assert_eq!(pct(0.0000213), "0.0021%");
/// ```
pub fn pct(p: f64) -> String {
    let v = p * 100.0;
    if v == 0.0 {
        "0%".to_owned()
    } else if v < 0.01 {
        format!("{v:.4}%")
    } else {
        format!("{v:.2}%")
    }
}

/// Formats a factor increase like the paper's annotations: `"7.2x"`,
/// `"700x"` for large values, `"NA"` for a missing baseline.
///
/// # Examples
///
/// ```
/// use hpcfail_report::fmt::factor;
///
/// assert_eq!(factor(Some(7.23)), "7.2x");
/// assert_eq!(factor(Some(703.0)), "703x");
/// assert_eq!(factor(None), "NA");
/// ```
pub fn factor(f: Option<f64>) -> String {
    match f {
        None => "NA".to_owned(),
        Some(v) if v >= 100.0 => format!("{v:.0}x"),
        Some(v) if v >= 10.0 => format!("{v:.1}x"),
        Some(v) => format!("{v:.1}x"),
    }
}

/// Formats a p-value R-style: very small ones as `"<1e-16"`, others with
/// four digits.
pub fn p_value(p: f64) -> String {
    if p < 1e-16 {
        "<1e-16".to_owned()
    } else if p < 1e-4 {
        format!("{p:.1e}")
    } else {
        format!("{p:.4}")
    }
}

/// Significance stars at the conventional levels.
///
/// # Examples
///
/// ```
/// use hpcfail_report::fmt::stars;
///
/// assert_eq!(stars(0.0001), "***");
/// assert_eq!(stars(0.02), "*");
/// assert_eq!(stars(0.2), "");
/// ```
pub fn stars(p: f64) -> &'static str {
    if p < 0.001 {
        "***"
    } else if p < 0.01 {
        "**"
    } else if p < 0.05 {
        "*"
    } else {
        ""
    }
}

/// Fixed-precision float for coefficient tables.
pub fn coef(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_precision_bands() {
        assert_eq!(pct(0.0), "0%");
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(pct(0.000001), "0.0001%");
    }

    #[test]
    fn factor_bands() {
        assert_eq!(factor(Some(2.04)), "2.0x");
        assert_eq!(factor(Some(19.94)), "19.9x");
        assert_eq!(factor(Some(1926.0)), "1926x");
    }

    #[test]
    fn p_value_bands() {
        assert_eq!(p_value(1e-20), "<1e-16");
        assert_eq!(p_value(0.0373), "0.0373");
        assert_eq!(p_value(3e-5), "3.0e-5");
    }

    #[test]
    fn star_ladder() {
        assert_eq!(stars(0.0005), "***");
        assert_eq!(stars(0.005), "**");
        assert_eq!(stars(0.05), "");
    }
}
