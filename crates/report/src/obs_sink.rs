//! Human-readable export of an observability snapshot.
//!
//! [`TableSink`] is the counterpart to the JSON manifest sink in
//! `hpcfail-obs`: it renders a [`hpcfail_obs::Snapshot`] as
//! aligned text tables (spans, counters, gauges, histograms) suitable
//! for a terminal. It lives here rather than in `hpcfail-obs` because
//! the rendering reuses [`crate::table::Table`] and the dependency
//! points the other way.

use std::io::{self, Write};

use hpcfail_obs::registry::Snapshot;
use hpcfail_obs::sink::Sink;

use crate::table::{Align, Table};

/// Renders snapshots as aligned text tables to any writer.
///
/// # Examples
///
/// ```
/// use hpcfail_obs::sink::Sink;
/// use hpcfail_report::obs_sink::TableSink;
///
/// let snapshot = hpcfail_obs::Snapshot::default();
/// let mut out = Vec::new();
/// TableSink::new(&mut out).export(&snapshot).unwrap();
/// ```
#[derive(Debug)]
pub struct TableSink<W> {
    writer: W,
}

impl<W: Write> TableSink<W> {
    /// Creates a sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        TableSink { writer }
    }
}

/// Nanoseconds as a compact human duration.
fn ns(v: u64) -> String {
    ms(v as f64)
}

/// Fractional nanoseconds as a compact human duration.
fn ms(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

/// Renders the snapshot's non-empty sections as tables.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        let mut t = Table::new(&["span", "count", "total", "self"]);
        for c in 1..4 {
            t.align(c, Align::Right);
        }
        for (name, s) in &snapshot.spans {
            t.row(&[
                name.clone(),
                s.count.to_string(),
                ns(s.total_ns),
                ns(s.self_ns),
            ]);
        }
        out.push_str("spans\n");
        out.push_str(&t.render());
    }
    if !snapshot.counters.is_empty() {
        let mut t = Table::new(&["counter", "total"]);
        t.align(1, Align::Right);
        for (name, v) in &snapshot.counters {
            t.row(&[name.clone(), v.to_string()]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("counters\n");
        out.push_str(&t.render());
    }
    if !snapshot.gauges.is_empty() {
        let mut t = Table::new(&["gauge", "value"]);
        t.align(1, Align::Right);
        for (name, v) in &snapshot.gauges {
            t.row(&[name.clone(), format!("{v:.4}")]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("gauges\n");
        out.push_str(&t.render());
    }
    if !snapshot.histograms.is_empty() {
        let mut t = Table::new(&["histogram", "count", "p50", "p90", "p95", "p99", "max"]);
        for c in 1..7 {
            t.align(c, Align::Right);
        }
        for (name, h) in &snapshot.histograms {
            t.row(&[
                name.clone(),
                h.count.to_string(),
                ms(h.p50),
                ms(h.p90),
                ms(h.p95),
                ms(h.p99),
                ns(h.max),
            ]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("histograms\n");
        out.push_str(&t.render());
    }
    out
}

impl<W: Write> Sink for TableSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.writer.write_all(render(snapshot).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_obs::Registry;

    #[test]
    fn renders_all_sections() {
        let reg = Registry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.rate").set(0.5);
        reg.histogram("c.lat_ns").record(1_500_000);
        drop(hpcfail_obs::span::Span::enter_in(&reg, "d.phase"));
        let text = render(&reg.snapshot());
        for needle in [
            "spans",
            "counters",
            "gauges",
            "histograms",
            "a.count",
            "7",
            "b.rate",
            "0.5000",
            "c.lat_ns",
            "d.phase",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        assert!(render(&Snapshot::default()).is_empty());
    }

    #[test]
    fn sink_writes_to_writer() {
        let reg = Registry::new();
        reg.counter("x").inc();
        let mut buf = Vec::new();
        TableSink::new(&mut buf).export(&reg.snapshot()).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("x"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ns(500), "500ns");
        assert_eq!(ns(2_500), "2.5us");
        assert_eq!(ns(3_400_000), "3.40ms");
        assert_eq!(ns(7_120_000_000), "7.12s");
    }
}
