//! Aligned plain-text tables with TSV export.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
///
/// # Examples
///
/// ```
/// use hpcfail_report::table::Table;
///
/// let mut t = Table::new(&["type", "P(fail)", "factor"]);
/// t.row(&["ENV", "47.2%", "23.1x"]);
/// t.row(&["NET", "30.4%", "14.9x"]);
/// let text = t.render();
/// assert!(text.contains("ENV"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. The first column
    /// is left-aligned, the rest right-aligned (override with
    /// [`Table::align`]).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides one column's alignment.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.aligns[column] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns, a header rule, and two-space gutters.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let pad = |cell: &str, width: usize, align: Align| match align {
            Align::Left => format!("{cell:<width$}"),
            Align::Right => format!("{cell:>width$}"),
        };
        for (i, header) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&pad(header, widths[i], self.aligns[i]));
        }
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&pad(&row[i], widths[i], self.aligns[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as tab-separated values (header row included).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["beta-long-name", "22"]);
        t
    }

    #[test]
    fn columns_are_padded() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        // Numbers right-aligned: "1" ends the line.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn header_rule_present() {
        let text = sample().render();
        assert!(text.lines().nth(1).unwrap().chars().all(|c| c == '-'));
    }

    #[test]
    fn tsv_export() {
        let tsv = sample().to_tsv();
        assert_eq!(tsv, "name\tvalue\nalpha\t1\nbeta-long-name\t22\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn align_override() {
        let mut t = Table::new(&["a", "b"]);
        t.align(1, Align::Left);
        t.row(&["x", "y"]);
        let lines: Vec<String> = t.render().lines().map(String::from).collect();
        assert!(lines[2].starts_with("x  y"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
