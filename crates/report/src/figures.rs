//! Pre-built renderers for the common analysis outputs.

use crate::chart::BarChart;
use crate::fmt::{coef, factor, p_value, pct, stars};
use crate::table::Table;
use hpcfail_core::estimate::ConditionalEstimate;
use hpcfail_stats::glm::GlmFit;

/// Renders a set of conditional estimates as a bar chart with factor
/// annotations plus the shared random baseline as the last bar — the
/// shape of Figures 1(a), 2(left) and 3.
pub fn render_conditional_bars(
    title: &str,
    bars: &[(&str, ConditionalEstimate)],
    width: usize,
) -> String {
    let mut chart = BarChart::new(title);
    let mut baseline: Option<ConditionalEstimate> = None;
    for (label, estimate) in bars {
        chart.bar(
            label,
            estimate.conditional.estimate(),
            &factor(estimate.factor()),
        );
        baseline = Some(match baseline {
            // All bars share the same baseline (same target class), so
            // keep the widest-sample one.
            Some(prev) if prev.baseline.trials() >= estimate.baseline.trials() => prev,
            _ => *estimate,
        });
    }
    if let Some(b) = baseline {
        chart.bar("RANDOM", b.baseline.estimate(), "");
    }
    chart.render(width)
}

/// Renders conditional estimates as a detail table: probability,
/// 95% CI, baseline, factor and significance.
pub fn render_conditional_table(bars: &[(&str, ConditionalEstimate)]) -> String {
    let mut t = Table::new(&[
        "trigger",
        "P(cond)",
        "95% CI",
        "P(random)",
        "factor",
        "signif",
    ]);
    for (label, e) in bars {
        let ci = e.conditional_ci();
        t.row(&[
            (*label).to_owned(),
            pct(e.conditional.estimate()),
            format!("[{}, {}]", pct(ci.low), pct(ci.high)),
            pct(e.baseline.estimate()),
            factor(e.factor()),
            stars(e.test().p_value).to_owned(),
        ]);
    }
    t.render()
}

/// Renders a fitted GLM in the paper's Table II/III layout:
/// estimate, standard error, z value, `Pr(>|z|)`.
pub fn render_glm_table(title: &str, fit: &GlmFit) -> String {
    let mut t = Table::new(&["", "Estimate", "Std. Error", "z value", "Pr(>|z|)", ""]);
    for c in &fit.coefficients {
        t.row(&[
            c.name.clone(),
            coef(c.estimate),
            coef(c.std_error),
            format!("{:.2}", c.z_value),
            p_value(c.p_value),
            stars(c.p_value).to_owned(),
        ]);
    }
    format!(
        "{title}\n{}deviance {:.1} (null {:.1}), logLik {:.1}, AIC {:.1}, n = {}\n",
        t.render(),
        fit.deviance,
        fit.null_deviance,
        fit.log_likelihood,
        fit.aic,
        fit.n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_stats::glm::{Family, GlmModel};
    use hpcfail_store::query::WindowCounts;

    fn estimate(hits: u64, total: u64, bhits: u64, btotal: u64) -> ConditionalEstimate {
        ConditionalEstimate::from_counts(
            WindowCounts { hits, total },
            WindowCounts {
                hits: bhits,
                total: btotal,
            },
        )
    }

    #[test]
    fn conditional_bars_include_baseline() {
        let bars = vec![
            ("ENV", estimate(47, 100, 204, 10_000)),
            ("NET", estimate(30, 100, 204, 10_000)),
        ];
        let text = render_conditional_bars("fig", &bars, 30);
        assert!(text.contains("ENV"));
        assert!(text.contains("RANDOM"));
        assert!(text.contains("23.0x"), "{text}");
    }

    #[test]
    fn conditional_table_has_cis_and_stars() {
        let bars = vec![("HW", estimate(72, 1000, 31, 10_000))];
        let text = render_conditional_table(&bars);
        assert!(text.contains("7.20%"));
        assert!(text.contains("***"), "{text}");
        assert!(text.contains('['));
    }

    #[test]
    fn glm_table_matches_paper_layout() {
        let y = [10.0, 12.0, 8.0, 30.0, 33.0, 27.0];
        let g = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let fit = GlmModel::new(Family::Poisson)
            .term("g", &g)
            .fit(&y)
            .unwrap();
        let text = render_glm_table("Poisson regression", &fit);
        assert!(text.contains("(Intercept)"));
        assert!(text.contains("Estimate"));
        assert!(text.contains("Pr(>|z|)"));
        assert!(text.contains("AIC"));
    }
}
