//! Rendering of ingestion and data-quality reports.
//!
//! Turns the [`IngestReport`] produced by policy-driven loading into
//! the plain-text summary `repro --trace` prints, so an operator sees
//! at a glance how dirty the input was and what the recovery did.

use crate::table::Table;
use hpcfail_store::ingest::IngestReport;

/// How many quarantined lines are listed individually before the rest
/// are folded into a "... and N more" line.
const MAX_QUARANTINE_LINES: usize = 10;

/// Renders an [`IngestReport`] as a plain-text block: a headline, the
/// quarantine list (truncated), and the data-quality audit table.
pub fn render_ingest_report(report: &IngestReport) -> String {
    let mut out = format!(
        "ingestion ({} policy): {} rows parsed, {} quarantined, {} fields defaulted\n",
        report.policy,
        report.rows_ok,
        report.quarantined.len(),
        report.defaulted_fields,
    );
    if !report.quarantined.is_empty() {
        out.push_str("quarantined lines:\n");
        for q in report.quarantined.iter().take(MAX_QUARANTINE_LINES) {
            out.push_str(&format!("  {q}\n"));
        }
        let rest = report
            .quarantined
            .len()
            .saturating_sub(MAX_QUARANTINE_LINES);
        if rest > 0 {
            out.push_str(&format!("  ... and {rest} more\n"));
        }
    }
    let q = &report.quality;
    if q.is_clean() {
        out.push_str("data-quality audit: clean\n");
    } else {
        out.push_str("data-quality audit:\n");
        let mut table = Table::new(&["finding", "count"]);
        for (name, value) in [
            ("negative downtime", q.negative_downtime),
            ("out-of-order timestamps", q.out_of_order_timestamps),
            ("unresolvable node ids", q.unresolvable_nodes),
            ("overlapping repair windows", q.overlapping_repairs),
            ("duplicate records", q.duplicate_records),
            ("unknown-system records", q.unknown_system_records),
        ] {
            if value > 0 {
                table.row(&[name, &value.to_string()]);
            }
        }
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::ingest::{IngestPolicy, QuarantinedLine};

    #[test]
    fn clean_report_is_one_headline_plus_verdict() {
        let report = IngestReport::new(IngestPolicy::Strict);
        let text = render_ingest_report(&report);
        assert!(text.contains("strict policy"));
        assert!(text.contains("audit: clean"));
    }

    #[test]
    fn quarantine_list_truncates() {
        let mut report = IngestReport::new(IngestPolicy::Lenient);
        for i in 0..15 {
            report.quarantined.push(QuarantinedLine {
                file: "failures.csv".into(),
                line: i + 2,
                message: "bad field".into(),
                raw: "x".into(),
            });
        }
        report.quality.negative_downtime = 3;
        let text = render_ingest_report(&report);
        assert!(text.contains("... and 5 more"), "{text}");
        assert!(text.contains("negative downtime"), "{text}");
        assert!(
            !text.contains("duplicate records"),
            "zero-count findings are omitted: {text}"
        );
    }
}
