//! Plain-text rendering of `hpcfail` analysis results.
//!
//! The reproduction harness prints every paper table and figure as
//! text: aligned tables ([`table`]), horizontal bar charts and scatter
//! grids ([`chart`]), and pre-built renderers for the common analysis
//! outputs ([`figures`]). Number formatting lives in [`fmt`], and
//! ingestion/data-quality summaries in [`quality`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod figures;
pub mod fmt;
pub mod obs_sink;
pub mod quality;
pub mod table;

/// The most frequently used items.
pub mod prelude {
    pub use crate::chart::{BarChart, ScatterPlot};
    pub use crate::figures::{render_conditional_bars, render_glm_table};
    pub use crate::quality::render_ingest_report;
    pub use crate::table::Table;
}
