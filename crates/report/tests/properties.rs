//! Property-based tests for the text renderers: alignment invariants,
//! TSV structure, chart bounds.

use hpcfail_report::chart::{BarChart, ScatterPlot};
use hpcfail_report::fmt::{factor, p_value, pct, stars};
use hpcfail_report::table::Table;
use proptest::prelude::*;

fn cell() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 .%-]{0,12}"
}

proptest! {
    #[test]
    fn table_lines_share_width(
        rows in prop::collection::vec(prop::collection::vec(cell(), 3..4usize), 1..12),
    ) {
        let mut t = Table::new(&["a", "b", "c"]);
        for row in &rows {
            t.row(&[row[0].as_str(), row[1].as_str(), row[2].as_str()]);
        }
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        // All data lines padded to the same width (trailing-space
        // differences only come from left-aligned last cells, which the
        // renderer pads too).
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        let header_w = widths[0];
        for (i, w) in widths.iter().enumerate().skip(2) {
            prop_assert_eq!(*w, header_w, "line {} width", i);
        }
    }

    #[test]
    fn tsv_has_one_line_per_row(
        rows in prop::collection::vec(prop::collection::vec(cell(), 2..3usize), 0..10),
    ) {
        let mut t = Table::new(&["x", "y"]);
        for row in &rows {
            t.row(&[row[0].as_str(), row[1].as_str()]);
        }
        let tsv = t.to_tsv();
        prop_assert_eq!(tsv.lines().count(), rows.len() + 1);
        for line in tsv.lines() {
            prop_assert_eq!(line.split('\t').count(), 2);
        }
    }

    #[test]
    fn bar_chart_hash_count_bounded(values in prop::collection::vec(0.0f64..1000.0, 1..10)) {
        let mut chart = BarChart::new("t");
        for (i, &v) in values.iter().enumerate() {
            chart.bar(&format!("bar{i}"), v, "");
        }
        let text = chart.render(40);
        for line in text.lines().skip(1) {
            let hashes = line.chars().filter(|&c| c == '#').count();
            prop_assert!(hashes <= 40);
        }
    }

    #[test]
    fn scatter_render_never_panics(
        points in prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 0..50),
    ) {
        let mut plot = ScatterPlot::new("t", "x", "y");
        for &(x, y) in &points {
            plot.point(x, y, '*');
        }
        let text = plot.render(30, 10);
        prop_assert!(!text.is_empty());
        if !points.is_empty() {
            // Grid rows bounded by requested height + decorations.
            prop_assert!(text.lines().count() <= 10 + 3);
        }
    }

    #[test]
    fn fmt_functions_total(p in 0.0f64..1.0, f in 0.0f64..10_000.0) {
        // Formatting never panics and always yields non-empty strings.
        prop_assert!(!pct(p).is_empty());
        prop_assert!(!factor(Some(f)).is_empty());
        prop_assert!(!p_value(p).is_empty());
        let _ = stars(p);
    }
}
