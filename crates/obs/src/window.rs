//! Sliding-window metrics: quantiles and rates over the last N
//! seconds, not since boot.
//!
//! A [`WindowHistogram`] is a ring of fixed-duration slots, each
//! holding the same log-bucketed count layout as the cumulative
//! [`Histogram`](crate::registry::Histogram). Recording lands an
//! observation in the slot covering "now"; reading merges every slot
//! still inside the window and interpolates quantiles exactly like the
//! cumulative histogram does. Slots are recycled lazily: the first
//! record (or read) that finds a slot stamped with an expired period
//! zeroes it, so an idle histogram decays to empty without a
//! background thread.
//!
//! Consistency: rotation takes a per-slot mutex, observation is a pair
//! of relaxed atomics. A record racing a rotation of the *same* slot —
//! which requires the two events to be a full window apart — can land
//! in the fresh period. Live telemetry tolerates that; nothing here
//! feeds the deterministic analysis path.
//!
//! All public entry points also accept an explicit elapsed-millisecond
//! position (`record_at_ms`, `snapshot_at_ms`) so tests can drive the
//! clock instead of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A slot stamped with this period is empty (never used).
const EMPTY: u64 = u64::MAX;

#[derive(Debug)]
struct Slot {
    /// Which period index the counts below belong to; [`EMPTY`] if none.
    period: AtomicU64,
    rotate: Mutex<()>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Slot {
    fn new(buckets: usize) -> Slot {
        Slot {
            period: AtomicU64::new(EMPTY),
            rotate: Mutex::new(()),
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Makes the slot current for `period`, zeroing stale contents.
    fn rotate_to(&self, period: u64) {
        if self.period.load(Ordering::Acquire) == period {
            return;
        }
        let _guard = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
        if self.period.load(Ordering::Acquire) == period {
            return;
        }
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.period.store(period, Ordering::Release);
    }
}

#[derive(Debug)]
struct WindowCore {
    bounds: Vec<u64>,
    slot_ms: u64,
    slots: Vec<Slot>,
    start: Instant,
}

/// A sliding-window histogram: live p50/p90/p95/p99 over the last
/// `slots × slot_ms` milliseconds. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    core: Arc<WindowCore>,
}

impl WindowHistogram {
    /// A window of `slots` slots of `slot_ms` each, with explicit
    /// ascending bucket bounds (same semantics as
    /// [`Histogram::with_bounds`](crate::registry::Histogram::with_bounds)).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`, `slot_ms == 0`, or `bounds` is empty or
    /// not strictly ascending.
    pub fn with_bounds(bounds: &[u64], slot_ms: u64, slots: usize) -> Self {
        assert!(slots > 0, "window needs at least one slot");
        assert!(slot_ms > 0, "slots need a positive duration");
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        WindowHistogram {
            core: Arc::new(WindowCore {
                bounds: bounds.to_vec(),
                slot_ms,
                slots: (0..slots).map(|_| Slot::new(bounds.len() + 1)).collect(),
                start: Instant::now(),
            }),
        }
    }

    /// The default serving layout: the exponential nanosecond bounds of
    /// [`Histogram::exponential_ns`](crate::registry::Histogram::exponential_ns)
    /// over a 30-second window of 1-second slots.
    pub fn exponential_ns() -> Self {
        let bounds: Vec<u64> = (10..37).map(|p| 1u64 << p).collect();
        WindowHistogram::with_bounds(&bounds, 1_000, 30)
    }

    /// The window length in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.core.slot_ms * self.core.slots.len() as u64
    }

    fn now_ms(&self) -> u64 {
        self.core.start.elapsed().as_millis() as u64
    }

    /// Records one observation at the current time.
    pub fn record(&self, value: u64) {
        self.record_at_ms(self.now_ms(), value);
    }

    /// Records one observation as if it happened `at_ms` milliseconds
    /// after the histogram was created (test hook; production callers
    /// use [`WindowHistogram::record`]).
    pub fn record_at_ms(&self, at_ms: u64, value: u64) {
        let period = at_ms / self.core.slot_ms;
        let slot = &self.core.slots[(period % self.core.slots.len() as u64) as usize];
        slot.rotate_to(period);
        let idx = self.core.bounds.partition_point(|&b| b <= value);
        slot.counts[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The live statistics over the window ending now.
    pub fn snapshot(&self) -> WindowedSnapshot {
        self.snapshot_at_ms(self.now_ms())
    }

    /// The statistics over the window ending at `at_ms` (test hook).
    pub fn snapshot_at_ms(&self, at_ms: u64) -> WindowedSnapshot {
        let current = at_ms / self.core.slot_ms;
        let oldest = current.saturating_sub(self.core.slots.len() as u64 - 1);
        let mut merged = vec![0u64; self.core.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for slot in &self.core.slots {
            let period = slot.period.load(Ordering::Acquire);
            if period == EMPTY || period < oldest || period > current {
                continue;
            }
            for (m, c) in merged.iter_mut().zip(&slot.counts) {
                *m += c.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
            let mut seen = 0u64;
            for (i, &in_bucket) in merged.iter().enumerate() {
                if in_bucket == 0 {
                    continue;
                }
                if (seen + in_bucket) as f64 >= rank {
                    let lo = if i == 0 { 0 } else { self.core.bounds[i - 1] };
                    let hi = if i < self.core.bounds.len() {
                        self.core.bounds[i]
                    } else {
                        max.max(lo + 1)
                    };
                    let frac = (rank - seen as f64) / in_bucket as f64;
                    return lo as f64 + frac * (hi - lo) as f64;
                }
                seen += in_bucket;
            }
            max as f64
        };
        WindowedSnapshot {
            window_ms: self.window_ms(),
            count,
            sum,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Frozen sliding-window statistics; all quantiles are over the window
/// only, and an idle window reads as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowedSnapshot {
    /// The window length the statistics cover, in milliseconds.
    pub window_ms: u64,
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observations inside the window.
    pub sum: u64,
    /// Largest observation inside the window.
    pub max: u64,
    /// Estimated windowed median.
    pub p50: f64,
    /// Estimated windowed 90th percentile.
    pub p90: f64,
    /// Estimated windowed 95th percentile.
    pub p95: f64,
    /// Estimated windowed 99th percentile.
    pub p99: f64,
}

/// A sliding-window event counter: totals over the last
/// `slots × slot_ms` milliseconds. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct WindowCounter {
    slot_ms: u64,
    slots: Arc<Vec<CounterSlot>>,
    start: Arc<Instant>,
}

#[derive(Debug)]
struct CounterSlot {
    period: AtomicU64,
    rotate: Mutex<()>,
    total: AtomicU64,
}

impl CounterSlot {
    fn rotate_to(&self, period: u64) {
        if self.period.load(Ordering::Acquire) == period {
            return;
        }
        let _guard = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
        if self.period.load(Ordering::Acquire) == period {
            return;
        }
        self.total.store(0, Ordering::Relaxed);
        self.period.store(period, Ordering::Release);
    }
}

impl WindowCounter {
    /// A counter over `slots` slots of `slot_ms` milliseconds each.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `slot_ms == 0`.
    pub fn new(slot_ms: u64, slots: usize) -> Self {
        assert!(slots > 0, "window needs at least one slot");
        assert!(slot_ms > 0, "slots need a positive duration");
        WindowCounter {
            slot_ms,
            slots: Arc::new(
                (0..slots)
                    .map(|_| CounterSlot {
                        period: AtomicU64::new(EMPTY),
                        rotate: Mutex::new(()),
                        total: AtomicU64::new(0),
                    })
                    .collect(),
            ),
            start: Arc::new(Instant::now()),
        }
    }

    /// The window length in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.slot_ms * self.slots.len() as u64
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Adds `n` events at the current time.
    pub fn add(&self, n: u64) {
        self.add_at_ms(self.now_ms(), n);
    }

    /// Adds `n` events at `at_ms` (test hook).
    pub fn add_at_ms(&self, at_ms: u64, n: u64) {
        let period = at_ms / self.slot_ms;
        let slot = &self.slots[(period % self.slots.len() as u64) as usize];
        slot.rotate_to(period);
        slot.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Events inside the window ending now.
    pub fn total(&self) -> u64 {
        self.total_at_ms(self.now_ms())
    }

    /// Events inside the window ending at `at_ms` (test hook).
    pub fn total_at_ms(&self, at_ms: u64) -> u64 {
        let current = at_ms / self.slot_ms;
        let oldest = current.saturating_sub(self.slots.len() as u64 - 1);
        self.slots
            .iter()
            .filter(|slot| {
                let p = slot.period.load(Ordering::Acquire);
                p != EMPTY && p >= oldest && p <= current
            })
            .map(|slot| slot.total.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reads_zero() {
        let w = WindowHistogram::exponential_ns();
        let snap = w.snapshot_at_ms(0);
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99, 0.0);
        assert_eq!(snap.window_ms, 30_000);
    }

    #[test]
    fn observations_age_out_of_the_window() {
        let w = WindowHistogram::with_bounds(&[10, 100, 1_000], 1_000, 5);
        for i in 0..50 {
            w.record_at_ms(0, 40 + i);
        }
        assert_eq!(w.snapshot_at_ms(0).count, 50);
        // Still inside the 5-second window.
        assert_eq!(w.snapshot_at_ms(4_500).count, 50);
        // A full window later everything has aged out.
        assert_eq!(w.snapshot_at_ms(5_000).count, 0);
    }

    #[test]
    fn windowed_quantiles_track_recent_values_only() {
        let w = WindowHistogram::with_bounds(&[10, 100, 1_000, 10_000], 1_000, 5);
        // An old burst of slow observations...
        for _ in 0..100 {
            w.record_at_ms(0, 5_000);
        }
        // ...then, 10 slots later, fast ones.
        for _ in 0..100 {
            w.record_at_ms(10_000, 50);
        }
        let snap = w.snapshot_at_ms(10_000);
        assert_eq!(snap.count, 100);
        assert!(
            snap.p99 <= 100.0,
            "p99 {} reflects only the window",
            snap.p99
        );
        assert!(snap.p50 >= 10.0);
        assert_eq!(snap.max, 50);
    }

    #[test]
    fn ring_slots_are_recycled() {
        let w = WindowHistogram::with_bounds(&[10], 100, 2);
        w.record_at_ms(0, 5);
        w.record_at_ms(150, 5);
        // Period 2 maps onto period 0's slot and must evict it.
        w.record_at_ms(200, 5);
        let snap = w.snapshot_at_ms(200);
        assert_eq!(snap.count, 2, "period-0 contents evicted, periods 1+2 kept");
    }

    #[test]
    fn quantiles_interpolate_like_the_cumulative_histogram() {
        let w = WindowHistogram::exponential_ns();
        let h = crate::registry::Histogram::exponential_ns();
        for v in (0..10_000).map(|i| i * 131) {
            w.record_at_ms(0, v);
            h.record(v);
        }
        let snap = w.snapshot_at_ms(0);
        for (q, got) in [(0.5, snap.p50), (0.9, snap.p90), (0.99, snap.p99)] {
            let want = h.quantile(q).expect("non-empty");
            assert!(
                (got - want).abs() < 1e-9,
                "q{q}: window {got} vs cumulative {want}"
            );
        }
    }

    #[test]
    fn concurrent_records_sum_exactly_within_one_period() {
        let w = WindowHistogram::exponential_ns();
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let w = w.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        w.record_at_ms(0, i);
                    }
                });
            }
        });
        assert_eq!(w.snapshot_at_ms(0).count, 8 * per_thread);
    }

    #[test]
    fn window_counter_ages_out() {
        let c = WindowCounter::new(1_000, 3);
        c.add_at_ms(0, 5);
        c.add_at_ms(1_000, 7);
        assert_eq!(c.total_at_ms(1_000), 12);
        assert_eq!(c.total_at_ms(2_999), 12);
        assert_eq!(c.total_at_ms(3_000), 7, "the first slot aged out");
        assert_eq!(c.total_at_ms(10_000), 0);
    }
}
