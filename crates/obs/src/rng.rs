//! A tiny deterministic RNG shared by the serving-layer features that
//! must be reproducible: retry jitter, chaos-injection decisions and
//! trace ids.
//!
//! Two entry points:
//!
//! * [`mix64`] — the stateless SplitMix64 finalizer. Hashing a small
//!   tuple of integers through repeated `mix64(state ^ input)` rounds
//!   yields a well-mixed 64-bit value that depends only on the inputs,
//!   never on thread interleaving — which is exactly what deterministic
//!   chaos schedules need ("does the Nth arrival at point P fault?").
//! * [`SplitMix64`] — a sequential stream over the same mixer, for
//!   call sites that want successive draws from one seed (retry
//!   jitter).
//!
//! This module is always compiled (`no-obs` included): determinism
//! machinery is not telemetry and must never change behavior between
//! builds.

/// The SplitMix64 finalizer: a stateless, bijective 64-bit mixer.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next draw as a fraction in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The fraction in `[0, 1)` that `value` hashes to (one `mix64` round).
#[must_use]
pub fn fraction(value: u64) -> f64 {
    (mix64(value) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn fractions_land_in_the_unit_interval() {
        let mut rng = SplitMix64::new(2026);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "{f}");
        }
        for v in [0, 1, u64::MAX, 0xdead_beef] {
            let f = fraction(v);
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn mix64_is_well_spread_over_small_inputs() {
        // Sequential inputs must not produce correlated fractions: a
        // coarse uniformity check over 4 bins.
        let mut bins = [0u32; 4];
        for n in 0..4000u64 {
            let f = fraction(n);
            bins[(f * 4.0) as usize] += 1;
        }
        for (i, count) in bins.iter().enumerate() {
            assert!((800..1200).contains(count), "bin {i} holds {count} of 4000");
        }
    }
}
