//! Pluggable exporters for registry snapshots.
//!
//! Two sinks ship with the workspace:
//!
//! - [`ManifestSink`](crate::manifest::ManifestSink) (in this crate)
//!   writes the machine-readable JSON run manifest;
//! - `TableSink` (in `hpcfail-report`, which depends on this crate —
//!   the dependency cannot point the other way without a cycle) renders
//!   the human-readable summary table.

use crate::registry::Snapshot;
use std::io;

/// Consumes a snapshot, e.g. by writing it somewhere.
pub trait Sink {
    /// Exports `snapshot`.
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

/// Writes `pretty`-style debug lines to any [`io::Write`] — the
/// smallest possible sink, useful in tests and ad-hoc debugging.
pub struct DebugSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> DebugSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        DebugSink { writer }
    }
}

impl<W: io::Write> Sink for DebugSink<W> {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        for (name, span) in &snapshot.spans {
            writeln!(
                self.writer,
                "span {name}: count {} total {}ns self {}ns",
                span.count, span.total_ns, span.self_ns
            )?;
        }
        for (name, value) in &snapshot.counters {
            writeln!(self.writer, "counter {name}: {value}")?;
        }
        for (name, value) in &snapshot.gauges {
            writeln!(self.writer, "gauge {name}: {value}")?;
        }
        for (name, h) in &snapshot.histograms {
            writeln!(
                self.writer,
                "histogram {name}: count {} p50 {:.0} p90 {:.0} p99 {:.0} max {}",
                h.count, h.p50, h.p90, h.p99, h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn debug_sink_writes_every_metric_kind() {
        let registry = Registry::new();
        registry.counter("c").add(3);
        registry.gauge("g").set(1.5);
        registry.histogram("h").record(100);
        drop(crate::span::Span::enter_in(&registry, "s"));
        let mut buf = Vec::new();
        DebugSink::new(&mut buf)
            .export(&registry.snapshot())
            .expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf-8");
        for needle in ["counter c: 3", "gauge g: 1.5", "histogram h", "span s"] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }
}
