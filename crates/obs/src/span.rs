//! Scoped wall-clock spans with RAII guards.
//!
//! A span measures the wall time between [`Span::enter`] and guard
//! drop, so early returns and panics still close it. Spans nest: each
//! thread keeps a stack, and a parent's *self* time excludes the total
//! time of the spans entered beneath it, so hierarchical profiles
//! attribute time to the innermost span doing the work.

use crate::registry::{Registry, SpanCell};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    // One child-time accumulator per open span on this thread.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open span; closes (and records) on drop.
///
/// ```
/// use hpcfail_obs::registry::Registry;
/// use hpcfail_obs::span::Span;
///
/// let registry = Registry::new();
/// {
///     let _outer = Span::enter_in(&registry, "outer");
///     let _inner = Span::enter_in(&registry, "outer.step");
/// }
/// let snap = registry.snapshot();
/// assert_eq!(snap.spans["outer"].count, 1);
/// assert!(snap.spans["outer"].total_ns >= snap.spans["outer.step"].total_ns);
/// ```
#[derive(Debug)]
pub struct Span {
    cell: SpanCell,
    start: Instant,
}

impl Span {
    /// Opens a span recording into the global registry.
    pub fn enter(name: &str) -> Span {
        Span::enter_in(crate::registry::global(), name)
    }

    /// Opens a span recording into `registry`.
    pub fn enter_in(registry: &Registry, name: &str) -> Span {
        let cell = registry.span_cell(name);
        CHILD_NS.with_borrow_mut(|stack| stack.push(0));
        Span {
            cell,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with_borrow_mut(|stack| {
            let child_ns = stack.pop().unwrap_or(0);
            // Bill this span's total to the parent, if one is open.
            if let Some(parent) = stack.last_mut() {
                *parent += total_ns;
            }
            child_ns
        });
        self.cell
            .record(total_ns, total_ns.saturating_sub(child_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_early_return() {
        let registry = Registry::new();
        let run = |fail: bool| -> Result<(), ()> {
            let _span = Span::enter_in(&registry, "work");
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(true).unwrap_err();
        run(false).unwrap();
        assert_eq!(registry.snapshot().spans["work"].count, 2);
    }

    #[test]
    fn nested_spans_attribute_self_time_to_innermost() {
        let registry = Registry::new();
        {
            let _outer = Span::enter_in(&registry, "outer");
            std::thread::sleep(Duration::from_millis(5));
            {
                let _inner = Span::enter_in(&registry, "inner");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let snap = registry.snapshot();
        let outer = snap.spans["outer"];
        let inner = snap.spans["inner"];
        // The inner sleep belongs to the inner span alone.
        assert!(inner.self_ns >= 15_000_000, "inner self {}", inner.self_ns);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 5_000_000,
            "outer self {} should exclude inner {}",
            outer.self_ns,
            inner.total_ns
        );
    }

    #[test]
    fn sibling_spans_accumulate() {
        let registry = Registry::new();
        for _ in 0..3 {
            let _s = Span::enter_in(&registry, "loop.body");
        }
        assert_eq!(registry.snapshot().spans["loop.body"].count, 3);
    }
}
