//! Scoped wall-clock spans with RAII guards.
//!
//! A span measures the wall time between [`Span::enter`] and guard
//! drop, so early returns and panics still close it. Spans nest: each
//! thread keeps a stack, and a parent's *self* time excludes the total
//! time of the spans entered beneath it, so hierarchical profiles
//! attribute time to the innermost span doing the work.
//!
//! Two consumers observe a span when it closes:
//!
//! * the flat per-name aggregates in the [`Registry`] (always), and
//! * the thread's trace collector (only while an
//!   [`ActiveTrace`](crate::trace::ActiveTrace) guard is installed),
//!   which assembles the full parent/child tree with attributes for
//!   request-scoped tracing.

use crate::registry::{Registry, SpanCell};
use crate::trace::SpanNode;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    // One child-time accumulator per open span on this thread.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    // The installed trace collector, if any (see crate::trace).
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Builds one span tree while an `ActiveTrace` guard is installed.
struct Collector {
    trace_id: u64,
    next_span_id: u64,
    /// Open spans, outermost first.
    stack: Vec<PendingNode>,
    /// Set when the outermost captured span closes.
    finished_root: Option<SpanNode>,
}

struct PendingNode {
    name: String,
    span_id: u64,
    parent_id: u64,
    attrs: Vec<(String, String)>,
    children: Vec<SpanNode>,
}

/// Installs a collector on this thread. Returns `false` (and installs
/// nothing) if one is already present — traces do not nest.
pub(crate) fn install_collector(trace_id: u64) -> bool {
    COLLECTOR.with_borrow_mut(|slot| {
        if slot.is_some() {
            return false;
        }
        *slot = Some(Collector {
            trace_id,
            next_span_id: 1,
            stack: Vec::new(),
            finished_root: None,
        });
        true
    })
}

/// Uninstalls the collector, returning the finished tree when the
/// capture completed (root span closed).
pub(crate) fn take_collector() -> Option<(u64, SpanNode)> {
    COLLECTOR
        .with_borrow_mut(Option::take)
        .and_then(|collector| {
            collector
                .finished_root
                .map(|root| (collector.trace_id, root))
        })
}

/// An open span; closes (and records) on drop.
///
/// ```
/// use hpcfail_obs::registry::Registry;
/// use hpcfail_obs::span::Span;
///
/// let registry = Registry::new();
/// {
///     let _outer = Span::enter_in(&registry, "outer");
///     let _inner = Span::enter_in(&registry, "outer.step");
/// }
/// let snap = registry.snapshot();
/// assert_eq!(snap.spans["outer"].count, 1);
/// assert!(snap.spans["outer"].total_ns >= snap.spans["outer.step"].total_ns);
/// ```
#[derive(Debug)]
pub struct Span {
    cell: SpanCell,
    start: Instant,
    /// The span id the thread's collector assigned, if one was
    /// installed at enter time.
    capture_id: Option<u64>,
}

impl Span {
    /// Opens a span recording into the global registry.
    pub fn enter(name: &str) -> Span {
        Span::enter_in(crate::registry::global(), name)
    }

    /// Opens a span recording into `registry`.
    pub fn enter_in(registry: &Registry, name: &str) -> Span {
        let cell = registry.span_cell(name);
        CHILD_NS.with_borrow_mut(|stack| stack.push(0));
        let capture_id = COLLECTOR.with_borrow_mut(|slot| {
            let collector = slot.as_mut()?;
            if collector.finished_root.is_some() {
                return None; // the capture already completed
            }
            let span_id = collector.next_span_id;
            collector.next_span_id += 1;
            let parent_id = collector.stack.last().map_or(0, |p| p.span_id);
            collector.stack.push(PendingNode {
                name: name.to_owned(),
                span_id,
                parent_id,
                attrs: Vec::new(),
                children: Vec::new(),
            });
            Some(span_id)
        });
        Span {
            cell,
            start: Instant::now(),
            capture_id,
        }
    }

    /// Attaches a `key=value` attribute to this span in the thread's
    /// trace capture. A no-op when no trace is being captured (the flat
    /// registry aggregates carry no attributes).
    pub fn attr(&self, key: &str, value: &str) {
        let Some(id) = self.capture_id else {
            return;
        };
        COLLECTOR.with_borrow_mut(|slot| {
            if let Some(collector) = slot.as_mut() {
                if let Some(node) = collector.stack.iter_mut().rev().find(|n| n.span_id == id) {
                    node.attrs.push((key.to_owned(), value.to_owned()));
                }
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with_borrow_mut(|stack| {
            let child_ns = stack.pop().unwrap_or(0);
            // Bill this span's total to the parent, if one is open.
            if let Some(parent) = stack.last_mut() {
                *parent += total_ns;
            }
            child_ns
        });
        let self_ns = total_ns.saturating_sub(child_ns);
        self.cell.record(total_ns, self_ns);

        if let Some(id) = self.capture_id {
            COLLECTOR.with_borrow_mut(|slot| {
                let Some(collector) = slot.as_mut() else {
                    return; // the capture ended before this span closed
                };
                // Strict nesting means this span is the top of the
                // stack; a mismatch means the capture was replaced
                // mid-span, in which case the node is abandoned.
                if collector.stack.last().map(|n| n.span_id) != Some(id) {
                    return;
                }
                let pending = collector.stack.pop().expect("checked non-empty");
                let node = SpanNode {
                    name: pending.name,
                    span_id: pending.span_id,
                    parent_id: pending.parent_id,
                    total_ns,
                    self_ns,
                    attrs: pending.attrs,
                    children: pending.children,
                };
                match collector.stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => collector.finished_root = Some(node),
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_early_return() {
        let registry = Registry::new();
        let run = |fail: bool| -> Result<(), ()> {
            let _span = Span::enter_in(&registry, "work");
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(true).unwrap_err();
        run(false).unwrap();
        assert_eq!(registry.snapshot().spans["work"].count, 2);
    }

    #[test]
    fn nested_spans_attribute_self_time_to_innermost() {
        let registry = Registry::new();
        {
            let _outer = Span::enter_in(&registry, "outer");
            std::thread::sleep(Duration::from_millis(5));
            {
                let _inner = Span::enter_in(&registry, "inner");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        let snap = registry.snapshot();
        let outer = snap.spans["outer"];
        let inner = snap.spans["inner"];
        // The inner sleep belongs to the inner span alone.
        assert!(inner.self_ns >= 15_000_000, "inner self {}", inner.self_ns);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 5_000_000,
            "outer self {} should exclude inner {}",
            outer.self_ns,
            inner.total_ns
        );
    }

    #[test]
    fn sibling_spans_accumulate() {
        let registry = Registry::new();
        for _ in 0..3 {
            let _s = Span::enter_in(&registry, "loop.body");
        }
        assert_eq!(registry.snapshot().spans["loop.body"].count, 3);
    }

    #[test]
    fn attr_without_a_trace_is_a_noop() {
        let registry = Registry::new();
        let span = Span::enter_in(&registry, "untraced");
        span.attr("key", "value"); // must not panic or capture
        drop(span);
        assert_eq!(registry.snapshot().spans["untraced"].count, 1);
    }

    #[test]
    fn capture_tracks_only_spans_inside_the_trace() {
        let registry = Registry::new();
        // A span opened before the trace is never captured.
        let pre = Span::enter_in(&registry, "pre");
        assert!(install_collector(11));
        {
            let _in_trace = Span::enter_in(&registry, "in_trace");
        }
        drop(pre); // closes while captured, but was entered before: skipped
        let (trace_id, root) = take_collector().expect("capture finished");
        assert_eq!(trace_id, 11);
        assert_eq!(root.name, "in_trace");
        assert_eq!(root.len(), 1);
    }
}
