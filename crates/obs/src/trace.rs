//! Request-scoped tracing: 64-bit trace ids and hierarchical span
//! trees.
//!
//! A [`TraceContext`] names one unit of work (a served request) with a
//! 64-bit trace id; while an [`ActiveTrace`] guard is installed on a
//! thread, every [`crate::span::Span`] entered on that thread is
//! additionally captured into a tree of [`SpanNode`]s — parent/child
//! links, per-span self time, and `key=value` attributes — on top of
//! the flat per-name aggregates the registry keeps. Finishing the
//! guard yields a [`TraceRecording`] that serializes to JSON, which is
//! what `hpcfail-serve` returns inline when a client sends
//! `x-trace: 1`.
//!
//! Trace ids come from a process-global splitmix64 stream. By default
//! the stream is seeded from wall-clock entropy; tests call
//! [`seed_trace_ids`] to make the ids (and therefore access logs and
//! trace echoes) deterministic. Span ids are allocated sequentially
//! within a trace (the root is span 1), so a recording is
//! deterministic given a deterministic execution.
//!
//! Like the rest of the crate, the capture path is reached through the
//! front door (`hpcfail_obs::start_trace`) and compiles down to an
//! inert stand-in under the `no-obs` feature.

use crate::json::Json;
use crate::span::{self, Span};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static TRACE_ID_STATE: OnceLock<AtomicU64> = OnceLock::new();

fn id_state() -> &'static AtomicU64 {
    TRACE_ID_STATE.get_or_init(|| {
        // Wall-clock + pid entropy; uniqueness within a process comes
        // from the counter, this only decorrelates processes.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        AtomicU64::new(nanos ^ (u64::from(std::process::id()) << 32))
    })
}

/// Reseeds the trace-id stream so subsequent ids are deterministic.
/// Test hook; production processes keep the entropy-seeded default.
pub fn seed_trace_ids(seed: u64) {
    id_state().store(seed, Ordering::SeqCst);
}

/// The next trace id from the process-global stream: unique within the
/// process, never zero.
pub fn next_trace_id() -> u64 {
    // splitmix64 over a sequential state: well-mixed 64-bit ids from a
    // seedable counter.
    let mut z = id_state()
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    z.max(1)
}

/// The identity of one traced unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit trace id.
    pub trace_id: u64,
    /// The id of the span this context currently names (the root span
    /// of a fresh context is span 1).
    pub span_id: u64,
}

impl TraceContext {
    /// A fresh context with a new trace id, positioned at the root.
    pub fn new() -> TraceContext {
        TraceContext {
            trace_id: next_trace_id(),
            span_id: 1,
        }
    }

    /// A context for a known trace id (e.g. one propagated by a
    /// client), positioned at the root.
    pub fn with_id(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id: trace_id.max(1),
            span_id: 1,
        }
    }

    /// The trace id as 16 lowercase hex digits, the wire form used in
    /// `x-trace-id` headers and access logs.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::new()
    }
}

/// One finished span in a trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span name, as passed to [`crate::span()`].
    pub name: String,
    /// The span id, sequential within the trace (root is 1).
    pub span_id: u64,
    /// The parent's span id; 0 for the root.
    pub parent_id: u64,
    /// Wall time including children, nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding children, nanoseconds.
    pub self_ns: u64,
    /// `key=value` attributes, in the order they were set.
    pub attrs: Vec<(String, String)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Serializes the subtree rooted here.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("span_id", Json::Num(self.span_id as f64)),
            ("parent_id", Json::Num(self.parent_id as f64)),
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("self_ns", Json::Num(self.self_ns as f64)),
            (
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    /// Total number of spans in the subtree rooted here.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanNode::len).sum::<usize>()
    }

    /// `false`: a node is at least itself.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A completed trace: the id plus the root of the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecording {
    /// The trace id.
    pub trace_id: u64,
    /// The root span; every other captured span nests beneath it.
    pub root: SpanNode,
}

impl TraceRecording {
    /// The trace id as 16 lowercase hex digits.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Serializes the whole recording.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::Str(self.trace_id_hex())),
            ("spans", Json::Num(self.root.len() as f64)),
            ("root", self.root.to_json()),
        ])
    }
}

/// An installed trace capture: opened by
/// [`start_trace`](crate::start_trace) (or [`ActiveTrace::start`]),
/// closed by [`ActiveTrace::finish`].
///
/// The guard owns the trace's root span. While it lives, spans entered
/// on this thread are captured into the tree. Dropping the guard
/// without calling `finish` discards the capture cleanly.
///
/// Traces do not nest: starting a trace while one is already installed
/// on the thread yields a passive guard that allocates a trace id but
/// records nothing (`finish` returns `None`).
#[derive(Debug)]
pub struct ActiveTrace {
    context: TraceContext,
    /// Present only while capture is installed and unfinished.
    root: Option<Span>,
    owns_collector: bool,
}

impl ActiveTrace {
    /// Installs capture on this thread with a fresh trace id and opens
    /// the root span `name`.
    pub fn start(name: &str) -> ActiveTrace {
        ActiveTrace::start_with(name, TraceContext::new())
    }

    /// Installs capture with an explicit context (deterministic tests,
    /// propagated ids).
    pub fn start_with(name: &str, context: TraceContext) -> ActiveTrace {
        let owns_collector = span::install_collector(context.trace_id);
        let root = Some(Span::enter(name));
        ActiveTrace {
            context,
            root,
            owns_collector,
        }
    }

    /// The trace's identity.
    pub fn context(&self) -> TraceContext {
        self.context
    }

    /// The trace id as 16 lowercase hex digits.
    pub fn trace_id_hex(&self) -> String {
        self.context.trace_id_hex()
    }

    /// Sets a `key=value` attribute on the trace's root span.
    pub fn attr(&self, key: &str, value: &str) {
        if let Some(root) = &self.root {
            root.attr(key, value);
        }
    }

    /// Closes the root span and returns the captured tree, or `None`
    /// for a passive (nested) guard.
    pub fn finish(mut self) -> Option<TraceRecording> {
        self.root.take(); // drop order: root span must close first
        if !self.owns_collector {
            return None;
        }
        self.owns_collector = false;
        span::take_collector().map(|(trace_id, root)| TraceRecording { trace_id, root })
    }
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        self.root.take();
        if self.owns_collector {
            let _ = span::take_collector();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_after_seeding() {
        seed_trace_ids(99);
        let a = next_trace_id();
        let b = next_trace_id();
        seed_trace_ids(99);
        assert_eq!(next_trace_id(), a);
        assert_eq!(next_trace_id(), b);
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn context_hex_is_sixteen_digits() {
        let ctx = TraceContext::with_id(0xabc);
        assert_eq!(ctx.trace_id_hex(), "0000000000000abc");
        assert_eq!(ctx.span_id, 1);
    }

    #[test]
    fn captures_a_nested_tree_with_attrs() {
        let trace = ActiveTrace::start_with("request", TraceContext::with_id(7));
        trace.attr("kind", "trace-summary");
        {
            let outer = crate::span::Span::enter("outer");
            outer.attr("step", "1");
            {
                let _inner = crate::span::Span::enter("inner");
            }
        }
        let recording = trace.finish().expect("owning guard records");
        assert_eq!(recording.trace_id, 7);
        let root = &recording.root;
        assert_eq!(root.name, "request");
        assert_eq!(root.span_id, 1);
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.attrs, vec![("kind".into(), "trace-summary".into())]);
        assert_eq!(root.children.len(), 1);
        let outer = &root.children[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent_id, root.span_id);
        assert_eq!(outer.attrs, vec![("step".into(), "1".into())]);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(root.len(), 3);

        // Root duration covers the sum of child self times.
        let child_self: u64 = outer.self_ns + outer.children[0].self_ns;
        assert!(root.total_ns >= child_self);
        assert!(root.total_ns >= outer.total_ns);
    }

    #[test]
    fn nested_trace_guards_are_passive() {
        let outer = ActiveTrace::start_with("outer", TraceContext::with_id(1));
        let inner = ActiveTrace::start_with("inner", TraceContext::with_id(2));
        assert!(inner.finish().is_none(), "nested guard records nothing");
        let recording = outer.finish().expect("outer still owns the capture");
        assert_eq!(recording.root.name, "outer");
        // The passive guard's root span still shows up as a child span.
        assert_eq!(recording.root.children.len(), 1);
        assert_eq!(recording.root.children[0].name, "inner");
    }

    #[test]
    fn dropping_without_finish_uninstalls_cleanly() {
        {
            let _t = ActiveTrace::start_with("dropped", TraceContext::with_id(3));
        }
        // A fresh trace must own the capture again.
        let t = ActiveTrace::start_with("fresh", TraceContext::with_id(4));
        let recording = t.finish().expect("collector was released");
        assert_eq!(recording.trace_id, 4);
    }

    #[test]
    fn recording_serializes_to_json() {
        let trace = ActiveTrace::start_with("request", TraceContext::with_id(0xff));
        let recording = trace.finish().expect("records");
        let json = recording.to_json();
        assert_eq!(
            json.get("trace_id").and_then(Json::as_str),
            Some("00000000000000ff")
        );
        assert_eq!(json.get("spans").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("root")
                .and_then(|r| r.get("name"))
                .and_then(Json::as_str),
            Some("request")
        );
    }
}
