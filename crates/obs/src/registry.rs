//! The thread-safe metrics registry: counters, gauges, fixed-bucket
//! histograms, and per-span timing cells.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`-backed atomics; registration takes a lock, but every update on
//! a held handle is a single atomic operation, so hot loops should
//! register once outside the loop and update inside it.

use crate::window::{WindowHistogram, WindowedSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (e.g. a hit rate or a queue
/// depth). Stored as `f64` bits in an atomic.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Replaces the level.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `u64` observations (typically
/// nanoseconds or item counts) with quantile estimation.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] <= v <
/// bounds[i]`; one implicit overflow bucket catches everything at or
/// above the last bound. Quantiles interpolate linearly inside the
/// containing bucket, so an estimate is off by at most one bucket
/// width.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with explicit ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts,
                sum: AtomicU64::new(0),
                total: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// The default timing layout: power-of-two bounds from 1 µs to
    /// ~68 s, in nanoseconds.
    pub fn exponential_ns() -> Self {
        let bounds: Vec<u64> = (10..37).map(|p| 1u64 << p).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self.core.bounds.partition_point(|&b| b <= value);
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
        self.core.total.fetch_add(1, Ordering::Relaxed);
        self.core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 <= q <= 1`) estimated by linear
    /// interpolation within the containing bucket; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for (i, c) in self.core.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if (seen + in_bucket) as f64 >= rank {
                let lo = if i == 0 { 0 } else { self.core.bounds[i - 1] };
                let hi = if i < self.core.bounds.len() {
                    self.core.bounds[i]
                } else {
                    // Overflow bucket: cap at the observed max.
                    self.max().max(lo + 1)
                };
                let frac = (rank - seen as f64) / in_bucket as f64;
                return Some(lo as f64 + frac * (hi - lo) as f64);
            }
            seen += in_bucket;
        }
        Some(self.max() as f64)
    }

    /// The width of the bucket containing `value` — callers can use it
    /// as the quantile estimate's error bound.
    pub fn bucket_width(&self, value: u64) -> u64 {
        let idx = self.core.bounds.partition_point(|&b| b <= value);
        let lo = if idx == 0 {
            0
        } else {
            self.core.bounds[idx - 1]
        };
        let hi = if idx < self.core.bounds.len() {
            self.core.bounds[idx]
        } else {
            u64::MAX
        };
        hi - lo
    }
}

/// Accumulated wall time for one span name.
#[derive(Debug, Clone)]
pub struct SpanCell {
    pub(crate) count: Arc<AtomicU64>,
    pub(crate) total_ns: Arc<AtomicU64>,
    pub(crate) self_ns: Arc<AtomicU64>,
}

impl SpanCell {
    fn new() -> Self {
        SpanCell {
            count: Arc::new(AtomicU64::new(0)),
            total_ns: Arc::new(AtomicU64::new(0)),
            self_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    pub(crate) fn record(&self, total_ns: u64, self_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    windows: Mutex<BTreeMap<String, WindowHistogram>>,
    spans: Mutex<BTreeMap<String, SpanCell>>,
}

/// A collection of named metrics. Cloning shares the underlying store.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter registry lock");
        map.entry(name.to_owned())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge registry lock");
        map.entry(name.to_owned())
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// The histogram named `name`, created on first use with the
    /// default exponential nanosecond bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, Histogram::exponential_ns)
    }

    /// The histogram named `name`, created on first use by `make`.
    pub fn histogram_with(&self, name: &str, make: impl FnOnce() -> Histogram) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry lock");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The sliding-window histogram named `name`, created on first use
    /// with the default layout
    /// ([`WindowHistogram::exponential_ns`]: nanosecond buckets over a
    /// 30-second window).
    pub fn window(&self, name: &str) -> WindowHistogram {
        self.window_with(name, WindowHistogram::exponential_ns)
    }

    /// The sliding-window histogram named `name`, created on first use
    /// by `make`.
    pub fn window_with(
        &self,
        name: &str,
        make: impl FnOnce() -> WindowHistogram,
    ) -> WindowHistogram {
        let mut map = self.inner.windows.lock().expect("window registry lock");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The span cell named `name`, created on first use.
    pub(crate) fn span_cell(&self, name: &str) -> SpanCell {
        let mut map = self.inner.spans.lock().expect("span registry lock");
        map.entry(name.to_owned())
            .or_insert_with(SpanCell::new)
            .clone()
    }

    /// A point-in-time copy of every metric, for sinks.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        p50: h.quantile(0.50).unwrap_or(0.0),
                        p90: h.quantile(0.90).unwrap_or(0.0),
                        p95: h.quantile(0.95).unwrap_or(0.0),
                        p99: h.quantile(0.99).unwrap_or(0.0),
                    },
                )
            })
            .collect();
        let windows = self
            .inner
            .windows
            .lock()
            .expect("window registry lock")
            .iter()
            .map(|(k, w)| (k.clone(), w.snapshot()))
            .filter(|(_, s)| s.count > 0)
            .collect();
        let spans = self
            .inner
            .spans
            .lock()
            .expect("span registry lock")
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        count: s.count.load(Ordering::Relaxed),
                        total_ns: s.total_ns.load(Ordering::Relaxed),
                        self_ns: s.self_ns.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            windows,
            spans,
        }
    }
}

/// Frozen histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Frozen span statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall time, children included, in nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding child spans, in nanoseconds.
    pub self_ns: u64,
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram statistics by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Sliding-window histogram statistics by name (windows currently
    /// holding no observations are omitted).
    pub windows: BTreeMap<String, WindowedSnapshot>,
    /// Span timings by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry used by the front-door instrumentation
/// API ([`crate::span()`], [`crate::counter`], ...).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn gauge_stores_floats() {
        let reg = Registry::new();
        reg.gauge("rate").set(0.375);
        assert_eq!(reg.gauge("rate").get(), 0.375);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(&[10, 20, 30, 40, 50]);
        for v in 0..50 {
            h.record(v);
        }
        assert_eq!(h.count(), 50);
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((15.0..=35.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.max(), 49);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::with_bounds(&[10]);
        h.record(1_000);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).expect("non-empty") >= 10.0);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Registry::new();
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = reg.counter("concurrent");
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("concurrent").get(), 8 * per_thread);
    }

    #[test]
    fn quantile_estimates_within_one_bucket_width() {
        // Uniform values over [0, 1000) against the default exponential
        // bucketing: every quantile estimate must land within one bucket
        // width of the exact order statistic.
        let h = Histogram::exponential_ns();
        let n = 100_000u64;
        for v in 0..n {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = q * (n - 1) as f64;
            let estimate = h.quantile(q).expect("non-empty");
            let width = h.bucket_width(exact as u64) as f64;
            assert!(
                (estimate - exact).abs() <= width,
                "q{q}: estimate {estimate} vs exact {exact}, bucket width {width}"
            );
        }
    }

    #[test]
    fn snapshot_carries_live_windows_and_p95() {
        let reg = Registry::new();
        reg.window("quiet");
        let live = reg.window("live");
        for v in 1..=100 {
            live.record(v * 1_000);
        }
        let h = reg.histogram("h");
        for v in 1..=100 {
            h.record(v * 1_000);
        }
        let snap = reg.snapshot();
        assert!(!snap.windows.contains_key("quiet"));
        let w = snap.windows["live"];
        assert_eq!(w.count, 100);
        assert!(w.p50 <= w.p90 && w.p90 <= w.p95 && w.p95 <= w.p99);
        let hist = snap.histograms["h"];
        assert!(hist.p90 <= hist.p95 && hist.p95 <= hist.p99);
    }

    #[test]
    fn snapshot_omits_empty_histograms() {
        let reg = Registry::new();
        reg.histogram("quiet");
        let active = reg.histogram("busy");
        active.record(7);
        let snap = reg.snapshot();
        assert!(!snap.histograms.contains_key("quiet"));
        assert_eq!(snap.histograms["busy"].count, 1);
    }
}
