//! A minimal JSON value type with writer and parser.
//!
//! The observability layer must not pull serialization dependencies
//! into every crate of the workspace (and the build environment has no
//! crates.io access anyway), so manifests are written and read through
//! this self-contained implementation. It supports the full JSON data
//! model except exotic number forms: numbers are `f64`, which is exact
//! for the integer counters below 2^53 that manifests contain.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are ordered for stable output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, when this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form
    /// used by the serve access log.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why parsing failed, with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so the
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("seed", Json::Num(42.0)),
            ("scale", Json::Num(0.25)),
            ("name", Json::Str("repro \"all\"\n".into())),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "spans",
                Json::Arr(vec![Json::obj([
                    ("name", Json::Str("sec3a".into())),
                    ("total_ns", Json::Num(123456789.0)),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = Json::obj([
            ("kind", Json::Str("trace-summary".into())),
            ("latency_us", Json::Num(125.0)),
            ("cache", Json::Null),
            ("ids", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let text = doc.compact();
        assert!(!text.contains('\n'));
        assert!(!text.contains(' '));
        assert_eq!(parse(&text).expect("round trip"), doc);
        assert_eq!(Json::Obj(BTreeMap::new()).compact(), "{}");
        assert_eq!(Json::Arr(Vec::new()).compact(), "[]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\tbAé"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\tbAé"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integers_print_without_exponent() {
        let mut s = String::new();
        write_number(&mut s, 4_503_599_627_370_496.0);
        assert_eq!(s, "4503599627370496");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 7, "a": [1, 2]}"#).expect("parses");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("nope"), None);
    }
}
