//! `hpcfail-obs` — the workspace's zero-dependency tracing and metrics
//! substrate.
//!
//! The reproduction pipeline runs dozens of statistical analyses over a
//! multi-million-event synthetic trace; this crate makes that pipeline
//! observable without adding any external dependency:
//!
//! - [`registry`] — a thread-safe metrics registry holding counters,
//!   gauges and fixed-bucket histograms (p50/p90/p99 estimates), all
//!   backed by atomics so instrumented hot loops stay cheap;
//! - [`span`](mod@span) — scoped RAII wall-time spans that nest, attribute self
//!   time to the innermost span, and survive early returns;
//! - [`sink`] — a pluggable exporter trait; the JSON
//!   [`manifest`] sink lives here, the human-readable
//!   table sink lives in `hpcfail-report` (which depends on this
//!   crate);
//! - [`json`] — the self-contained JSON writer/parser behind the run
//!   manifest.
//!
//! # The front door
//!
//! Instrumentation sites use the free functions below, which talk to
//! the process-global registry:
//!
//! ```
//! let _span = hpcfail_obs::span("sec3a.window_scan");
//! hpcfail_obs::counter("store.rows_scanned").add(128);
//! hpcfail_obs::gauge("store.filter_hit_rate").set(0.42);
//! hpcfail_obs::histogram("core.parallel.batch_ns").record(1_500);
//! ```
//!
//! # Compile-time erasure (`no-obs`)
//!
//! With the `no-obs` feature enabled, every front-door call degrades to
//! a zero-sized no-op — no atomics, no clock reads, no registry — so
//! the overhead claim of the instrumentation is checkable by building
//! the same code twice (`cargo build` vs `cargo build --features
//! no-obs`) and comparing benches. The registry, manifest and sink
//! machinery remain available in both modes; under `no-obs` they simply
//! observe an empty world.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod registry;
pub mod rng;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

pub use registry::{Registry, Snapshot};
pub use trace::{TraceContext, TraceRecording};
pub use window::WindowedSnapshot;

#[cfg(not(feature = "no-obs"))]
mod front_door {
    use crate::registry::{self, Counter, Gauge, Histogram};
    use crate::span::Span;
    use crate::trace::{ActiveTrace, TraceContext};
    use crate::window::WindowHistogram;

    /// Opens a wall-time span on the global registry; it closes (and
    /// records) when the returned guard drops.
    #[must_use = "a span records when its guard drops; binding it to _ closes it immediately"]
    pub fn span(name: &str) -> Span {
        Span::enter(name)
    }

    /// The global counter named `name`.
    pub fn counter(name: &str) -> Counter {
        registry::global().counter(name)
    }

    /// The global gauge named `name`.
    pub fn gauge(name: &str) -> Gauge {
        registry::global().gauge(name)
    }

    /// The global histogram named `name`.
    pub fn histogram(name: &str) -> Histogram {
        registry::global().histogram(name)
    }

    /// The global sliding-window histogram named `name` (exponential
    /// nanosecond bounds, 30 s window).
    pub fn window(name: &str) -> WindowHistogram {
        registry::global().window(name)
    }

    /// Starts capturing a request-scoped trace on this thread: opens
    /// the root span `name` and returns the guard. See
    /// [`crate::trace::ActiveTrace`].
    #[must_use = "the trace records only until its guard drops; call finish() to collect it"]
    pub fn start_trace(name: &str) -> ActiveTrace {
        ActiveTrace::start(name)
    }

    /// Starts capturing a trace with an explicit context (propagated or
    /// seeded trace ids).
    #[must_use = "the trace records only until its guard drops; call finish() to collect it"]
    pub fn start_trace_with(name: &str, context: TraceContext) -> ActiveTrace {
        ActiveTrace::start_with(name, context)
    }

    /// A snapshot of the global registry.
    pub fn snapshot() -> crate::registry::Snapshot {
        registry::global().snapshot()
    }
}

#[cfg(feature = "no-obs")]
mod front_door {
    //! Zero-sized stand-ins: every call compiles away.

    /// Inert guard standing in for [`crate::span::Span`].
    #[derive(Debug, Clone, Copy)]
    pub struct NoopSpan;

    impl NoopSpan {
        /// No-op; see [`crate::span::Span::attr`].
        #[inline(always)]
        pub fn attr(&self, _key: &str, _value: &str) {}
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    #[must_use = "a span records when its guard drops; binding it to _ closes it immediately"]
    pub fn span(_name: &str) -> NoopSpan {
        NoopSpan
    }

    /// Inert counter handle.
    #[derive(Debug, Clone, Copy)]
    pub struct NoopCounter;

    impl NoopCounter {
        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    pub fn counter(_name: &str) -> NoopCounter {
        NoopCounter
    }

    /// Inert gauge handle.
    #[derive(Debug, Clone, Copy)]
    pub struct NoopGauge;

    impl NoopGauge {
        /// No-op.
        #[inline(always)]
        pub fn set(&self, _value: f64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> f64 {
            0.0
        }
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    pub fn gauge(_name: &str) -> NoopGauge {
        NoopGauge
    }

    /// Inert histogram handle.
    #[derive(Debug, Clone, Copy)]
    pub struct NoopHistogram;

    impl NoopHistogram {
        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    pub fn histogram(_name: &str) -> NoopHistogram {
        NoopHistogram
    }

    /// Inert sliding-window histogram handle.
    #[derive(Debug, Clone, Copy)]
    pub struct NoopWindow;

    impl NoopWindow {
        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// An all-zero snapshot.
        #[inline(always)]
        pub fn snapshot(&self) -> crate::window::WindowedSnapshot {
            crate::window::WindowedSnapshot::default()
        }
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    pub fn window(_name: &str) -> NoopWindow {
        NoopWindow
    }

    /// Inert trace guard: same surface as
    /// [`crate::trace::ActiveTrace`], records nothing.
    #[derive(Debug, Clone, Copy)]
    pub struct NoopTrace;

    impl NoopTrace {
        /// A zeroed context.
        #[inline(always)]
        pub fn context(&self) -> crate::trace::TraceContext {
            crate::trace::TraceContext {
                trace_id: 0,
                span_id: 0,
            }
        }

        /// Sixteen zeros: no ids are allocated without instrumentation.
        #[inline(always)]
        pub fn trace_id_hex(&self) -> String {
            "0000000000000000".to_owned()
        }

        /// No-op.
        #[inline(always)]
        pub fn attr(&self, _key: &str, _value: &str) {}

        /// Always `None`: nothing was captured.
        #[inline(always)]
        pub fn finish(self) -> Option<crate::trace::TraceRecording> {
            None
        }
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    #[must_use = "the trace records only until its guard drops; call finish() to collect it"]
    pub fn start_trace(_name: &str) -> NoopTrace {
        NoopTrace
    }

    /// No-op; see the instrumented variant.
    #[inline(always)]
    #[must_use = "the trace records only until its guard drops; call finish() to collect it"]
    pub fn start_trace_with(_name: &str, _context: crate::trace::TraceContext) -> NoopTrace {
        NoopTrace
    }

    /// An empty snapshot.
    #[inline(always)]
    pub fn snapshot() -> crate::registry::Snapshot {
        crate::registry::Snapshot::default()
    }
}

pub use front_door::*;

/// `true` when the crate was built with instrumentation compiled in.
pub const ENABLED: bool = cfg!(not(feature = "no-obs"));

#[cfg(test)]
mod tests {
    #[test]
    fn front_door_is_usable_in_both_modes() {
        let _span = crate::span("test.front_door");
        crate::counter("test.count").add(2);
        crate::gauge("test.gauge").set(1.0);
        crate::histogram("test.hist").record(10);
        let snap = crate::snapshot();
        if crate::ENABLED {
            assert!(snap.counters["test.count"] >= 2);
        } else {
            assert!(snap.counters.is_empty());
        }
    }
}
