//! The machine-readable JSON run manifest.
//!
//! One manifest captures everything needed to compare two runs: the
//! generation parameters (seed, scale), the build (`git describe`
//! string when available), per-span wall times, and every counter,
//! gauge and histogram total. The `repro` binary writes one under
//! `--manifest <path>`.

use crate::json::{self, Json};
use crate::registry::{HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::sink::Sink;
use crate::window::WindowedSnapshot;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

/// The manifest schema version; bump on breaking layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A complete run description.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Generation seed.
    pub seed: u64,
    /// Fleet scale in (0, 1].
    pub scale: f64,
    /// `git describe --always --dirty` output, when available.
    pub git_describe: Option<String>,
    /// The metrics snapshot taken at the end of the run.
    pub snapshot: Snapshot,
}

impl RunManifest {
    /// Builds a manifest from run parameters and a snapshot.
    pub fn new(seed: u64, scale: f64, git_describe: Option<String>, snapshot: Snapshot) -> Self {
        RunManifest {
            seed,
            scale,
            git_describe,
            snapshot,
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> Json {
        let spans = self
            .snapshot
            .spans
            .iter()
            .map(|(name, s)| {
                Json::obj([
                    ("name", Json::Str(name.clone())),
                    ("count", Json::Num(s.count as f64)),
                    ("total_ns", Json::Num(s.total_ns as f64)),
                    ("self_ns", Json::Num(s.self_ns as f64)),
                ])
            })
            .collect();
        let counters = Json::Obj(
            self.snapshot
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.snapshot
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.snapshot
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::Num(h.count as f64)),
                            ("sum", Json::Num(h.sum as f64)),
                            ("max", Json::Num(h.max as f64)),
                            ("p50", Json::Num(h.p50)),
                            ("p90", Json::Num(h.p90)),
                            ("p95", Json::Num(h.p95)),
                            ("p99", Json::Num(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        let windows = Json::Obj(
            self.snapshot
                .windows
                .iter()
                .map(|(k, w)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("window_ms", Json::Num(w.window_ms as f64)),
                            ("count", Json::Num(w.count as f64)),
                            ("sum", Json::Num(w.sum as f64)),
                            ("max", Json::Num(w.max as f64)),
                            ("p50", Json::Num(w.p50)),
                            ("p90", Json::Num(w.p90)),
                            ("p95", Json::Num(w.p95)),
                            ("p99", Json::Num(w.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("seed", Json::Num(self.seed as f64)),
            ("scale", Json::Num(self.scale)),
            (
                "git_describe",
                match &self.git_describe {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            ("spans", Json::Arr(spans)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("windows", windows),
        ])
    }

    /// Parses a manifest back from JSON text.
    pub fn from_json_str(text: &str) -> Result<RunManifest, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let need_u64 = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let version = need_u64("schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version}, expected {SCHEMA_VERSION}"
            ));
        }
        let seed = need_u64("seed")?;
        let scale = doc
            .get("scale")
            .and_then(Json::as_f64)
            .ok_or("missing number field \"scale\"")?;
        let git_describe = match doc.get("git_describe") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("git_describe must be a string or null")?
                    .to_owned(),
            ),
        };
        let mut spans = BTreeMap::new();
        for entry in doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"spans\"")?
        {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or("span entry without name")?;
            let field = |key: &str| {
                entry
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("span {name:?} missing {key:?}"))
            };
            spans.insert(
                name.to_owned(),
                SpanSnapshot {
                    count: field("count")?,
                    total_ns: field("total_ns")?,
                    self_ns: field("self_ns")?,
                },
            );
        }
        let mut counters = BTreeMap::new();
        if let Some(Json::Obj(map)) = doc.get("counters") {
            for (k, v) in map {
                counters.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("counter {k:?} not integral"))?,
                );
            }
        }
        let mut gauges = BTreeMap::new();
        if let Some(Json::Obj(map)) = doc.get("gauges") {
            for (k, v) in map {
                gauges.insert(
                    k.clone(),
                    v.as_f64()
                        .ok_or_else(|| format!("gauge {k:?} not numeric"))?,
                );
            }
        }
        let mut histograms = BTreeMap::new();
        if let Some(Json::Obj(map)) = doc.get("histograms") {
            for (k, v) in map {
                let field = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("histogram {k:?} missing {key:?}"))
                };
                histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count: field("count")? as u64,
                        sum: field("sum")? as u64,
                        max: field("max")? as u64,
                        p50: field("p50")?,
                        p90: field("p90")?,
                        // Absent from manifests written before p95
                        // joined the snapshot; 0 marks "not recorded".
                        p95: v.get("p95").and_then(Json::as_f64).unwrap_or(0.0),
                        p99: field("p99")?,
                    },
                );
            }
        }
        // Absent from manifests written before sliding windows existed.
        let mut windows = BTreeMap::new();
        if let Some(Json::Obj(map)) = doc.get("windows") {
            for (k, v) in map {
                let field = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("window {k:?} missing {key:?}"))
                };
                windows.insert(
                    k.clone(),
                    WindowedSnapshot {
                        window_ms: field("window_ms")? as u64,
                        count: field("count")? as u64,
                        sum: field("sum")? as u64,
                        max: field("max")? as u64,
                        p50: field("p50")?,
                        p90: field("p90")?,
                        p95: field("p95")?,
                        p99: field("p99")?,
                    },
                );
            }
        }
        Ok(RunManifest {
            seed,
            scale,
            git_describe,
            snapshot: Snapshot {
                counters,
                gauges,
                histograms,
                windows,
                spans,
            },
        })
    }
}

/// A [`Sink`] writing the JSON manifest to a file.
pub struct ManifestSink {
    path: PathBuf,
    seed: u64,
    scale: f64,
    git_describe: Option<String>,
}

impl ManifestSink {
    /// A sink that will write to `path`.
    pub fn new(
        path: impl Into<PathBuf>,
        seed: u64,
        scale: f64,
        git_describe: Option<String>,
    ) -> Self {
        ManifestSink {
            path: path.into(),
            seed,
            scale,
            git_describe,
        }
    }
}

impl Sink for ManifestSink {
    fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let manifest = RunManifest::new(
            self.seed,
            self.scale,
            self.git_describe.clone(),
            snapshot.clone(),
        );
        std::fs::write(&self.path, manifest.to_json().pretty())
    }
}

/// Best-effort `git describe --always --dirty` for the manifest's build
/// field; `None` when git or the repository is unavailable.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_manifest() -> RunManifest {
        let registry = Registry::new();
        registry.counter("synth.failures").add(1234);
        registry.gauge("store.filter_hit_rate").set(0.875);
        registry.histogram("core.parallel.batch_ns").record(2048);
        drop(crate::span::Span::enter_in(&registry, "experiment.sec3a"));
        RunManifest::new(42, 0.25, Some("v0-3-gabc".into()), registry.snapshot())
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = sample_manifest();
        let text = manifest.to_json().pretty();
        let back = RunManifest::from_json_str(&text).expect("parses");
        assert_eq!(back.seed, manifest.seed);
        assert_eq!(back.scale, manifest.scale);
        assert_eq!(back.git_describe, manifest.git_describe);
        assert_eq!(back.snapshot.counters, manifest.snapshot.counters);
        assert_eq!(back.snapshot.gauges, manifest.snapshot.gauges);
        assert!(back.snapshot.spans.contains_key("experiment.sec3a"));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let registry = Registry::new();
        registry.counter("serve.requests").add(17);
        registry.gauge("serve.inflight").set(2.0);
        let h = registry.histogram("serve.latency_ns");
        for v in [900, 1_500, 40_000, 2_000_000] {
            h.record(v);
        }
        registry
            .window("serve.window.latency_ns")
            .record_at_ms(0, 1234);
        let manifest = RunManifest::new(9, 0.5, None, registry.snapshot());

        let text = manifest.to_json().pretty();
        let back = RunManifest::from_json_str(&text).expect("parses");
        assert_eq!(back, manifest);
        let rewritten = back.to_json().pretty();
        assert_eq!(rewritten, text, "write -> parse -> re-write must be stable");
    }

    #[test]
    fn old_manifest_without_p95_or_windows_still_parses() {
        // The exact shape manifests had before p95 and sliding windows
        // joined the schema.
        let text = r#"{
            "schema_version": 1,
            "seed": 3,
            "scale": 1.0,
            "git_describe": null,
            "spans": [{"name": "engine.run", "count": 2, "total_ns": 10, "self_ns": 10}],
            "counters": {"serve.requests": 5},
            "gauges": {},
            "histograms": {
                "serve.latency_ns": {
                    "count": 5, "sum": 50, "max": 20,
                    "p50": 8.0, "p90": 18.0, "p99": 20.0
                }
            }
        }"#;
        let back = RunManifest::from_json_str(text).expect("old manifests stay parseable");
        let hist = &back.snapshot.histograms["serve.latency_ns"];
        assert_eq!(hist.count, 5);
        assert_eq!(hist.p95, 0.0, "missing p95 defaults to zero");
        assert_eq!(hist.p99, 20.0);
        assert!(back.snapshot.windows.is_empty());
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = r#"{"schema_version": 999, "seed": 1, "scale": 1.0, "spans": []}"#;
        assert!(RunManifest::from_json_str(text).is_err());
    }

    #[test]
    fn manifest_sink_writes_file() {
        let dir = std::env::temp_dir().join("hpcfail-obs-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("manifest-{}.json", std::process::id()));
        let registry = Registry::new();
        registry.counter("c").inc();
        ManifestSink::new(&path, 7, 1.0, None)
            .export(&registry.snapshot())
            .expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        let back = RunManifest::from_json_str(&text).expect("parses");
        assert_eq!(back.seed, 7);
        assert_eq!(back.snapshot.counters["c"], 1);
        std::fs::remove_file(&path).ok();
    }
}
