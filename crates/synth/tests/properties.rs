//! Property-based tests for the generator: schema validity and
//! determinism under arbitrary seeds and (small) specs.

use hpcfail_synth::spec::{FleetSpec, SystemSpec};
use hpcfail_types::prelude::*;
use proptest::prelude::*;

fn tiny_spec(nodes: u32, days: u32) -> FleetSpec {
    let mut fleet = FleetSpec::demo();
    fleet.systems = vec![SystemSpec::smp(18, nodes.max(3), days.max(120))];
    fleet
}

proptest! {
    // Generation is the expensive part; keep case counts small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_records_respect_schema(seed in 0u64..1_000_000, nodes in 3u32..30, days in 120u32..500) {
        let fleet = tiny_spec(nodes, days).generate(seed);
        for system in fleet.trace().systems() {
            let cfg = system.config();
            let mut last = Timestamp::EPOCH;
            for f in system.failures() {
                prop_assert!(f.node.raw() < cfg.nodes, "node in range");
                prop_assert!(f.sub_cause.consistent_with(f.root_cause));
                prop_assert!(f.time >= cfg.start);
                prop_assert!(f.time >= last, "sorted by time");
                last = f.time;
            }
            for m in system.maintenance() {
                prop_assert!(m.node.raw() < cfg.nodes);
            }
            for j in system.jobs() {
                prop_assert!(j.is_well_formed());
                prop_assert!(j.nodes.iter().all(|n| n.raw() < cfg.nodes));
            }
        }
    }

    #[test]
    fn same_seed_same_fleet(seed in 0u64..1_000_000) {
        let spec = tiny_spec(8, 150);
        let a = spec.generate(seed);
        let b = spec.generate(seed);
        let sa = a.trace().system(SystemId::new(18)).unwrap();
        let sb = b.trace().system(SystemId::new(18)).unwrap();
        prop_assert_eq!(sa.failures(), sb.failures());
        prop_assert_eq!(sa.maintenance(), sb.maintenance());
        prop_assert_eq!(sa.temperatures().len(), sb.temperatures().len());
    }

    #[test]
    fn neutron_counts_positive(seed in 0u64..1_000_000) {
        let fleet = tiny_spec(4, 150).generate(seed);
        prop_assert!(!fleet.trace().neutron_samples().is_empty());
        for s in fleet.trace().neutron_samples() {
            prop_assert!(s.counts_per_minute > 0.0);
        }
    }

    #[test]
    fn undetermined_fraction_roughly_respected(seed in 0u64..100_000) {
        // A larger single system so the share estimate is stable.
        let fleet = tiny_spec(60, 1500).generate(seed);
        let system = fleet.trace().system(SystemId::new(18)).unwrap();
        let total = system.failures().len();
        prop_assume!(total > 150);
        let undet = system
            .failures()
            .iter()
            .filter(|f| f.root_cause == RootCause::Undetermined)
            .count();
        let share = undet as f64 / total as f64;
        // Spec says 10%; allow a generous band.
        prop_assert!(share > 0.015 && share < 0.30, "undetermined share {share}");
    }
}
