//! Satellite guarantee: scenario packs are well-behaved data.
//!
//! Every builtin pack must parse, re-serialize canonically (the
//! canonical form is a fixpoint, so a pack can be normalized once and
//! committed), and generate a non-trivial trace whose episodes are
//! visible in the failure record. Malformed documents — unknown keys,
//! negative rates, zero nodes, out-of-range episodes — must come back
//! as typed [`ScenarioError`]s, never panics.

use hpcfail_synth::scenario::{self, Scenario, ScenarioError};
use hpcfail_types::ids::SystemId;

const PACKS: [&str; 4] = [
    "fleet-100k",
    "cascading-power",
    "firmware-wave",
    "network-partition",
];

#[test]
fn builtin_pack_registry_is_complete() {
    let mut names: Vec<&str> = scenario::builtin_names().collect();
    names.sort_unstable();
    let mut expected = PACKS.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
}

#[test]
fn builtin_packs_round_trip_canonically() {
    for pack in PACKS {
        let scenario = scenario::load(pack).expect(pack);
        assert_eq!(scenario.name, pack);
        let canonical = scenario.canonical();
        let reparsed = Scenario::parse(&canonical)
            .unwrap_or_else(|e| panic!("{pack}: canonical form must parse: {e}"));
        assert_eq!(reparsed, scenario, "{pack}: parse∘canonical is identity");
        assert_eq!(
            reparsed.canonical(),
            canonical,
            "{pack}: canonical is a fixpoint"
        );
    }
}

#[test]
fn packs_load_from_paths_too() {
    let scenario = scenario::load("crates/synth/packs/firmware-wave.json")
        .or_else(|_| scenario::load("packs/firmware-wave.json"))
        .expect("pack loads from its file path");
    assert_eq!(scenario.name, "firmware-wave");
    assert_eq!(
        scenario,
        scenario::load("firmware-wave").expect("builtin loads")
    );
    assert!(matches!(
        scenario::load("no-such-pack-or-file"),
        Err(ScenarioError::Io { .. })
    ));
}

#[test]
fn episodes_shape_the_generated_hazard() {
    // 40x network hazard on the first half of the nodes for one week
    // must concentrate network failures there; the same spec without
    // episodes stays roughly balanced.
    let base = r#"{
        "scenario": "episode-probe",
        "version": 1,
        "seed": 404,
        "systems": [
            {"id": 7, "template": "smp", "nodes": 64, "days": 365EPISODES}
        ]
    }"#;
    let with_episodes = base.replace(
        "EPISODES",
        r#",
            "episodes": [
                {"days": [100, 140], "nodes": [0, 31],
                 "channel": "network", "multiplier": 40}
            ]"#,
    );
    let without_episodes = base.replace("EPISODES", "");

    let count_network_by_half = |text: &str| {
        let trace = Scenario::parse(text)
            .expect("probe parses")
            .generate()
            .into_store();
        let system = trace.system(SystemId::new(7)).expect("system 7");
        let mut lower = 0u64;
        let mut upper = 0u64;
        for failure in system.failures() {
            if failure.root_cause == hpcfail_types::failure::RootCause::Network {
                if failure.node.raw() < 32 {
                    lower += 1;
                } else {
                    upper += 1;
                }
            }
        }
        (lower, upper)
    };

    let (lower_with, upper_with) = count_network_by_half(&with_episodes);
    let (lower_without, upper_without) = count_network_by_half(&without_episodes);
    assert!(
        lower_with > upper_with * 2,
        "episode must skew network failures to nodes 0-31: {lower_with} vs {upper_with}"
    );
    assert!(
        lower_with > lower_without * 2,
        "episode must add failures over the baseline: {lower_with} vs {lower_without}"
    );
    // And the untouched half stays at baseline scale.
    assert!(
        upper_with < lower_without.max(upper_without) * 3 + 30,
        "untouched nodes must stay near baseline: {upper_with}"
    );
}

fn parse_err(text: &str) -> ScenarioError {
    Scenario::parse(text).expect_err("document must be rejected")
}

fn probe(system_fields: &str) -> String {
    format!(
        r#"{{"scenario": "probe", "version": 1, "seed": 1,
            "systems": [{{"id": 3, "template": "smp", "nodes": 8, "days": 30{system_fields}}}]}}"#
    )
}

#[test]
fn rejection_battery_returns_typed_errors() {
    // Malformed JSON.
    assert!(matches!(parse_err("{"), ScenarioError::Json(_)));
    assert!(matches!(parse_err("[1, 2]"), ScenarioError::Schema { .. }));

    // Unknown keys, at every level, with a path.
    match parse_err(
        r#"{"scenario": "x", "version": 1, "seed": 1, "extra": 1,
            "systems": [{"id": 1, "template": "smp", "nodes": 1, "days": 1}]}"#,
    ) {
        ScenarioError::UnknownKey { path, key } => {
            assert_eq!(path, "scenario");
            assert_eq!(key, "extra");
        }
        other => panic!("expected UnknownKey, got {other}"),
    }
    match parse_err(&probe(r#", "turbo": true"#)) {
        ScenarioError::UnknownKey { path, key } => {
            assert_eq!(path, "systems[0]");
            assert_eq!(key, "turbo");
        }
        other => panic!("expected UnknownKey, got {other}"),
    }
    match parse_err(&probe(
        r#", "episodes": [{"days": [1, 2], "nodes": [0, 1],
            "channel": "hardware", "multiplier": 2, "color": "red"}]"#,
    )) {
        ScenarioError::UnknownKey { path, key } => {
            assert_eq!(path, "systems[0].episodes[0]");
            assert_eq!(key, "color");
        }
        other => panic!("expected UnknownKey, got {other}"),
    }

    // Version and structure.
    assert!(matches!(
        parse_err(r#"{"scenario": "x", "version": 2, "seed": 1, "systems": []}"#),
        ScenarioError::Schema { .. }
    ));
    assert!(matches!(
        parse_err(r#"{"scenario": "x", "version": 1, "seed": 1, "systems": []}"#),
        ScenarioError::Schema { .. }
    ));

    // Out-of-range values: each must be a Schema error naming a path.
    let bad_fields = [
        r#", "rates": {"hardware": -0.5}"#,           // negative rate
        r#", "rates": {"hardware": 1e400}"#,          // non-finite rate
        r#", "undetermined_fraction": 1.5"#,          // fraction > 1
        r#", "frailty_shape": 0"#,                    // non-positive shape
        r#", "excitation_scale": -1"#,                // negative scale
        r#", "events": {"chiller": -0.1}"#,           // negative event rate
        r#", "workload": {"users": 0}"#,              // zero users
        r#", "temperature": {"samples_per_day": 0}"#, // zero samples
        // episode day range beyond the observation span
        r#", "episodes": [{"days": [40, 50], "nodes": [0, 1],
             "channel": "hardware", "multiplier": 2}]"#,
        // episode node range beyond the system
        r#", "episodes": [{"days": [1, 2], "nodes": [0, 64],
             "channel": "hardware", "multiplier": 2}]"#,
        // zero multiplier
        r#", "episodes": [{"days": [1, 2], "nodes": [0, 1],
             "channel": "hardware", "multiplier": 0}]"#,
        // unknown channel
        r#", "episodes": [{"days": [1, 2], "nodes": [0, 1],
             "channel": "gremlins", "multiplier": 2}]"#,
    ];
    for fields in bad_fields {
        match parse_err(&probe(fields)) {
            ScenarioError::Schema { path, .. } => {
                assert!(
                    path.starts_with("systems[0]"),
                    "path {path:?} for {fields:?}"
                );
            }
            other => panic!("expected Schema error for {fields:?}, got {other}"),
        }
    }

    // Zero nodes / zero days / duplicate ids at the system level.
    assert!(matches!(
        parse_err(
            r#"{"scenario": "x", "version": 1, "seed": 1,
                "systems": [{"id": 1, "template": "smp", "nodes": 0, "days": 1}]}"#
        ),
        ScenarioError::Schema { .. }
    ));
    assert!(matches!(
        parse_err(
            r#"{"scenario": "x", "version": 1, "seed": 1,
                "systems": [{"id": 1, "template": "smp", "nodes": 1, "days": 0}]}"#
        ),
        ScenarioError::Schema { .. }
    ));
    assert!(matches!(
        parse_err(
            r#"{"scenario": "x", "version": 1, "seed": 1, "systems": [
                {"id": 1, "template": "smp", "nodes": 1, "days": 1},
                {"id": 1, "template": "numa", "nodes": 1, "days": 1}]}"#
        ),
        ScenarioError::Schema { .. }
    ));
    assert!(matches!(
        parse_err(&probe("").replace("\"smp\"", "\"mainframe\"")),
        ScenarioError::Schema { .. }
    ));
}
