//! Self-exciting, type-coupled follow-up-failure machinery.
//!
//! After a failure of root-cause type X on a node, the hazard of type Y
//! on the same node is elevated by `matrix[X][Y] * exp(-age / tau)`;
//! failures on rack peers contribute a scaled-down version of the same
//! kernel. This is the mechanism behind the paper's Section III
//! correlations: every type most strongly predicts itself, and the
//! environment/network/software triple is cross-coupled.

use hpcfail_types::failure::RootCause;

/// Index of a root cause in the excitation matrix.
pub(crate) fn root_index(root: RootCause) -> usize {
    match root {
        RootCause::Environment => 0,
        RootCause::Hardware => 1,
        RootCause::HumanError => 2,
        RootCause::Network => 3,
        RootCause::Software => 4,
        RootCause::Undetermined => 5,
    }
}

/// The 6x6 root-cause excitation matrix: `gain(x, y)` is the day-0
/// boost of channel `y` after a failure of type `x` on the same node.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcitationMatrix {
    gains: [[f64; 6]; 6],
    /// Decay time constant in days.
    pub tau_days: f64,
    /// Fraction of the same-node gain applied to rack peers.
    pub rack_fraction: f64,
}

impl ExcitationMatrix {
    /// The LANL-calibrated default.
    ///
    /// Diagonals dominate (same-type follow-ups are strongest, with
    /// environment and network in the hundreds); environment, network
    /// and software cross-excite each other; hardware mostly
    /// self-excites (hard errors repeat).
    pub fn lanl() -> Self {
        use RootCause::*;
        let mut m = ExcitationMatrix {
            gains: [[0.0; 6]; 6],
            tau_days: 2.0,
            rack_fraction: 0.22,
        };
        let pairs: &[(RootCause, RootCause, f64)] = &[
            // Same-type diagonals, solved from Figure 1(b):
            // weekly P(Y|X) ~ gain * base_Y * sum_d exp(-d/tau).
            (Environment, Environment, 2300.0),
            (Network, Network, 700.0),
            (Software, Software, 48.0),
            (Hardware, Hardware, 45.0),
            (HumanError, HumanError, 60.0),
            (Undetermined, Undetermined, 60.0),
            // The env/net/sw triple cross-excites.
            (Environment, Network, 160.0),
            (Environment, Software, 60.0),
            (Network, Environment, 130.0),
            (Network, Software, 50.0),
            (Software, Environment, 16.0),
            (Software, Network, 16.0),
            // Everything raises the general follow-up risk a little.
            (Environment, Hardware, 14.0),
            (Network, Hardware, 9.0),
            (Software, Hardware, 7.0),
            (Hardware, Software, 8.0),
            (Hardware, Network, 5.0),
            (Hardware, Environment, 5.0),
            (HumanError, Software, 10.0),
            (HumanError, Hardware, 5.0),
            (Undetermined, Hardware, 10.0),
            (Undetermined, Software, 8.0),
            (Hardware, Undetermined, 8.0),
            (Software, Undetermined, 8.0),
        ];
        for &(x, y, g) in pairs {
            m.gains[root_index(x)][root_index(y)] = g;
        }
        m
    }

    /// A matrix with all gains zero (ablation: no follow-up coupling).
    pub fn disabled() -> Self {
        ExcitationMatrix {
            gains: [[0.0; 6]; 6],
            tau_days: 2.0,
            rack_fraction: 0.0,
        }
    }

    /// The day-0 gain of channel `y` after a type-`x` failure.
    pub fn gain(&self, x: RootCause, y: RootCause) -> f64 {
        self.gains[root_index(x)][root_index(y)]
    }

    /// Sets one gain (builder-style, for ablations).
    pub fn set_gain(&mut self, x: RootCause, y: RootCause, gain: f64) -> &mut Self {
        self.gains[root_index(x)][root_index(y)] = gain;
        self
    }

    /// Scales every gain by `factor` (ablation sweeps).
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for row in &mut self.gains {
            for g in row {
                *g *= factor;
            }
        }
        self
    }
}

impl Default for ExcitationMatrix {
    fn default() -> Self {
        ExcitationMatrix::lanl()
    }
}

/// Running excitation state: per-channel accumulated boosts that decay
/// exponentially day over day.
///
/// Instead of keeping a history of recent failures, the state exploits
/// the exponential kernel's memorylessness: each day every accumulator
/// is multiplied by `exp(-1/tau)` and new failures add their gain.
#[derive(Debug, Clone, Default)]
pub struct ExcitationState {
    levels: [f64; 6],
}

impl ExcitationState {
    /// Fresh state with no recent failures.
    pub fn new() -> Self {
        ExcitationState::default()
    }

    /// Advances one day: all levels decay by `exp(-1/tau)`.
    pub fn decay(&mut self, tau_days: f64) {
        let f = (-1.0 / tau_days).exp();
        for l in &mut self.levels {
            *l *= f;
        }
    }

    /// Records a failure of type `x`, boosting every channel per the
    /// matrix (scaled by `scale`; rack peers use the matrix's
    /// `rack_fraction`).
    pub fn record(&mut self, matrix: &ExcitationMatrix, x: RootCause, scale: f64) {
        let row = &matrix.gains[root_index(x)];
        for (l, g) in self.levels.iter_mut().zip(row) {
            *l += g * scale;
        }
    }

    /// Like [`ExcitationState::record`], but only for the inherently
    /// shared failure types — environment, network and software. Used
    /// for system-level coupling, where node-local hardware faults
    /// cannot propagate but a sick switch or file system can.
    pub fn record_shared(&mut self, matrix: &ExcitationMatrix, x: RootCause, scale: f64) {
        if matches!(
            x,
            RootCause::Environment | RootCause::Network | RootCause::Software
        ) {
            self.record(matrix, x, scale);
        }
    }

    /// The current boost of channel `y` (0 = no elevation; the hazard
    /// multiplier is `1 + boost`).
    pub fn boost(&self, y: RootCause) -> f64 {
        self.levels[root_index(y)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RootCause::*;

    #[test]
    fn diagonal_dominates() {
        let m = ExcitationMatrix::lanl();
        for x in RootCause::ALL {
            for y in RootCause::ALL {
                if x != y {
                    assert!(
                        m.gain(x, x) >= m.gain(x, y),
                        "diagonal {x} should dominate {x}->{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn env_net_sw_triple_coupled() {
        let m = ExcitationMatrix::lanl();
        assert!(m.gain(Environment, Network) > m.gain(Environment, HumanError));
        assert!(m.gain(Network, Software) > m.gain(Network, HumanError));
        assert!(m.gain(Software, Environment) > m.gain(Software, HumanError));
    }

    #[test]
    fn state_decay_halves_on_tau_ln2() {
        let m = ExcitationMatrix::lanl();
        let mut s = ExcitationState::new();
        s.record(&m, Hardware, 1.0);
        let before = s.boost(Hardware);
        s.decay(1.0 / (2f64).ln()); // decay factor = 0.5 per day
        assert!((s.boost(Hardware) - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn record_accumulates() {
        let m = ExcitationMatrix::lanl();
        let mut s = ExcitationState::new();
        s.record(&m, Network, 1.0);
        s.record(&m, Network, 1.0);
        assert!((s.boost(Network) - 2.0 * m.gain(Network, Network)).abs() < 1e-9);
        // Cross-channel boost also present.
        assert!(s.boost(Software) > 0.0);
        // Unrelated channel untouched by the zero gain.
        assert!((s.boost(HumanError) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_matrix_produces_no_boost() {
        let m = ExcitationMatrix::disabled();
        let mut s = ExcitationState::new();
        for x in RootCause::ALL {
            s.record(&m, x, 1.0);
        }
        for y in RootCause::ALL {
            assert_eq!(s.boost(y), 0.0);
        }
    }

    #[test]
    fn scale_and_set_gain() {
        let mut m = ExcitationMatrix::lanl();
        let base = m.gain(Hardware, Hardware);
        m.scale(0.5);
        assert!((m.gain(Hardware, Hardware) - base / 2.0).abs() < 1e-12);
        m.set_gain(Hardware, Hardware, 7.0);
        assert_eq!(m.gain(Hardware, Hardware), 7.0);
    }
}
