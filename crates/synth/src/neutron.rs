//! Cosmic-ray neutron-flux curve.
//!
//! The paper uses 1-minute neutron counts from the Climax, Colorado
//! monitor, aggregated to monthly means spanning most of a solar cycle
//! (monthly averages roughly 3400-4600 counts/minute). This module
//! synthesizes an equivalent curve: an 11-year sinusoid (the solar
//! cycle modulates galactic cosmic rays), short Forbush-decrease
//! disturbances after flares, and sampling noise.

use crate::spec::NeutronSpec;
use hpcfail_stats::dist::{Distribution, Normal};
use hpcfail_types::prelude::*;
use rand::Rng;

/// Deterministic (noise-free) flux level at `day`, before disturbances.
pub fn base_flux(spec: &NeutronSpec, day: f64) -> f64 {
    let phase = 2.0 * std::f64::consts::PI * day / spec.cycle_days;
    spec.mean_counts + spec.cycle_amplitude * phase.sin()
}

/// Generates the sample series over `days` days.
pub fn generate_neutron<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &NeutronSpec,
    days: u32,
) -> Vec<NeutronSample> {
    let noise = Normal::new(0.0, spec.noise_sigma.max(1e-9));
    let per_day = spec.samples_per_day.max(1);
    let step = 86_400 / per_day as i64;

    // Forbush decreases: sharp drops recovering over ~10 days.
    let flare_rate = spec.flares_per_year / 365.25;
    let mut flares: Vec<(f64, f64)> = Vec::new(); // (day, depth)
    for day in 0..days {
        if rng.gen_range(0.0..1.0) < flare_rate {
            flares.push((day as f64, rng.gen_range(0.03..0.10)));
        }
    }

    let mut out = Vec::with_capacity(days as usize * per_day as usize);
    for day in 0..days {
        for k in 0..per_day {
            let t = day as i64 * 86_400 + k as i64 * step;
            let d = day as f64 + k as f64 / per_day as f64;
            let mut flux = base_flux(spec, d);
            for &(fd, depth) in &flares {
                let age = d - fd;
                if (0.0..30.0).contains(&age) {
                    flux *= 1.0 - depth * (-age / 10.0).exp();
                }
            }
            flux += noise.sample(rng);
            out.push(NeutronSample {
                time: Timestamp::from_seconds(t),
                counts_per_minute: flux.max(0.0),
            });
        }
    }
    out
}

/// Monthly (30-day) average counts per minute from a sample series:
/// the statistic Figure 14's x-axis uses.
pub fn monthly_averages(samples: &[NeutronSample]) -> Vec<(i64, f64)> {
    let mut sums: std::collections::BTreeMap<i64, (f64, u64)> = std::collections::BTreeMap::new();
    for s in samples {
        let month = s.time.month_index();
        let e = sums.entry(month).or_insert((0.0, 0));
        e.0 += s.counts_per_minute;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(m, (sum, n))| (m, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flux_stays_in_climax_range() {
        let spec = NeutronSpec::default();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = generate_neutron(&mut rng, &spec, 3300);
        assert_eq!(samples.len(), 3300 * 24);
        for s in &samples {
            assert!(
                s.counts_per_minute > 2500.0 && s.counts_per_minute < 5000.0,
                "flux {} out of range",
                s.counts_per_minute
            );
        }
    }

    #[test]
    fn solar_cycle_visible_in_monthly_means() {
        let spec = NeutronSpec::default();
        let mut rng = StdRng::seed_from_u64(4);
        let samples = generate_neutron(&mut rng, &spec, 3300);
        let monthly = monthly_averages(&samples);
        assert_eq!(monthly.len(), 110);
        let min = monthly
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        let max = monthly.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        // The sinusoid's swing should survive averaging.
        assert!(
            max - min > 0.8 * 2.0 * spec.cycle_amplitude * 0.8,
            "swing {}",
            max - min
        );
    }

    #[test]
    fn base_flux_is_periodic() {
        let spec = NeutronSpec::default();
        let a = base_flux(&spec, 100.0);
        let b = base_flux(&spec, 100.0 + spec.cycle_days);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn monthly_average_bucketing() {
        let samples = vec![
            NeutronSample {
                time: Timestamp::from_days(0.0),
                counts_per_minute: 100.0,
            },
            NeutronSample {
                time: Timestamp::from_days(29.0),
                counts_per_minute: 200.0,
            },
            NeutronSample {
                time: Timestamp::from_days(31.0),
                counts_per_minute: 400.0,
            },
        ];
        let monthly = monthly_averages(&samples);
        assert_eq!(monthly, vec![(0, 150.0), (1, 400.0)]);
    }
}
