//! Synthetic LANL-like HPC fleet generator.
//!
//! The real study runs on nine years of failure, usage, layout,
//! temperature and neutron-flux data from ten LANL clusters — data that
//! cannot ship with this repository. This crate generates a synthetic
//! fleet with the same schema and, crucially, the same *generative
//! mechanisms* the paper infers:
//!
//! - per-node failure hazards with gamma-distributed node frailty;
//! - self-exciting, type-coupled follow-up failures (a failure of type X
//!   raises the short-term hazard of type Y on the same node);
//! - rack-level coupling through shared power/cooling events;
//! - a login/launch role for node 0 (elevated environment, network and
//!   software failure rates, highest utilization);
//! - cluster-level power events (outages, spikes, UPS, chiller failures)
//!   that elevate specific hardware-component and storage-software
//!   hazards for the following month, and trigger unscheduled
//!   maintenance;
//! - node-local degradation cascades after power-supply and fan failures
//!   (including temperature excursions);
//! - a solar-cycle neutron flux modulating the *soft* fraction of CPU
//!   errors while DRAM outages stay hard-error-dominated;
//! - a job/user workload model with heavy-tailed per-user load and
//!   per-user risk multipliers.
//!
//! Every analysis in `hpcfail-core` then *re-discovers* these phenomena
//! from the generated records, rather than reading back constants.
//!
//! Generation is deterministic for a given `(spec, seed)` pair.
//!
//! # Examples
//!
//! ```
//! use hpcfail_synth::prelude::*;
//!
//! let fleet = FleetSpec::demo().generate(42);
//! let again = FleetSpec::demo().generate(42);
//! assert_eq!(
//!     fleet.trace().total_failures(),
//!     again.trace().total_failures(),
//! );
//! let store = fleet.into_store();
//! assert!(store.total_failures() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod events;
pub mod excitation;
pub mod neutron;
pub mod scenario;
pub mod sim;
pub mod spec;
pub mod workload;

pub use scenario::Scenario;
pub use sim::GeneratedFleet;
pub use spec::{FleetSpec, SystemSpec};

/// The most frequently used items.
pub mod prelude {
    pub use crate::scenario::{Scenario, ScenarioError};
    pub use crate::sim::GeneratedFleet;
    pub use crate::spec::{FleetSpec, SystemSpec};
}
