//! Seed-deterministic fault injection for CSV traces.
//!
//! Robustness claims about lenient ingestion are only testable if the
//! damage is precisely known. This module mutates clean CSV bytes in
//! the ways real operational logs go wrong — torn final lines from
//! truncated transfers, swapped fields from schema drift, stray bytes
//! from re-encoding, duplicated and re-ordered records from merge
//! scripts, headers from the wrong file — and reports **exactly** which
//! output lines were damaged, so a test can assert the reader
//! quarantines those lines and nothing else.
//!
//! Every mutation is deterministic for a `(input, target, kind, seed)`
//! tuple: the same corruption can be replayed from a CI failure log.
//!
//! ```
//! use hpcfail_synth::corrupt::{corrupt_csv, MutationKind, TargetCsv};
//!
//! let clean = b"system,node,time,root_cause,sub_cause,downtime\n\
//!               20,0,1000,HW,HW:CPU,3600\n";
//! let (bytes, report) =
//!     corrupt_csv(clean, TargetCsv::Failures, MutationKind::GarbageUtf8, 7);
//! assert!(report.changed);
//! assert_eq!(report.damaged_lines, vec![2]);
//! assert!(std::str::from_utf8(&bytes).is_err());
//! ```

use hpcfail_store::csv::headers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// The ways a CSV file can be damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// The final record is cut mid-field and the trailing newline
    /// dropped, as if the file transfer was interrupted.
    TornFinalLine,
    /// Two columns of one record are exchanged (or a separator deleted
    /// on schemas where any column swap still parses), as if written by
    /// a tool with a different column order.
    SwapFields,
    /// A few bytes of one record are overwritten with `0xFF`, which is
    /// never valid UTF-8.
    GarbageUtf8,
    /// One record is repeated verbatim on the next line.
    DuplicateRecord,
    /// The timestamps of two same-system records are exchanged, making
    /// the file locally non-monotone while every line still parses.
    ShuffleTimestamps,
    /// Line 1 is replaced with the header of a *different* trace file.
    ForeignHeader,
}

impl MutationKind {
    /// Every mutation kind, for exhaustive test sweeps.
    pub const ALL: [MutationKind; 6] = [
        MutationKind::TornFinalLine,
        MutationKind::SwapFields,
        MutationKind::GarbageUtf8,
        MutationKind::DuplicateRecord,
        MutationKind::ShuffleTimestamps,
        MutationKind::ForeignHeader,
    ];

    /// The command-line label (kebab-case).
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::TornFinalLine => "torn-final-line",
            MutationKind::SwapFields => "swap-fields",
            MutationKind::GarbageUtf8 => "garbage-utf8",
            MutationKind::DuplicateRecord => "duplicate-record",
            MutationKind::ShuffleTimestamps => "shuffle-timestamps",
            MutationKind::ForeignHeader => "foreign-header",
        }
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for MutationKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        MutationKind::ALL
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = MutationKind::ALL.iter().map(|k| k.label()).collect();
                format!("unknown mutation kind {s:?} (expected one of {known:?})")
            })
    }
}

/// Which trace file's schema the bytes follow. Mutations are
/// schema-aware so every "damaging" kind is guaranteed to actually
/// break parsing (a random column swap on an all-numeric schema can
/// produce a different but valid record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetCsv {
    /// `failures.csv`.
    Failures,
    /// `jobs.csv`.
    Jobs,
    /// `temperatures.csv`.
    Temperatures,
    /// `maintenance.csv`.
    Maintenance,
    /// `neutron.csv`.
    Neutron,
    /// `layout.csv`.
    Layout,
    /// `systems.csv`.
    Systems,
}

impl TargetCsv {
    /// Every target, in the order foreign headers are searched.
    pub const ALL: [TargetCsv; 7] = [
        TargetCsv::Failures,
        TargetCsv::Jobs,
        TargetCsv::Temperatures,
        TargetCsv::Maintenance,
        TargetCsv::Neutron,
        TargetCsv::Layout,
        TargetCsv::Systems,
    ];

    /// The file name this schema is stored under.
    pub fn file_name(self) -> &'static str {
        match self {
            TargetCsv::Failures => "failures.csv",
            TargetCsv::Jobs => "jobs.csv",
            TargetCsv::Temperatures => "temperatures.csv",
            TargetCsv::Maintenance => "maintenance.csv",
            TargetCsv::Neutron => "neutron.csv",
            TargetCsv::Layout => "layout.csv",
            TargetCsv::Systems => "systems.csv",
        }
    }

    /// Resolves a file name back to its schema.
    pub fn from_file_name(name: &str) -> Option<TargetCsv> {
        TargetCsv::ALL.into_iter().find(|t| t.file_name() == name)
    }

    /// The expected header line.
    pub fn header(self) -> &'static str {
        match self {
            TargetCsv::Failures => headers::FAILURES,
            TargetCsv::Jobs => headers::JOBS,
            TargetCsv::Temperatures => headers::TEMPERATURES,
            TargetCsv::Maintenance => headers::MAINTENANCE,
            TargetCsv::Neutron => headers::NEUTRON,
            TargetCsv::Layout => headers::LAYOUT,
            TargetCsv::Systems => headers::SYSTEMS,
        }
    }

    /// Number of columns in the schema.
    pub fn field_count(self) -> usize {
        self.header().split(',').count()
    }

    /// Columns whose exchange is guaranteed to break parsing (a numeric
    /// column swapped with a label column). `None` means no such pair
    /// exists and [`MutationKind::SwapFields`] deletes a separator
    /// instead.
    fn swap_cols(self) -> Option<(usize, usize)> {
        match self {
            // system (u16) <-> root_cause label.
            TargetCsv::Failures => Some((0, 3)),
            // nodes (u32) <-> hardware class label.
            TargetCsv::Systems => Some((2, 4)),
            _ => None,
        }
    }

    /// The timestamp column, if the schema has one.
    fn time_col(self) -> Option<usize> {
        match self {
            TargetCsv::Failures | TargetCsv::Temperatures | TargetCsv::Maintenance => Some(2),
            TargetCsv::Jobs => Some(3),
            TargetCsv::Neutron => Some(0),
            TargetCsv::Layout | TargetCsv::Systems => None,
        }
    }

    /// The system-id column, if the schema has one. Timestamp shuffles
    /// stay within one system so the damage is observable as a
    /// same-system ordering inversion.
    fn system_col(self) -> Option<usize> {
        match self {
            TargetCsv::Failures
            | TargetCsv::Jobs
            | TargetCsv::Temperatures
            | TargetCsv::Maintenance
            | TargetCsv::Layout => Some(0),
            TargetCsv::Neutron | TargetCsv::Systems => None,
        }
    }
}

impl fmt::Display for TargetCsv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.file_name())
    }
}

/// Exactly what a corruption did, for tests to assert against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionReport {
    /// The mutation applied.
    pub kind: MutationKind,
    /// The seed it was applied under.
    pub seed: u64,
    /// 1-based line numbers **in the output bytes** that a lenient
    /// reader must quarantine — and nothing else.
    pub damaged_lines: Vec<usize>,
    /// `true` if the mutation introduced a consecutive duplicate that a
    /// recovering reader should drop (records stay intact).
    pub expect_duplicates: bool,
    /// `true` if the mutation re-ordered timestamps (records stay
    /// intact but the quality audit should flag the inversion).
    pub expect_out_of_order: bool,
    /// `false` if the input offered no opportunity for this mutation
    /// (e.g. torn final line on a header-only file); the output equals
    /// the input.
    pub changed: bool,
}

/// A file split into lines with its trailing-newline convention
/// remembered, so unmutated parts are reassembled byte-identically.
struct Lines {
    lines: Vec<Vec<u8>>,
    trailing_newline: bool,
}

impl Lines {
    fn split(input: &[u8]) -> Lines {
        let trailing_newline = input.last() == Some(&b'\n');
        let mut lines: Vec<Vec<u8>> = input.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
        if trailing_newline {
            lines.pop();
        }
        Lines {
            lines,
            trailing_newline,
        }
    }

    fn join(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, line) in self.lines.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(line);
        }
        if self.trailing_newline && !self.lines.is_empty() {
            out.push(b'\n');
        }
        out
    }

    /// Indices of data lines: non-blank, not a header occurrence the
    /// reader would skip.
    fn data_indices(&self, target: TargetCsv) -> Vec<usize> {
        let header = target.header().as_bytes();
        let header_anywhere = matches!(target, TargetCsv::Layout);
        self.lines
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                !l.is_empty() && !(l.as_slice() == header && (*i == 0 || header_anywhere))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

fn field_ranges(line: &[u8]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0;
    for (i, &b) in line.iter().enumerate() {
        if b == b',' {
            ranges.push((start, i));
            start = i + 1;
        }
    }
    ranges.push((start, line.len()));
    ranges
}

fn unchanged(kind: MutationKind, seed: u64) -> CorruptionReport {
    CorruptionReport {
        kind,
        seed,
        damaged_lines: Vec::new(),
        expect_duplicates: false,
        expect_out_of_order: false,
        changed: false,
    }
}

/// Applies one mutation to clean CSV bytes, returning the corrupted
/// bytes and a [`CorruptionReport`] naming the damage.
///
/// Deterministic for a given `(input, target, kind, seed)`. If the
/// input offers no opportunity for the mutation (no data lines, no
/// same-system timestamp pair, ...), the bytes come back unchanged and
/// the report says `changed: false` — callers decide whether that is a
/// test skip or a failure.
pub fn corrupt_csv(
    input: &[u8],
    target: TargetCsv,
    kind: MutationKind,
    seed: u64,
) -> (Vec<u8>, CorruptionReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut file = Lines::split(input);
    let data = file.data_indices(target);
    let mut report = unchanged(kind, seed);

    match kind {
        MutationKind::TornFinalLine => {
            let Some(&last) = data.last() else {
                return (input.to_vec(), report);
            };
            let line = &mut file.lines[last];
            // Cut inside the first field so the shortened line can never
            // be a valid, shorter record: the field count is wrong.
            let first_field_end = line.iter().position(|&b| b == b',').unwrap_or(line.len());
            let keep = if first_field_end == 0 {
                0
            } else {
                rng.gen_range(1..=first_field_end)
            };
            line.truncate(keep);
            if line.is_empty() {
                // A fully torn line would read as blank (skipped, not
                // quarantined); keep one byte so the damage is visible.
                line.push(b'?');
            }
            file.lines.truncate(last + 1);
            file.trailing_newline = false;
            report.damaged_lines = vec![last + 1];
            report.changed = true;
        }
        MutationKind::SwapFields => {
            if data.is_empty() {
                return (input.to_vec(), report);
            }
            let idx = data[rng.gen_range(0..data.len())];
            let line = &mut file.lines[idx];
            let ranges = field_ranges(line);
            if let Some((a, b)) = target.swap_cols() {
                if ranges.len() != target.field_count() {
                    return (input.to_vec(), report);
                }
                let fa = line[ranges[a].0..ranges[a].1].to_vec();
                let fb = line[ranges[b].0..ranges[b].1].to_vec();
                let mut swapped = Vec::with_capacity(line.len());
                for (i, &(s, e)) in ranges.iter().enumerate() {
                    if i > 0 {
                        swapped.push(b',');
                    }
                    if i == a {
                        swapped.extend_from_slice(&fb);
                    } else if i == b {
                        swapped.extend_from_slice(&fa);
                    } else {
                        swapped.extend_from_slice(&line[s..e]);
                    }
                }
                *line = swapped;
            } else {
                // No label/number pair to exchange: delete a separator,
                // which always breaks the field count.
                let commas: Vec<usize> = line
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b == b',')
                    .map(|(i, _)| i)
                    .collect();
                if commas.is_empty() {
                    return (input.to_vec(), report);
                }
                line.remove(commas[rng.gen_range(0..commas.len())]);
            }
            report.damaged_lines = vec![idx + 1];
            report.changed = true;
        }
        MutationKind::GarbageUtf8 => {
            if data.is_empty() {
                return (input.to_vec(), report);
            }
            let idx = data[rng.gen_range(0..data.len())];
            let line = &mut file.lines[idx];
            if line.is_empty() {
                return (input.to_vec(), report);
            }
            let at = rng.gen_range(0..line.len());
            let n = rng.gen_range(1..=3usize).min(line.len() - at);
            for b in &mut line[at..at + n] {
                *b = 0xFF;
            }
            report.damaged_lines = vec![idx + 1];
            report.changed = true;
        }
        MutationKind::DuplicateRecord => {
            if data.is_empty() {
                return (input.to_vec(), report);
            }
            let idx = data[rng.gen_range(0..data.len())];
            let copy = file.lines[idx].clone();
            file.lines.insert(idx + 1, copy);
            report.expect_duplicates = true;
            report.changed = true;
        }
        MutationKind::ShuffleTimestamps => {
            let (Some(time_col), system_col) = (target.time_col(), target.system_col()) else {
                return (input.to_vec(), report);
            };
            // Candidate pairs: same system, earlier line strictly older
            // — swapping guarantees at least one adjacent inversion in
            // that system's file-order subsequence.
            let parsed: Vec<(usize, Vec<u8>, i64)> = data
                .iter()
                .filter_map(|&i| {
                    let line = &file.lines[i];
                    let ranges = field_ranges(line);
                    let time = ranges.get(time_col)?;
                    let t: i64 = std::str::from_utf8(&line[time.0..time.1])
                        .ok()?
                        .trim()
                        .parse()
                        .ok()?;
                    let sys = match system_col {
                        Some(c) => {
                            let r = ranges.get(c)?;
                            line[r.0..r.1].to_vec()
                        }
                        None => Vec::new(),
                    };
                    Some((i, sys, t))
                })
                .collect();
            let mut pairs = Vec::new();
            for (pi, a) in parsed.iter().enumerate() {
                for b in parsed.iter().skip(pi + 1) {
                    if a.1 == b.1 && a.2 < b.2 {
                        pairs.push((a.0, b.0));
                    }
                }
            }
            if pairs.is_empty() {
                return (input.to_vec(), report);
            }
            let (i, j) = pairs[rng.gen_range(0..pairs.len())];
            let ri = field_ranges(&file.lines[i])[time_col];
            let rj = field_ranges(&file.lines[j])[time_col];
            let ti = file.lines[i][ri.0..ri.1].to_vec();
            let tj = file.lines[j][rj.0..rj.1].to_vec();
            file.lines[i].splice(ri.0..ri.1, tj);
            file.lines[j].splice(rj.0..rj.1, ti);
            report.expect_out_of_order = true;
            report.changed = true;
        }
        MutationKind::ForeignHeader => {
            if file.lines.is_empty() || file.lines[0] != target.header().as_bytes() {
                return (input.to_vec(), report);
            }
            let foreign = TargetCsv::ALL
                .into_iter()
                .find(|t| t.field_count() != target.field_count())
                .map(|t| t.header())
                .unwrap_or(headers::SYSTEMS);
            file.lines[0] = foreign.as_bytes().to_vec();
            // The impostor header no longer matches, so the reader
            // parses it as a record and fails on the field count.
            report.damaged_lines = vec![1];
            report.changed = true;
        }
    }
    (file.join(), report)
}

/// Corrupts a trace file in place. The target schema is inferred from
/// the file name.
///
/// # Errors
///
/// I/O failures, or an unrecognized file name.
pub fn corrupt_file<P: AsRef<std::path::Path>>(
    path: P,
    kind: MutationKind,
    seed: u64,
) -> std::io::Result<CorruptionReport> {
    let path = path.as_ref();
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    let target = TargetCsv::from_file_name(name).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{name:?} is not a recognized trace file"),
        )
    })?;
    let input = std::fs::read(path)?;
    let (bytes, report) = corrupt_csv(&input, target, kind, seed);
    std::fs::write(path, bytes)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "system,node,time,root_cause,sub_cause,downtime\n\
                         20,0,1000,HW,HW:CPU,3600\n\
                         20,5,2000,ENV,ENV:UPS,\n\
                         20,7,3000,UNDET,-,\n";

    #[test]
    fn deterministic_for_a_seed() {
        for kind in MutationKind::ALL {
            let (a, ra) = corrupt_csv(CLEAN.as_bytes(), TargetCsv::Failures, kind, 9);
            let (b, rb) = corrupt_csv(CLEAN.as_bytes(), TargetCsv::Failures, kind, 9);
            assert_eq!(a, b, "{kind}");
            assert_eq!(ra, rb, "{kind}");
            assert!(ra.changed, "{kind} found an opportunity in CLEAN");
        }
    }

    #[test]
    fn torn_final_line_drops_newline_and_breaks_last_record() {
        let (bytes, report) = corrupt_csv(
            CLEAN.as_bytes(),
            TargetCsv::Failures,
            MutationKind::TornFinalLine,
            3,
        );
        assert_ne!(bytes.last(), Some(&b'\n'));
        assert_eq!(report.damaged_lines, vec![4]);
        let text = String::from_utf8(bytes).unwrap();
        let last = text.lines().last().unwrap();
        assert!(
            last.split(',').count() < 6,
            "torn line {last:?} lost fields"
        );
    }

    #[test]
    fn swap_fields_exchanges_system_and_cause() {
        let (bytes, report) = corrupt_csv(
            CLEAN.as_bytes(),
            TargetCsv::Failures,
            MutationKind::SwapFields,
            5,
        );
        let text = String::from_utf8(bytes).unwrap();
        let damaged = text.lines().nth(report.damaged_lines[0] - 1).unwrap();
        let fields: Vec<&str> = damaged.split(',').collect();
        assert!(
            fields[0].parse::<u16>().is_err(),
            "system now {:?}",
            fields[0]
        );
    }

    #[test]
    fn garbage_is_never_valid_utf8() {
        for seed in 0..20 {
            let (bytes, report) = corrupt_csv(
                CLEAN.as_bytes(),
                TargetCsv::Failures,
                MutationKind::GarbageUtf8,
                seed,
            );
            assert!(report.changed);
            assert!(std::str::from_utf8(&bytes).is_err(), "seed {seed}");
        }
    }

    #[test]
    fn duplicate_is_adjacent_and_verbatim() {
        let (bytes, report) = corrupt_csv(
            CLEAN.as_bytes(),
            TargetCsv::Failures,
            MutationKind::DuplicateRecord,
            1,
        );
        assert!(report.expect_duplicates);
        assert!(report.damaged_lines.is_empty(), "no line needs quarantine");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.windows(2).any(|w| w[0] == w[1]));
    }

    #[test]
    fn shuffle_creates_an_inversion_without_breaking_parses() {
        let (bytes, report) = corrupt_csv(
            CLEAN.as_bytes(),
            TargetCsv::Failures,
            MutationKind::ShuffleTimestamps,
            2,
        );
        assert!(report.expect_out_of_order);
        let text = String::from_utf8(bytes).unwrap();
        let times: Vec<i64> = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).any(|w| w[0] > w[1]), "times {times:?}");
    }

    #[test]
    fn foreign_header_replaces_line_one() {
        let (bytes, report) = corrupt_csv(
            CLEAN.as_bytes(),
            TargetCsv::Failures,
            MutationKind::ForeignHeader,
            0,
        );
        assert_eq!(report.damaged_lines, vec![1]);
        let text = String::from_utf8(bytes).unwrap();
        let first = text.lines().next().unwrap();
        assert_ne!(first, headers::FAILURES);
        assert_ne!(first.split(',').count(), 6, "field count must differ");
    }

    #[test]
    fn hopeless_inputs_come_back_unchanged() {
        let header_only = format!("{}\n", headers::FAILURES);
        for kind in [
            MutationKind::TornFinalLine,
            MutationKind::SwapFields,
            MutationKind::GarbageUtf8,
            MutationKind::DuplicateRecord,
            MutationKind::ShuffleTimestamps,
        ] {
            let (bytes, report) =
                corrupt_csv(header_only.as_bytes(), TargetCsv::Failures, kind, 11);
            assert!(!report.changed, "{kind}");
            assert_eq!(bytes, header_only.as_bytes(), "{kind}");
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in MutationKind::ALL {
            assert_eq!(kind.label().parse::<MutationKind>().unwrap(), kind);
        }
        assert!("gremlins".parse::<MutationKind>().is_err());
    }
}
