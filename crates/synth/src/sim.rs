//! The day-level hazard simulation producing complete system traces.
//!
//! For every node and day, each root-cause channel's hazard is the
//! product of: its base rate, the node's gamma frailty, the node-0
//! login-role multiplier, a usage term from the job log, the
//! self-excitation boost from recent failures on this node and its rack,
//! and (for hardware/software sub-channels) any active event modifiers.
//! Failure counts are Poisson draws; each failure picks its sub-cause
//! from the (possibly elevated) channel mix.

use crate::events::{
    component_rearm, fan_cascade, generate_events, psu_cascade, ClusterEvent, ClusterEventKind,
    Modifier, ModifierTarget,
};
use crate::excitation::{ExcitationMatrix, ExcitationState};
use crate::neutron::{base_flux, generate_neutron};
use crate::spec::{hw_component_shares, sw_cause_shares, FleetSpec, SystemSpec};
use crate::workload::{accumulate_usage, generate_workload, NodeDayUsage};
use hpcfail_stats::dist::{Distribution, GammaDist, LogNormal, Normal, Poisson};
use hpcfail_store::trace::{SystemTraceBuilder, Trace};
use hpcfail_types::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mechanism toggles for ablation studies.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// The follow-up-failure coupling matrix.
    pub excitation: ExcitationMatrix,
    /// `false` forces every node's frailty to 1 (homogeneous nodes).
    pub frailty: bool,
    /// `false` strips node 0's login-node role.
    pub node0_role: bool,
    /// `false` disables cluster power/cooling events.
    pub cluster_events: bool,
    /// `false` removes the usage term from the hazard.
    pub usage_effect: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            excitation: ExcitationMatrix::lanl(),
            frailty: true,
            node0_role: true,
            cluster_events: true,
            usage_effect: true,
        }
    }
}

/// A generated fleet, ready to be analyzed.
#[derive(Debug, Clone)]
pub struct GeneratedFleet {
    trace: Trace,
}

impl GeneratedFleet {
    /// The generated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the fleet, returning the trace store.
    pub fn into_store(self) -> Trace {
        self.trace
    }
}

impl FleetSpec {
    /// Generates the fleet with default mechanisms. Deterministic for a
    /// given `(spec, seed)`.
    pub fn generate(&self, seed: u64) -> GeneratedFleet {
        self.generate_with(seed, &SimOptions::default())
    }

    /// Generates the fleet with explicit mechanism toggles (ablations).
    pub fn generate_with(&self, seed: u64, options: &SimOptions) -> GeneratedFleet {
        let _span = hpcfail_obs::span("synth.generate");
        hpcfail_obs::counter("synth.fleets_generated").inc();
        let mut trace = Trace::new();
        let max_days = self.systems.iter().map(|s| s.days).max().unwrap_or(0);
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x6e65_7574_726f_6e73);
            trace.set_neutron_samples(generate_neutron(&mut rng, &self.neutron, max_days));
        }
        for spec in &self.systems {
            // Independent stream per system: system ordering never
            // perturbs another system's randomness.
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_add(0x9e37_79b9_7f4a_7c15)
                    .wrapping_mul(u64::from(spec.id) + 1),
            );
            let system = simulate_system(&mut rng, spec, &self.neutron, options);
            trace.insert_system(system);
        }
        GeneratedFleet { trace }
    }
}

/// Per-node mutable simulation state.
struct NodeState {
    frailty: f64,
    excitation: ExcitationState,
    modifiers: Vec<Modifier>,
    /// Temperature excursions: (first_day, last_day, delta °C).
    excursions: Vec<(u32, u32, f64)>,
    /// The most recent environment problem seen by this node, so
    /// excited follow-up environment failures carry the right
    /// sub-cause (aftershocks of an outage are outage records, not
    /// "other environment").
    recent_env: Option<(u32, EnvironmentCause)>,
    /// Per-node benign hot-spot rate (machine-room geography).
    benign_excursion_rate: f64,
}

const NODES_PER_RACK: u32 = 5;

fn build_layout(nodes: u32) -> MachineLayout {
    (0..nodes)
        .map(|n| {
            let rack = n / NODES_PER_RACK;
            (
                NodeId::new(n),
                NodeLocation {
                    rack: RackId::new(rack as u16),
                    position_in_rack: (n % NODES_PER_RACK + 1) as u8,
                    room_row: (rack / 10) as u16,
                    room_col: (rack % 10) as u16,
                },
            )
        })
        .collect()
}

/// Simulates one system.
fn simulate_system<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &SystemSpec,
    neutron: &crate::spec::NeutronSpec,
    options: &SimOptions,
) -> hpcfail_store::trace::SystemTrace {
    let config = spec.to_config();
    let mut builder = SystemTraceBuilder::new(config);
    let system = SystemId::new(spec.id);
    let nodes = spec.nodes;
    let days = spec.days;
    let matrix = &options.excitation;

    if spec.has_layout {
        builder.layout(build_layout(nodes));
    }

    // Node frailties.
    let frailty_dist = GammaDist::unit_mean(spec.frailty_shape);
    let mut states: Vec<NodeState> = (0..nodes)
        .map(|_| NodeState {
            frailty: if options.frailty {
                frailty_dist.sample(rng).max(0.05)
            } else {
                1.0
            },
            excitation: ExcitationState::new(),
            modifiers: Vec::new(),
            excursions: Vec::new(),
            recent_env: None,
            benign_excursion_rate: rng.gen_range(0.003..0.013),
        })
        .collect();
    // Systems with a layout couple within racks; NUMA boxes without a
    // layout share one *system-level* state instead (a sick switch or
    // file system touches every node).
    let racks = if spec.has_layout {
        nodes.div_ceil(NODES_PER_RACK) as usize
    } else {
        1
    };
    let mut rack_states: Vec<ExcitationState> =
        (0..racks).map(|_| ExcitationState::new()).collect();

    // Cluster events.
    let events: Vec<ClusterEvent> = if options.cluster_events {
        generate_events(rng, &spec.events, nodes, days)
    } else {
        Vec::new()
    };
    let mut event_cursor = 0usize;
    // The system's most recent environment problem, for labeling
    // excited env follow-ups on nodes that did not log the event
    // themselves.
    let mut system_recent_env: Option<(u32, EnvironmentCause)> = None;

    // Workload.
    let (workload, usage) = match &spec.workload {
        Some(wspec) => {
            let w = generate_workload(rng, wspec, system, nodes, spec.procs_per_node, days);
            let usage = accumulate_usage(&w, nodes, days);
            (Some(w), usage)
        }
        None => (None, NodeDayUsage::empty()),
    };

    // Channel shares.
    let hw_shares = hw_component_shares();
    let sw_shares = sw_cause_shares();
    let flux_mean = neutron.mean_counts;

    let temp_noise = spec
        .temperature
        .map(|t| Normal::new(0.0, t.noise_sigma.max(1e-9)));
    let mut temperatures: Vec<TemperatureSample> = Vec::new();
    let mut maintenance: Vec<MaintenanceRecord> = Vec::new();
    let mut failures: Vec<FailureRecord> = Vec::new();

    for day in 0..days {
        // Decay excitation once per day.
        for s in &mut states {
            s.excitation.decay(matrix.tau_days);
        }
        for r in &mut rack_states {
            r.decay(matrix.tau_days);
        }

        // Apply today's cluster events.
        while event_cursor < events.len() && events[event_cursor].day == day {
            let event = events[event_cursor];
            event_cursor += 1;
            system_recent_env = Some((day, event.kind.env_cause()));
            apply_cluster_event(
                rng,
                &event,
                spec,
                options,
                matrix,
                &mut states,
                &mut rack_states,
                &mut failures,
                &mut maintenance,
            );
        }

        // Cosmic-ray modulation of the soft CPU-error fraction. The
        // coupling is amplified (x5) so the monthly-binned Figure 14
        // trend is resolvable at synthetic-fleet size; see DESIGN.md.
        let flux = base_flux(neutron, day as f64);
        let flux_factor = (1.0 + 5.0 * (flux / flux_mean - 1.0)).max(0.0);
        let cpu_scale = (1.0 - spec.cpu_soft_fraction) + spec.cpu_soft_fraction * flux_factor;

        for node in 0..nodes {
            let state = &mut states[node as usize];
            // Event modifiers -> per-component multipliers.
            state.modifiers.retain(|m| !m.expired(day));
            let mut hw_mult = [1.0f64; 10];
            let mut sw_mult = [1.0f64; 6];
            for m in &state.modifiers {
                // Repeated events re-arm the elevation (max), they do
                // not stack multiplicatively — a component already at
                // 46x risk does not become 2000x after a second event.
                let f = m.multiplier(day);
                match m.target {
                    ModifierTarget::Hw(c) => {
                        // A modifier naming a component outside the
                        // share table has nothing to elevate; skip it
                        // rather than abort the simulation.
                        let Some(i) = hw_shares.iter().position(|(hc, _)| *hc == c) else {
                            continue;
                        };
                        hw_mult[i] = hw_mult[i].max(f);
                    }
                    ModifierTarget::Sw(c) => {
                        let Some(i) = sw_shares.iter().position(|(sc, _)| *sc == c) else {
                            continue;
                        };
                        sw_mult[i] = sw_mult[i].max(f);
                    }
                }
            }

            // Common multipliers (apply to the base hazard only). The
            // risk-excess term is clamped so a login node carrying many
            // concurrent jobs saturates instead of multiplying away.
            let usage_mult = if options.usage_effect {
                1.0 + 0.6 * usage.busy_fraction(node, day)
                    + 1.3 * usage.risk_excess(node, day).clamp(-0.5, 2.0)
            } else {
                1.0
            }
            .clamp(0.1, 4.0);
            let is_node0 = node == 0 && options.node0_role;
            let rack = if spec.has_layout {
                (node / NODES_PER_RACK) as usize
            } else {
                0
            };
            let common = state.frailty * usage_mult;

            // Scenario episodes: scripted per-channel elevations over a
            // day window and node range. With no episodes every factor
            // is exactly 1.0 (an exact f64 identity), so baseline
            // fleets keep byte-identical traces and consume no extra
            // randomness.
            let mut episode_mult = [1.0f64; 5];
            for e in &spec.episodes {
                if e.active(day, node) {
                    let slot = match e.channel {
                        RootCause::Hardware => 0,
                        RootCause::Software => 1,
                        RootCause::Network => 2,
                        RootCause::HumanError => 3,
                        RootCause::Environment => 4,
                        RootCause::Undetermined => continue,
                    };
                    episode_mult[slot] *= e.multiplier;
                }
            }

            // Excitation contributes an *additive* excess proportional to
            // the group base rate (not the node's multiplied rate):
            // follow-up risk after a failure is a property of the event,
            // so it is not re-amplified by node-0/frailty factors. This
            // also keeps the self-exciting process subcritical.
            let boost = |root: RootCause| -> f64 {
                states[node as usize].excitation.boost(root) + rack_states[rack].boost(root)
            };

            // Channel hazards: multiplied base + capped additive excess.
            let n0 = |m: f64| if is_node0 { m } else { 1.0 };
            let caps = &spec.excess_caps;
            let excess = |root: RootCause, base: f64, cap: f64| (base * boost(root)).min(cap);

            let mut hw_rates = [0.0f64; 10];
            let hw_excess = excess(RootCause::Hardware, spec.rates.hardware, caps.hardware);
            let hw_base = spec.rates.hardware * common * n0(spec.node0.hardware) * episode_mult[0];
            let mut hw_total = 0.0;
            for (i, (comp, share)) in hw_shares.iter().enumerate() {
                // CPU faults repeat on themselves (component re-arm)
                // but do not participate in generic follow-up cascades —
                // the paper finds CPUs unaffected by power and
                // temperature problems and uncorrelated with other
                // types. The 1/0.6 renormalizes the excess the CPU
                // gives up onto the other components.
                let r = if *comp == HardwareComponent::Cpu {
                    hw_base * hw_mult[i] * share * cpu_scale
                } else {
                    (hw_base * hw_mult[i] + hw_excess / 0.6) * share
                };
                hw_rates[i] = r;
                hw_total += r;
            }
            let mut sw_rates = [0.0f64; 6];
            let sw_excess = excess(RootCause::Software, spec.rates.software, caps.software);
            let sw_base = spec.rates.software * common * n0(spec.node0.software) * episode_mult[1];
            let mut sw_total = 0.0;
            for (i, (_, share)) in sw_shares.iter().enumerate() {
                let r = (sw_base * sw_mult[i] + sw_excess) * share;
                sw_rates[i] = r;
                sw_total += r;
            }
            let net_rate = spec.rates.network * common * n0(spec.node0.network) * episode_mult[2]
                + excess(RootCause::Network, spec.rates.network, caps.network);
            let human_rate = spec.rates.human * common * n0(spec.node0.human) * episode_mult[3]
                + excess(RootCause::HumanError, spec.rates.human, caps.human);
            let env_rate =
                spec.rates.environment * common * n0(spec.node0.environment) * episode_mult[4]
                    + excess(
                        RootCause::Environment,
                        spec.rates.environment,
                        caps.environment,
                    );

            let total = hw_total + sw_total + net_rate + human_rate + env_rate;
            if total <= 0.0 {
                continue;
            }
            let count = Poisson::new(total.min(50.0)).sample_count(rng).min(5);
            for _ in 0..count {
                // Pick the channel.
                let mut pick = rng.gen_range(0.0..total);
                let (root, sub) = if pick < hw_total {
                    let mut i = 0;
                    while i + 1 < 10 && pick >= hw_rates[i] {
                        pick -= hw_rates[i];
                        i += 1;
                    }
                    (RootCause::Hardware, SubCause::Hardware(hw_shares[i].0))
                } else if pick < hw_total + sw_total {
                    pick -= hw_total;
                    let mut i = 0;
                    while i + 1 < 6 && pick >= sw_rates[i] {
                        pick -= sw_rates[i];
                        i += 1;
                    }
                    (RootCause::Software, SubCause::Software(sw_shares[i].0))
                } else if pick < hw_total + sw_total + net_rate {
                    (RootCause::Network, SubCause::None)
                } else if pick < hw_total + sw_total + net_rate + human_rate {
                    (RootCause::HumanError, SubCause::None)
                } else {
                    // Excited environment follow-ups shortly after a
                    // power/cooling problem are aftershocks of it; fall
                    // back to the system's latest problem for nodes that
                    // did not log the event themselves. Node 0 is the
                    // system's logbook: its environment records refer to
                    // facility problems over a much longer horizon.
                    let horizon = if is_node0 { 60 } else { 15 };
                    let recent = states[node as usize]
                        .recent_env
                        .filter(|&(d, _)| day - d <= horizon)
                        .or(system_recent_env.filter(|&(d, _)| day - d <= horizon));
                    let cause = match recent {
                        Some((_, cause)) if rng.gen_range(0.0..1.0) < 0.85 => cause,
                        _ => EnvironmentCause::Other,
                    };
                    (RootCause::Environment, SubCause::Environment(cause))
                };

                let time =
                    Timestamp::from_seconds(day as i64 * 86_400 + rng.gen_range(0..86_400i64));
                record_failure(
                    rng,
                    spec,
                    matrix,
                    &mut states[node as usize],
                    &mut rack_states[rack],
                    &mut failures,
                    &mut maintenance,
                    system,
                    NodeId::new(node),
                    time,
                    day,
                    root,
                    sub,
                );
            }

            // Background unscheduled maintenance.
            if rng.gen_range(0.0..1.0) < 1.0e-4 {
                maintenance.push(MaintenanceRecord {
                    system,
                    node: NodeId::new(node),
                    time: Timestamp::from_seconds(day as i64 * 86_400 + rng.gen_range(0..86_400)),
                    hardware_related: true,
                    scheduled: false,
                });
            }
        }

        // Temperature samples.
        if let (Some(tspec), Some(noise)) = (spec.temperature, temp_noise) {
            let per_day = tspec.samples_per_day.max(1);
            let step = 86_400 / per_day as i64;
            for node in 0..nodes {
                // Benign local hot spots: brief excursions that do not
                // touch the failure hazard. These dominate a node's
                // max/variance statistics, which is why the paper finds
                // temperature aggregates unpredictive — high readings
                // are usually harmless.
                if rng.gen_range(0.0..1.0) < states[node as usize].benign_excursion_rate {
                    let delta = 6.0 + rng.gen_range(0.0..9.0);
                    states[node as usize].excursions.push((day, day + 1, delta));
                }
                let pos = (node % NODES_PER_RACK + 1) as f64;
                let excursion: f64 = states[node as usize]
                    .excursions
                    .iter()
                    .filter(|&&(d0, d1, _)| day >= d0 && day <= d1)
                    .map(|&(_, _, delta)| delta)
                    .sum();
                for k in 0..per_day {
                    let c = tspec.base_celsius
                        + tspec.per_position * pos
                        + excursion
                        + noise.sample(rng);
                    temperatures.push(TemperatureSample {
                        system,
                        node: NodeId::new(node),
                        time: Timestamp::from_seconds(day as i64 * 86_400 + k as i64 * step),
                        celsius: c,
                    });
                }
            }
            for s in &mut states {
                s.excursions.retain(|&(_, d1, _)| d1 >= day);
            }
        }
    }

    hpcfail_obs::counter("synth.records.failure").add(failures.len() as u64);
    hpcfail_obs::counter("synth.records.maintenance").add(maintenance.len() as u64);
    hpcfail_obs::counter("synth.records.temperature").add(temperatures.len() as u64);
    for f in failures {
        builder.push_failure(f);
    }
    for m in maintenance {
        builder.push_maintenance(m);
    }
    for t in temperatures {
        builder.push_temperature(t);
    }
    if let Some(w) = workload {
        hpcfail_obs::counter("synth.records.job").add(w.jobs.len() as u64);
        for j in w.jobs {
            builder.push_job(j);
        }
    }
    builder.build()
}

/// Records a failure: logs it (with label noise), feeds the excitation
/// states, and fires node-local cascades for PSU/fan failures.
#[allow(clippy::too_many_arguments)]
fn record_failure<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &SystemSpec,
    matrix: &ExcitationMatrix,
    state: &mut NodeState,
    rack_state: &mut ExcitationState,
    failures: &mut Vec<FailureRecord>,
    maintenance: &mut Vec<MaintenanceRecord>,
    system: SystemId,
    node: NodeId,
    time: Timestamp,
    day: u32,
    true_root: RootCause,
    sub: SubCause,
) {
    // Excitation uses the true mechanism; the recorded label may be
    // "undetermined" (operator classification noise). With a layout the
    // shared state is the node's rack; without one it is the whole
    // system, coupling only the inherently shared failure types at a
    // small per-node fraction.
    state
        .excitation
        .record(matrix, true_root, spec.excitation_scale);
    if spec.has_layout {
        rack_state.record(
            matrix,
            true_root,
            matrix.rack_fraction * spec.excitation_scale,
        );
    } else {
        rack_state.record_shared(matrix, true_root, 0.06 * spec.excitation_scale);
    }

    if let SubCause::Environment(cause) = sub {
        state.recent_env = Some((day, cause));
    }
    let (root, sub) = if rng.gen_range(0.0..1.0) < spec.undetermined_fraction {
        (RootCause::Undetermined, SubCause::None)
    } else {
        (true_root, sub)
    };
    // Repair times at LANL are heavy-tailed; a lognormal with median
    // ~3h and sigma 1.1 gives a mean near 5.5h with multi-day tails.
    let repair_hours = LogNormal::new(3.0f64.ln(), 1.1)
        .sample(rng)
        .clamp(0.1, 240.0);
    let downtime = Duration::from_seconds((repair_hours * 3600.0) as i64);
    failures.push(FailureRecord::new(system, node, time, root, sub).with_downtime(downtime));

    // Node-local degradation cascades and same-component re-arm.
    match sub {
        SubCause::Hardware(HardwareComponent::PowerSupply) => {
            state.modifiers.extend(
                psu_cascade(day)
                    .into_iter()
                    .map(|m| m.scaled(spec.event_peak_scale)),
            );
            if rng.gen_range(0.0..1.0) < 0.08 {
                push_unscheduled_maintenance(rng, maintenance, system, node, day);
            }
        }
        SubCause::Hardware(HardwareComponent::Fan) => {
            state.modifiers.extend(
                fan_cascade(day)
                    .into_iter()
                    .map(|m| m.scaled(spec.event_peak_scale)),
            );
            let delta = 8.0 + rng.gen_range(0.0..8.0);
            state.excursions.push((day, day + 2, delta));
        }
        SubCause::Hardware(component) => {
            state
                .modifiers
                .push(component_rearm(day, component).scaled(spec.event_peak_scale));
        }
        _ => {}
    }
}

/// Applies one cluster event: env failure records on affected nodes,
/// month-long hazard modifiers, maintenance draws and (for chiller
/// failures) temperature excursions.
#[allow(clippy::too_many_arguments)]
fn apply_cluster_event<R: Rng + ?Sized>(
    rng: &mut R,
    event: &ClusterEvent,
    spec: &SystemSpec,
    options: &SimOptions,
    matrix: &ExcitationMatrix,
    states: &mut [NodeState],
    rack_states: &mut [ExcitationState],
    failures: &mut Vec<FailureRecord>,
    maintenance: &mut Vec<MaintenanceRecord>,
) {
    let system = SystemId::new(spec.id);
    let kind = event.kind;
    let env_p = kind.env_record_probability();
    let maint_p = kind.maintenance_probability();

    // Hazard elevation applies to the whole affected range.
    for node in event.affected.0..event.affected.1 {
        let state = &mut states[node as usize];
        for &(comp, peak) in kind.hw_elevations() {
            state.modifiers.push(
                Modifier::month(event.day, ModifierTarget::Hw(comp), peak)
                    .scaled(spec.event_peak_scale),
            );
        }
        for &(cause, peak) in kind.sw_elevations() {
            state.modifiers.push(
                Modifier::month(event.day, ModifierTarget::Sw(cause), peak)
                    .scaled(spec.event_peak_scale),
            );
        }
        if kind == ClusterEventKind::ChillerFailure {
            state.excursions.push((event.day, event.day + 1, 8.0));
        }
    }

    // ENV failure records and maintenance hit the record zone — the
    // nodes that actually crashed — plus node 0, which as the login
    // node observes most facility problems.
    for node in 0..states.len() as u32 {
        let is_node0 = node == 0 && options.node0_role;
        let in_zone = event.in_record_zone(NodeId::new(node));
        if !in_zone && !is_node0 {
            continue;
        }
        let p = if is_node0 {
            env_p.max(spec.node0.logs_cluster_events)
        } else {
            env_p
        };
        if rng.gen_range(0.0..1.0) < p {
            let jitter = rng.gen_range(0..1800i64);
            let time = Timestamp::from_seconds(event.time.as_seconds() + jitter);
            let rack = if spec.has_layout {
                (node / NODES_PER_RACK) as usize
            } else {
                0
            };
            record_failure(
                rng,
                spec,
                matrix,
                &mut states[node as usize],
                &mut rack_states[rack],
                failures,
                maintenance,
                system,
                NodeId::new(node),
                time,
                event.day,
                RootCause::Environment,
                SubCause::Environment(kind.env_cause()),
            );
        }
        if in_zone && rng.gen_range(0.0..1.0) < maint_p {
            push_unscheduled_maintenance(rng, maintenance, system, NodeId::new(node), event.day);
        }
    }
}

fn push_unscheduled_maintenance<R: Rng + ?Sized>(
    rng: &mut R,
    maintenance: &mut Vec<MaintenanceRecord>,
    system: SystemId,
    node: NodeId,
    day: u32,
) {
    let offset_day = day as i64 + rng.gen_range(1..30i64);
    maintenance.push(MaintenanceRecord {
        system,
        node,
        time: Timestamp::from_seconds(offset_day * 86_400 + rng.gen_range(0..86_400)),
        hardware_related: true,
        scheduled: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;

    fn demo_fleet() -> GeneratedFleet {
        FleetSpec::demo().generate(7)
    }

    #[test]
    fn deterministic_generation() {
        let a = FleetSpec::demo().generate(11);
        let b = FleetSpec::demo().generate(11);
        assert_eq!(a.trace().total_failures(), b.trace().total_failures());
        let sa = a.trace().system(SystemId::new(20)).unwrap();
        let sb = b.trace().system(SystemId::new(20)).unwrap();
        assert_eq!(sa.failures(), sb.failures());
        assert_eq!(sa.jobs().len(), sb.jobs().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSpec::demo().generate(1);
        let b = FleetSpec::demo().generate(2);
        let fa = a
            .trace()
            .system(SystemId::new(20))
            .unwrap()
            .failures()
            .len();
        let fb = b
            .trace()
            .system(SystemId::new(20))
            .unwrap()
            .failures()
            .len();
        assert_ne!(
            (fa, a.trace().total_failures()),
            (fb, b.trace().total_failures())
        );
    }

    #[test]
    fn all_records_within_observation_window() {
        let fleet = demo_fleet();
        for sys in fleet.trace().systems() {
            let cfg = sys.config();
            for f in sys.failures() {
                assert!(f.time >= cfg.start && f.time < cfg.end + Duration::from_days(31.0));
                assert!(f.sub_cause.consistent_with(f.root_cause), "{f:?}");
                assert!(f.node.raw() < cfg.nodes);
            }
        }
    }

    #[test]
    fn overall_rate_near_group_targets() {
        let fleet = demo_fleet();
        // Group-1 daily node-failure probability should be within a
        // factor ~2 of the paper's 0.31%.
        let mut node_days = 0f64;
        let mut fails = 0f64;
        for sys in fleet.trace().group_systems(SystemGroup::Group1) {
            node_days += sys.config().nodes as f64 * sys.config().observation_days() as f64;
            fails += sys.failures().len() as f64;
        }
        let rate = fails / node_days;
        assert!(
            rate > 0.002 && rate < 0.009,
            "group-1 daily rate {rate} outside sanity band"
        );
        // Group-2 markedly higher.
        let mut nd2 = 0f64;
        let mut f2 = 0f64;
        for sys in fleet.trace().group_systems(SystemGroup::Group2) {
            nd2 += sys.config().nodes as f64 * sys.config().observation_days() as f64;
            f2 += sys.failures().len() as f64;
        }
        let rate2 = f2 / nd2;
        assert!(
            rate2 > 4.0 * rate,
            "group-2 rate {rate2} not >> group-1 {rate}"
        );
    }

    #[test]
    fn hardware_dominates_root_causes() {
        let fleet = demo_fleet();
        let mut by_root = std::collections::HashMap::new();
        for sys in fleet.trace().systems() {
            for f in sys.failures() {
                *by_root.entry(f.root_cause).or_insert(0u32) += 1;
            }
        }
        let total: u32 = by_root.values().sum();
        let hw = by_root.get(&RootCause::Hardware).copied().unwrap_or(0);
        let share = hw as f64 / total as f64;
        assert!(share > 0.40 && share < 0.75, "hardware share {share}");
        // Undetermined present (label noise).
        assert!(by_root.contains_key(&RootCause::Undetermined));
    }

    #[test]
    fn node0_fails_most() {
        let fleet = demo_fleet();
        let sys = fleet.trace().system(SystemId::new(20)).unwrap();
        let node0 = sys.node_failure_count(NodeId::new(0));
        let rest_max = sys
            .nodes()
            .skip(1)
            .map(|n| sys.node_failure_count(n))
            .max()
            .unwrap();
        let avg = sys.failures().len() as f64 / sys.config().nodes as f64;
        assert!(node0 > rest_max, "node0 {node0} vs max rest {rest_max}");
        assert!(node0 as f64 > 3.0 * avg, "node0 {node0} vs avg {avg}");
    }

    #[test]
    fn layout_and_sensors_present_where_specified() {
        let fleet = demo_fleet();
        let sys20 = fleet.trace().system(SystemId::new(20)).unwrap();
        assert!(sys20.layout().is_some());
        assert!(!sys20.temperatures().is_empty());
        assert!(!sys20.jobs().is_empty());
        let sys18 = fleet.trace().system(SystemId::new(18)).unwrap();
        assert!(sys18.temperatures().is_empty());
        assert!(sys18.jobs().is_empty());
        let sys2 = fleet.trace().system(SystemId::new(2)).unwrap();
        assert!(sys2.layout().is_none());
    }

    #[test]
    fn ablation_excitation_off_reduces_clustering() {
        // Disable cluster events in both arms so the comparison
        // isolates the excitation mechanism; use a larger single
        // system so the follow-up fraction is stable.
        let mut spec = FleetSpec::demo();
        spec.systems = vec![crate::spec::SystemSpec::smp(18, 256, 1200)];
        // Frailty also creates (static) cross-type clustering, so turn
        // it off in both arms along with cluster events.
        let on_options = SimOptions {
            cluster_events: false,
            frailty: false,
            ..SimOptions::default()
        };
        let on = spec.generate_with(5, &on_options);
        let options = SimOptions {
            cluster_events: false,
            frailty: false,
            excitation: ExcitationMatrix::disabled(),
            ..SimOptions::default()
        };
        let off = spec.generate_with(5, &options);
        // Compare same-node *cross-root-cause* follow-ups within a
        // week: component re-arm (active in both arms) only repeats the
        // same component, so cross-type clustering isolates the matrix.
        let clustering = |fleet: &GeneratedFleet| {
            let mut pairs = 0u32;
            let mut triggers = 0u32;
            for sys in fleet.trace().group_systems(SystemGroup::Group1) {
                for node in sys.nodes() {
                    let events: Vec<(i64, RootCause)> = sys
                        .node_failures(node)
                        .map(|f| (f.time.as_seconds(), f.root_cause))
                        .collect();
                    for (i, &(t, root)) in events.iter().enumerate() {
                        triggers += 1;
                        if events[i + 1..]
                            .iter()
                            .any(|&(u, r2)| u > t && u - t <= 7 * 86_400 && r2 != root)
                        {
                            pairs += 1;
                        }
                    }
                }
            }
            pairs as f64 / triggers.max(1) as f64
        };
        let c_on = clustering(&on);
        let c_off = clustering(&off);
        assert!(
            c_on > 1.5 * c_off,
            "excitation should raise follow-up fraction: {c_on} vs {c_off}"
        );
    }

    #[test]
    fn maintenance_events_follow_power_problems() {
        let fleet = demo_fleet();
        let mut unscheduled = 0;
        for sys in fleet.trace().systems() {
            unscheduled += sys
                .maintenance()
                .iter()
                .filter(|m| m.is_unscheduled_hardware())
                .count();
        }
        assert!(unscheduled > 0, "no unscheduled maintenance generated");
    }

    #[test]
    fn temperature_mostly_in_ambient_band() {
        let fleet = demo_fleet();
        let sys = fleet.trace().system(SystemId::new(20)).unwrap();
        let temps = sys.temperatures();
        let in_band = temps
            .iter()
            .filter(|t| t.celsius > 15.0 && t.celsius < 40.0)
            .count();
        assert!(in_band as f64 > 0.95 * temps.len() as f64);
        // But excursions exist somewhere above the warning threshold.
        // (Fan failures happen; if none in this seed, skip.)
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::spec::FleetSpec;

    #[test]
    #[ignore]
    fn diag_breakdown() {
        let fleet = FleetSpec::demo().generate(7);
        for sys in fleet.trace().systems() {
            let cfg = sys.config();
            let nd = cfg.nodes as f64 * cfg.observation_days() as f64;
            let mut by_root = std::collections::BTreeMap::new();
            let mut node0 = 0u32;
            let mut env_sub = std::collections::BTreeMap::new();
            for f in sys.failures() {
                *by_root.entry(format!("{}", f.root_cause)).or_insert(0u32) += 1;
                if f.node.raw() == 0 {
                    node0 += 1;
                }
                if let SubCause::Environment(c) = f.sub_cause {
                    *env_sub.entry(format!("{c}")).or_insert(0u32) += 1;
                }
            }
            let total = sys.failures().len();
            println!(
                "=== {} nodes={} days={} total={} rate={:.5}/nd node0={} ({:.3}/day)",
                cfg.name,
                cfg.nodes,
                cfg.observation_days(),
                total,
                total as f64 / nd,
                node0,
                node0 as f64 / cfg.observation_days() as f64
            );
            println!("  roots: {by_root:?}");
            println!("  env subs: {env_sub:?}");
            // per-day histogram tail: max failures in one day
            let mut per_day = std::collections::HashMap::new();
            for f in sys.failures() {
                *per_day.entry(f.time.day_index()).or_insert(0u32) += 1;
            }
            let mut days: Vec<u32> = per_day.values().copied().collect();
            days.sort_unstable_by(|a, b| b.cmp(a));
            println!("  busiest days: {:?}", &days[..days.len().min(10)]);
        }
    }
}

#[cfg(test)]
mod scale_diag {
    use crate::spec::FleetSpec;
    use hpcfail_types::prelude::*;

    #[test]
    #[ignore]
    fn diag_full_scale() {
        let t0 = std::time::Instant::now();
        let fleet = FleetSpec::lanl().generate(42);
        println!("generation took {:?}", t0.elapsed());
        let mut nd1 = 0f64;
        let mut f1 = 0f64;
        let mut nd2 = 0f64;
        let mut f2 = 0f64;
        let mut env = 0u64;
        let mut hw = 0u64;
        let mut total = 0u64;
        for sys in fleet.trace().systems() {
            let cfg = sys.config();
            let nd = cfg.nodes as f64 * cfg.observation_days() as f64;
            if cfg.group() == SystemGroup::Group1 {
                nd1 += nd;
                f1 += sys.failures().len() as f64;
            } else {
                nd2 += nd;
                f2 += sys.failures().len() as f64;
            }
            for f in sys.failures() {
                total += 1;
                match f.root_cause {
                    RootCause::Environment => env += 1,
                    RootCause::Hardware => hw += 1,
                    _ => {}
                }
            }
        }
        println!(
            "group1 rate/day {:.5} (target .0031), group2 {:.5} (target .046)",
            f1 / nd1,
            f2 / nd2
        );
        println!(
            "total {total}, env share {:.3} (t .02), hw share {:.3} (t .60)",
            env as f64 / total as f64,
            hw as f64 / total as f64
        );
        let s20 = fleet.trace().system(SystemId::new(20)).unwrap();
        println!(
            "sys20: {} failures, {} jobs, {} temps, node0 {}x avg",
            s20.failures().len(),
            s20.jobs().len(),
            s20.temperatures().len(),
            s20.node_failure_count(NodeId::new(0)) as f64
                / (s20.failures().len() as f64 / s20.config().nodes as f64)
        );
    }
}

#[cfg(test)]
mod env_diag {
    use crate::spec::FleetSpec;
    use hpcfail_types::prelude::*;

    #[test]
    #[ignore]
    fn diag_env_other_sources() {
        let fleet = FleetSpec::lanl().generate(42);
        let mut by_sys_node0 = std::collections::BTreeMap::new();
        for sys in fleet.trace().systems() {
            let mut node0 = 0u32;
            let mut rest = 0u32;
            for f in sys.failures() {
                if f.sub_cause == SubCause::Environment(EnvironmentCause::Other) {
                    if f.node.raw() == 0 {
                        node0 += 1
                    } else {
                        rest += 1
                    }
                }
            }
            by_sys_node0.insert(
                sys.config().name.clone(),
                (node0, rest, sys.config().group()),
            );
        }
        for (name, (n0, rest, group)) in by_sys_node0 {
            println!("{name} ({group:?}): node0 {n0}, rest {rest}");
        }
    }
}

#[cfg(test)]
mod share_diag {
    use crate::spec::FleetSpec;
    use hpcfail_types::prelude::*;

    #[test]
    #[ignore]
    fn diag_component_shares() {
        let fleet = FleetSpec::lanl().generate(42);
        let mut counts = std::collections::BTreeMap::new();
        let mut hw_total = 0u64;
        for sys in fleet.trace().systems() {
            for f in sys.failures() {
                if let SubCause::Hardware(c) = f.sub_cause {
                    *counts.entry(c.label()).or_insert(0u64) += 1;
                    hw_total += 1;
                }
            }
        }
        for (c, n) in counts {
            println!("{c}: {n} ({:.3})", n as f64 / hw_total as f64);
        }
    }
}

#[cfg(test)]
mod pick_diag {
    use crate::spec::FleetSpec;
    use hpcfail_types::prelude::*;

    #[test]
    #[ignore]
    fn diag_demo_components() {
        for seed in [1u64, 2, 3] {
            let fleet = FleetSpec::demo().generate(seed);
            let mut cpu = 0;
            let mut mem = 0;
            for sys in fleet.trace().systems() {
                for f in sys.failures() {
                    match f.sub_cause {
                        SubCause::Hardware(HardwareComponent::Cpu) => cpu += 1,
                        SubCause::Hardware(HardwareComponent::MemoryDimm) => mem += 1,
                        _ => {}
                    }
                }
            }
            println!("seed {seed}: cpu {cpu}, mem {mem}");
        }
    }
}
