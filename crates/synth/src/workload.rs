//! Job/user workload generation for systems with job logs.
//!
//! Produces a LANL-style job log (Section V: systems 8 and 20) with:
//! heavy-tailed per-user activity (the 50 heaviest users dominate
//! processor-days), per-user *risk multipliers* (some users exercise
//! nodes in ways that make failures more likely — Section VI), and a
//! login/launch role for node 0 (it joins far more jobs than any other
//! node, giving it the highest utilization — Section V's scatter plots).

use crate::spec::WorkloadSpec;
use hpcfail_stats::dist::{Distribution, Exponential, LogNormal, Poisson};
use hpcfail_types::prelude::*;
use rand::Rng;

/// A generated workload: the job log plus per-user risk multipliers.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The job records, sorted by dispatch time.
    pub jobs: Vec<JobRecord>,
    /// Per-user hazard multipliers (unit mean-ish, log-normal).
    pub user_risk: Vec<f64>,
}

/// Per-node-per-day usage intensities derived from a job log, feeding
/// the failure hazard.
#[derive(Debug, Clone)]
pub struct NodeDayUsage {
    days: usize,
    /// Busy fraction of each (node, day), row-major `[node][day]`.
    busy: Vec<f64>,
    /// Sum over active jobs of `(user_risk - 1) * overlap_fraction`.
    risk_excess: Vec<f64>,
}

impl NodeDayUsage {
    /// Fraction of `day` that `node` had at least one job assigned
    /// (clamped to 1; overlapping jobs saturate rather than stack).
    pub fn busy_fraction(&self, node: u32, day: u32) -> f64 {
        self.busy
            .get(node as usize * self.days + day as usize)
            .copied()
            .unwrap_or(0.0)
            .min(1.0)
    }

    /// Risk excess of `(node, day)` from the users running there.
    pub fn risk_excess(&self, node: u32, day: u32) -> f64 {
        self.risk_excess
            .get(node as usize * self.days + day as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// An all-zero usage map (systems without job logs).
    pub fn empty() -> Self {
        NodeDayUsage {
            days: 0,
            busy: Vec::new(),
            risk_excess: Vec::new(),
        }
    }
}

/// Generates the job log for one system.
pub fn generate_workload<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &WorkloadSpec,
    system: SystemId,
    nodes: u32,
    procs_per_node: u32,
    days: u32,
) -> GeneratedWorkload {
    assert!(nodes > 0, "workload needs at least one node");
    // Per-user activity weights: Pareto tail (heaviest users dominate).
    let weights: Vec<f64> = (0..spec.users)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            u.powf(-1.0 / spec.user_activity_shape)
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_weight;
        cumulative.push(acc);
    }

    // Per-user risk multipliers: log-normal around 1 with the configured
    // spread; mean-corrected so the fleet-wide hazard is unchanged.
    let sigma = spec.user_risk_sigma;
    let risk_dist = LogNormal::new(-sigma * sigma / 2.0, sigma.max(1e-6));
    let user_risk: Vec<f64> = (0..spec.users).map(|_| risk_dist.sample(rng)).collect();

    let runtime_hours = LogNormal::new(spec.mean_runtime_hours.max(0.1).ln(), 1.0);
    let queue_wait = Exponential::new(1.0); // mean 1 hour
    let arrivals = Poisson::new(spec.jobs_per_day.max(1e-9));

    let mut jobs = Vec::new();
    let mut job_id = 0u64;
    for day in 0..days {
        let count = arrivals.sample_count(rng);
        for _ in 0..count {
            let pick: f64 = rng.gen_range(0.0..1.0);
            let user = cumulative.partition_point(|&c| c < pick) as u32;
            let user = user.min(spec.users.saturating_sub(1));

            let submit_s = day as i64 * 86_400 + rng.gen_range(0..86_400i64);
            let wait_s = (queue_wait.sample(rng) * 3600.0) as i64;
            let run_s = (runtime_hours.sample(rng).clamp(0.05, 24.0 * 14.0) * 3600.0) as i64;
            let dispatch_s = submit_s + wait_s;
            let end_s = dispatch_s + run_s.max(60);

            // Node count: powers of two, heavy on small jobs.
            let max_pow = (nodes.max(1) as f64).log2().floor() as u32;
            let pow = geometric_pow(rng, max_pow.min(5));
            let width = (1u32 << pow).min(nodes);
            let include_node0 = rng.gen_range(0.0..1.0) < spec.node0_inclusion;
            let start = if include_node0 || nodes == width {
                0
            } else {
                rng.gen_range(0..=(nodes - width))
            };
            let node_ids: Vec<NodeId> = (start..start + width).map(NodeId::new).collect();

            jobs.push(JobRecord {
                system,
                job_id: JobId::new(job_id),
                user: UserId::new(user),
                submit: Timestamp::from_seconds(submit_s),
                dispatch: Timestamp::from_seconds(dispatch_s),
                end: Timestamp::from_seconds(end_s),
                procs: width * procs_per_node,
                nodes: node_ids,
            });
            job_id += 1;
        }
    }
    jobs.sort_by_key(|j| j.dispatch);
    GeneratedWorkload { jobs, user_risk }
}

/// Geometric-ish power draw in `0..=max_pow` (halving probability per
/// step), biasing towards small jobs.
fn geometric_pow<R: Rng + ?Sized>(rng: &mut R, max_pow: u32) -> u32 {
    let mut pow = 0;
    while pow < max_pow && rng.gen_range(0.0..1.0) < 0.45 {
        pow += 1;
    }
    pow
}

/// Accumulates per-node-per-day usage intensities from a job log.
pub fn accumulate_usage(workload: &GeneratedWorkload, nodes: u32, days: u32) -> NodeDayUsage {
    let days_us = days as usize;
    let mut busy = vec![0.0f64; nodes as usize * days_us];
    let mut risk_excess = vec![0.0f64; nodes as usize * days_us];
    for job in &workload.jobs {
        let risk = workload
            .user_risk
            .get(job.user.index())
            .copied()
            .unwrap_or(1.0);
        let d0 = job.dispatch.as_seconds().max(0);
        let d1 = job.end.as_seconds().min(days as i64 * 86_400);
        if d1 <= d0 {
            continue;
        }
        let first_day = (d0 / 86_400) as u32;
        let last_day = ((d1 - 1) / 86_400) as u32;
        for day in first_day..=last_day.min(days - 1) {
            let day_lo = day as i64 * 86_400;
            let day_hi = day_lo + 86_400;
            let overlap = (d1.min(day_hi) - d0.max(day_lo)) as f64 / 86_400.0;
            for &node in &job.nodes {
                if node.raw() < nodes {
                    let idx = node.index() * days_us + day as usize;
                    busy[idx] += overlap;
                    risk_excess[idx] += (risk - 1.0) * overlap;
                }
            }
        }
    }
    NodeDayUsage {
        days: days_us,
        busy,
        risk_excess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            users: 50,
            jobs_per_day: 20.0,
            mean_runtime_hours: 6.0,
            user_activity_shape: 1.2,
            user_risk_sigma: 0.8,
            node0_inclusion: 0.3,
        }
    }

    fn generate(seed: u64) -> GeneratedWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_workload(&mut rng, &spec(), SystemId::new(8), 64, 4, 365)
    }

    #[test]
    fn jobs_are_well_formed() {
        let w = generate(1);
        assert!(w.jobs.len() > 5000, "got {}", w.jobs.len());
        for j in &w.jobs {
            assert!(j.is_well_formed(), "malformed {j:?}");
            assert!(j.nodes.iter().all(|n| n.raw() < 64));
            assert_eq!(j.procs as usize, j.nodes.len() * 4);
        }
        // Sorted by dispatch.
        assert!(w.jobs.windows(2).all(|p| p[0].dispatch <= p[1].dispatch));
    }

    #[test]
    fn node0_is_busiest() {
        let w = generate(2);
        let mut per_node = vec![0u32; 64];
        for j in &w.jobs {
            for n in &j.nodes {
                per_node[n.index()] += 1;
            }
        }
        let max_other = per_node[1..].iter().max().copied().unwrap();
        assert!(
            per_node[0] > 2 * max_other,
            "node0 {} vs max other {max_other}",
            per_node[0]
        );
    }

    #[test]
    fn user_activity_is_skewed() {
        let w = generate(3);
        let mut per_user = [0u32; 50];
        for j in &w.jobs {
            per_user[j.user.index()] += 1;
        }
        per_user.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = per_user.iter().sum();
        let top5: u32 = per_user[..5].iter().sum();
        assert!(
            top5 as f64 > 0.3 * total as f64,
            "top-5 share {}",
            top5 as f64 / total as f64
        );
    }

    #[test]
    fn user_risk_varies_with_unit_scale() {
        let w = generate(4);
        let mean: f64 = w.user_risk.iter().sum::<f64>() / w.user_risk.len() as f64;
        assert!(mean > 0.5 && mean < 2.0, "mean risk {mean}");
        let max = w.user_risk.iter().cloned().fold(0.0, f64::max);
        let min = w.user_risk.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "risk spread too small: {min}..{max}");
    }

    #[test]
    fn usage_accumulation_bounds() {
        let w = generate(5);
        let usage = accumulate_usage(&w, 64, 365);
        let mut any_busy = false;
        for node in 0..64 {
            for day in 0..365 {
                let b = usage.busy_fraction(node, day);
                assert!((0.0..=1.0).contains(&b));
                if b > 0.0 {
                    any_busy = true;
                }
            }
        }
        assert!(any_busy);
        // Node 0 busier than a typical node on average.
        let avg = |n: u32| (0..365).map(|d| usage.busy_fraction(n, d)).sum::<f64>() / 365.0;
        assert!(avg(0) > avg(37));
    }

    #[test]
    fn usage_out_of_range_is_zero() {
        let usage = NodeDayUsage::empty();
        assert_eq!(usage.busy_fraction(0, 0), 0.0);
        assert_eq!(usage.risk_excess(3, 17), 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(9);
        let b = generate(9);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.user_risk, b.user_risk);
    }
}
