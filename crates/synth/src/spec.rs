//! Fleet and per-system generation parameters, with LANL-calibrated
//! defaults.
//!
//! Base rates are calibrated so the generated fleet's headline
//! statistics land near the paper's: group-1 systems fail on ~0.31% of
//! node-days (~2% of node-weeks), group-2 on ~4.6% of node-days;
//! hardware causes ~60% of failures with a 40%/20% CPU/memory split
//! inside hardware.

use hpcfail_types::prelude::*;

/// Per-root-cause base hazards, in expected failures per node-day
/// before frailty, excitation and event effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseRates {
    /// Hardware channel total (split across components by
    /// [`hw_component_shares`]).
    pub hardware: f64,
    /// Software channel total (split across sub-causes by
    /// [`sw_cause_shares`]).
    pub software: f64,
    /// Network channel.
    pub network: f64,
    /// Human-error channel.
    pub human: f64,
    /// Background environment channel (problems other than the
    /// explicitly simulated power/cooling events).
    pub environment: f64,
}

impl BaseRates {
    /// Total base hazard per node-day.
    pub fn total(&self) -> f64 {
        self.hardware + self.software + self.network + self.human + self.environment
    }
}

/// Relative frequency of hardware components inside the hardware
/// channel, in [`HardwareComponent::ALL`] order
/// (PowerSupply, Memory, NodeBoard, Fan, CPU, MSC, MidPlane, NIC, Disk, Other).
pub fn hw_component_shares() -> [(HardwareComponent, f64); 10] {
    // Base shares are set so the *realized* mix (after excitation
    // excess, which bypasses CPUs, and event elevations) lands near the
    // paper's 40% CPU / 20% memory split of hardware failures.
    [
        (HardwareComponent::PowerSupply, 0.075),
        (HardwareComponent::MemoryDimm, 0.135),
        (HardwareComponent::NodeBoard, 0.065),
        (HardwareComponent::Fan, 0.035),
        (HardwareComponent::Cpu, 0.56),
        (HardwareComponent::MscBoard, 0.025),
        (HardwareComponent::Midplane, 0.015),
        (HardwareComponent::Nic, 0.035),
        (HardwareComponent::Disk, 0.04),
        (HardwareComponent::Other, 0.015),
    ]
}

/// Relative frequency of software sub-causes inside the software
/// channel.
pub fn sw_cause_shares() -> [(SoftwareCause, f64); 6] {
    [
        (SoftwareCause::Dst, 0.35),
        (SoftwareCause::Other, 0.15),
        (SoftwareCause::PatchInstall, 0.05),
        (SoftwareCause::Os, 0.20),
        (SoftwareCause::Pfs, 0.15),
        (SoftwareCause::Cfs, 0.10),
    ]
}

/// Failure-rate multipliers for node 0, the login/launch node.
///
/// LANL operators report node 0 acts as the login node and/or schedules
/// and launches jobs; the paper measures per-type daily-probability
/// increases in the hundreds-to-thousands range for environment and
/// network failures (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node0Spec {
    /// Environment-channel multiplier.
    pub environment: f64,
    /// Network-channel multiplier.
    pub network: f64,
    /// Software-channel multiplier.
    pub software: f64,
    /// Hardware-channel multiplier.
    pub hardware: f64,
    /// Human-error-channel multiplier.
    pub human: f64,
    /// Probability that node 0 additionally logs an ENV failure record
    /// for every cluster-level power event (login nodes observe
    /// facility problems).
    pub logs_cluster_events: f64,
}

impl Default for Node0Spec {
    fn default() -> Self {
        Node0Spec {
            environment: 130.0,
            network: 110.0,
            software: 28.0,
            hardware: 1.3,
            human: 1.0,
            logs_cluster_events: 0.9,
        }
    }
}

/// Per-channel caps on the *excess* hazard the excitation machinery can
/// add, in failures per node-day.
///
/// The self-exciting process must stay subcritical even under bursts
/// (e.g. a power outage logging environment failures across the
/// system). The caps are set from the paper's measured conditional
/// probabilities — e.g. the day after a failure a group-1 node fails
/// with probability ~7%, so the total excess tops out near there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExcessCaps {
    /// Environment-channel cap.
    pub environment: f64,
    /// Hardware-channel cap.
    pub hardware: f64,
    /// Software-channel cap.
    pub software: f64,
    /// Network-channel cap.
    pub network: f64,
    /// Human-error-channel cap.
    pub human: f64,
}

impl ExcessCaps {
    /// Group-1 caps (post-failure day probability ~7%).
    pub fn group1() -> Self {
        ExcessCaps {
            environment: 0.030,
            hardware: 0.060,
            software: 0.035,
            network: 0.035,
            human: 0.010,
        }
    }

    /// Group-2 caps (post-failure day probability ~21%). The
    /// environment cap is deliberately low: with system-wide coupling
    /// over few nodes, a higher cap lets environment chains self-
    /// sustain for months.
    pub fn group2() -> Self {
        ExcessCaps {
            environment: 0.012,
            hardware: 0.075,
            software: 0.045,
            network: 0.035,
            human: 0.015,
        }
    }
}

/// Cluster-level event rates, in expected events per system-day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// Facility power outages.
    pub power_outage: f64,
    /// Power spikes.
    pub power_spike: f64,
    /// UPS-system failures (hit one rack zone).
    pub ups: f64,
    /// Chiller failures (hit one machine-room region).
    pub chiller: f64,
}

impl Default for EventRates {
    fn default() -> Self {
        EventRates {
            power_outage: 1.0 / 200.0,
            power_spike: 1.0 / 300.0,
            ups: 1.0 / 250.0,
            chiller: 1.0 / 350.0,
        }
    }
}

/// Workload-generation parameters for systems with job logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of user accounts.
    pub users: u32,
    /// Expected job arrivals per day.
    pub jobs_per_day: f64,
    /// Mean job runtime in hours (log-normal).
    pub mean_runtime_hours: f64,
    /// Pareto shape for the per-user activity skew (smaller = heavier
    /// tail; the top users dominate processor-days as in Section VI).
    pub user_activity_shape: f64,
    /// Log-normal sigma of per-user risk multipliers (how much the way
    /// a user exercises nodes changes their failure rate).
    pub user_risk_sigma: f64,
    /// Probability a job includes node 0 (login/launch role).
    pub node0_inclusion: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            users: 450,
            jobs_per_day: 230.0,
            mean_runtime_hours: 6.0,
            user_activity_shape: 1.2,
            user_risk_sigma: 1.0,
            node0_inclusion: 0.35,
        }
    }
}

/// Temperature-sensor simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureSpec {
    /// Samples per node per day.
    pub samples_per_day: u32,
    /// Baseline ambient temperature at the bottom of a rack (°C).
    pub base_celsius: f64,
    /// Additional °C per rack position (hot air rises).
    pub per_position: f64,
    /// Standard deviation of sample noise (°C).
    pub noise_sigma: f64,
}

impl Default for TemperatureSpec {
    fn default() -> Self {
        TemperatureSpec {
            samples_per_day: 1,
            base_celsius: 24.0,
            per_position: 1.1,
            noise_sigma: 2.0,
        }
    }
}

/// A scripted hazard elevation over a day window and node range.
///
/// Episodes are the data-level hook scenario packs use to express
/// phenomenology beyond the LANL-calibrated baseline — a firmware
/// rollout that multiplies the software hazard on the racks it has
/// reached, a week-long network partition, a facility event wave. The
/// multiplier applies to the channel's *base* hazard (before excitation
/// excess), so episodes compose with frailty, node-0 role and events
/// exactly like the base rates do. A system with no episodes simulates
/// byte-identically to one generated before episodes existed: the
/// multipliers stay exactly 1.0 and no randomness is consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// First simulated day the elevation is active (inclusive).
    pub first_day: u32,
    /// Last active day (inclusive).
    pub last_day: u32,
    /// First affected node id (inclusive).
    pub first_node: u32,
    /// Last affected node id (inclusive).
    pub last_node: u32,
    /// The root-cause channel whose base hazard is multiplied.
    /// [`RootCause::Undetermined`] has no hazard channel and is
    /// rejected by the scenario parser.
    pub channel: RootCause,
    /// Multiplier applied while the episode is active.
    pub multiplier: f64,
}

impl Episode {
    /// `true` while this episode elevates `node` on `day`.
    pub fn active(&self, day: u32, node: u32) -> bool {
        day >= self.first_day
            && day <= self.last_day
            && node >= self.first_node
            && node <= self.last_node
    }
}

/// Generation parameters for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// LANL-style system id.
    pub id: u16,
    /// Human-readable name.
    pub name: String,
    /// Number of nodes.
    pub nodes: u32,
    /// Processors per node.
    pub procs_per_node: u32,
    /// Hardware class (decides the paper's group-1/group-2 split).
    pub hardware: HardwareClass,
    /// Observation span in days.
    pub days: u32,
    /// Base per-node-day hazards.
    pub rates: BaseRates,
    /// Gamma-frailty shape: node frailty ~ Gamma(shape, 1/shape)
    /// (unit mean; smaller shape = more heterogeneity between nodes).
    pub frailty_shape: f64,
    /// Node-0 login-node multipliers.
    pub node0: Node0Spec,
    /// Cluster-level event rates.
    pub events: EventRates,
    /// Fraction of failures whose root cause is recorded as
    /// undetermined (label noise).
    pub undetermined_fraction: f64,
    /// Workload model, for systems with job logs.
    pub workload: Option<WorkloadSpec>,
    /// Temperature sensors, for systems with them.
    pub temperature: Option<TemperatureSpec>,
    /// `true` to emit a machine-room layout file.
    pub has_layout: bool,
    /// Soft (cosmic-ray) fraction of the CPU channel, modulated by
    /// neutron flux.
    pub cpu_soft_fraction: f64,
    /// Scale applied to the excitation matrix for this system. Group-2
    /// systems use a smaller scale: their base rates are ~15x higher,
    /// so the same additive-excess gains would make the follow-up
    /// process supercritical — and the paper indeed measures smaller
    /// factor increases (2-3x weekly) for group 2.
    pub excitation_scale: f64,
    /// Caps on the excitation excess hazard (burst stability).
    pub excess_caps: ExcessCaps,
    /// Scale applied to event/cascade peak multipliers:
    /// `peak_eff = 1 + (peak - 1) * scale`. Group-2 systems use a small
    /// scale — a 46x elevation of their already ~15x-higher component
    /// hazards would leave nodes in a permanently re-arming cascade.
    pub event_peak_scale: f64,
    /// Scripted hazard elevations (scenario packs). Empty for the
    /// LANL-calibrated baseline.
    pub episodes: Vec<Episode>,
}

impl SystemSpec {
    /// A group-1-style SMP system.
    pub fn smp(id: u16, nodes: u32, days: u32) -> Self {
        SystemSpec {
            id,
            name: format!("system-{id}"),
            nodes,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            days,
            // Calibrated so the realized rate (after frailty, excitation
            // and events roughly double the base) lands near the paper's
            // 0.31%/node-day for group 1.
            rates: BaseRates {
                hardware: 0.00080,
                software: 0.00027,
                network: 0.000054,
                human: 0.000054,
                environment: 0.0000060,
            },
            frailty_shape: 2.0,
            node0: Node0Spec::default(),
            events: EventRates::default(),
            undetermined_fraction: 0.10,
            workload: None,
            temperature: None,
            has_layout: true,
            cpu_soft_fraction: 0.30,
            excitation_scale: 1.0,
            excess_caps: ExcessCaps::group1(),
            event_peak_scale: 1.0,
            episodes: Vec::new(),
        }
    }

    /// A group-2-style NUMA system (few nodes, ~128 processors each,
    /// ~15x the per-node failure rate).
    pub fn numa(id: u16, nodes: u32, days: u32) -> Self {
        let mut spec = SystemSpec::smp(id, nodes, days);
        spec.procs_per_node = 128;
        spec.hardware = HardwareClass::Numa;
        spec.rates = BaseRates {
            hardware: 0.0138,
            software: 0.0046,
            network: 0.00092,
            human: 0.00092,
            environment: 0.00026,
        };
        spec.has_layout = false;
        spec.excitation_scale = 0.16;
        spec.excess_caps = ExcessCaps::group2();
        spec.event_peak_scale = 0.10;
        spec.node0 = Node0Spec {
            environment: 15.0,
            network: 8.0,
            software: 3.0,
            hardware: 1.5,
            human: 1.0,
            logs_cluster_events: 0.5,
        };
        spec
    }

    /// Converts to the store's static system description.
    pub fn to_config(&self) -> SystemConfig {
        SystemConfig {
            id: SystemId::new(self.id),
            name: self.name.clone(),
            nodes: self.nodes,
            procs_per_node: self.procs_per_node,
            hardware: self.hardware,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(self.days as f64),
            has_layout: self.has_layout,
            has_job_log: self.workload.is_some(),
            has_temperature: self.temperature.is_some(),
        }
    }
}

/// Neutron-flux curve parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeutronSpec {
    /// Mean counts per minute (Climax-style monitors sit near 4000).
    pub mean_counts: f64,
    /// Amplitude of the solar-cycle sinusoid.
    pub cycle_amplitude: f64,
    /// Solar-cycle period in days (~11 years).
    pub cycle_days: f64,
    /// Sample noise standard deviation.
    pub noise_sigma: f64,
    /// Expected Forbush-decrease/flare disturbances per year.
    pub flares_per_year: f64,
    /// Samples per day (the paper uses 1-minute data; hourly samples
    /// are equivalent after the monthly aggregation the analysis does).
    pub samples_per_day: u32,
}

impl Default for NeutronSpec {
    fn default() -> Self {
        NeutronSpec {
            mean_counts: 4000.0,
            cycle_amplitude: 450.0,
            cycle_days: 11.0 * 365.25,
            noise_sigma: 60.0,
            flares_per_year: 1.5,
            samples_per_day: 24,
        }
    }
}

/// The full fleet to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Systems to simulate.
    pub systems: Vec<SystemSpec>,
    /// Neutron-monitor curve.
    pub neutron: NeutronSpec,
}

impl FleetSpec {
    /// The LANL-scale fleet: the seven group-1 systems (ids 3, 4, 5, 6,
    /// 18, 19, 20), the three group-2 systems (ids 2, 16, 23) and
    /// system 8 (which, with system 20, carries a job log). Systems 18,
    /// 19 and 20 are the three largest (1024/1024/512 nodes); system 20
    /// also carries temperature sensors, as in the paper.
    pub fn lanl() -> Self {
        FleetSpec::lanl_scaled(1.0)
    }

    /// The LANL fleet with node counts and observation spans scaled by
    /// `scale` (for fast tests and examples). `scale = 1.0` is the full
    /// nine-year fleet.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn lanl_scaled(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let n = |full: u32, min: u32| ((full as f64 * scale) as u32).max(min);
        let d = |full: u32| ((full as f64 * scale.max(0.25)) as u32).max(365);
        let mut systems = vec![
            SystemSpec::smp(3, n(128, 8), d(1400)),
            SystemSpec::smp(4, n(164, 8), d(1600)),
            SystemSpec::smp(5, n(256, 10), d(2000)),
            SystemSpec::smp(6, n(128, 8), d(1300)),
            SystemSpec::smp(18, n(1024, 20), d(2200)),
            SystemSpec::smp(19, n(1024, 20), d(2500)),
            SystemSpec::smp(20, n(512, 16), d(3000)),
            SystemSpec::smp(8, n(256, 12), d(2800)),
            SystemSpec::numa(2, n(49, 6), d(3200)),
            SystemSpec::numa(16, n(16, 4), d(1800)),
            SystemSpec::numa(23, n(5, 3), d(1200)),
        ];
        for spec in &mut systems {
            match spec.id {
                8 => {
                    spec.workload = Some(WorkloadSpec {
                        jobs_per_day: (763_293.0 / spec.days as f64).min(300.0),
                        ..WorkloadSpec::default()
                    });
                }
                20 => {
                    spec.workload = Some(WorkloadSpec {
                        jobs_per_day: (477_206.0 / spec.days as f64).min(200.0),
                        ..WorkloadSpec::default()
                    });
                    spec.temperature = Some(TemperatureSpec::default());
                }
                _ => {}
            }
        }
        FleetSpec {
            systems,
            neutron: NeutronSpec::default(),
        }
    }

    /// A small fleet (two SMP systems, one NUMA system, ~2 simulated
    /// years) for tests, examples and doc tests.
    pub fn demo() -> Self {
        let mut sys20 = SystemSpec::smp(20, 64, 730);
        sys20.workload = Some(WorkloadSpec {
            users: 60,
            jobs_per_day: 40.0,
            ..WorkloadSpec::default()
        });
        sys20.temperature = Some(TemperatureSpec::default());
        let sys18 = SystemSpec::smp(18, 64, 730);
        let sys2 = SystemSpec::numa(2, 12, 730);
        FleetSpec {
            systems: vec![sys18, sys20, sys2],
            neutron: NeutronSpec::default(),
        }
    }

    /// Looks up a system spec by id.
    pub fn system(&self, id: u16) -> Option<&SystemSpec> {
        self.systems.iter().find(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let hw: f64 = hw_component_shares().iter().map(|(_, s)| s).sum();
        assert!((hw - 1.0).abs() < 1e-9);
        let sw: f64 = sw_cause_shares().iter().map(|(_, s)| s).sum();
        assert!((sw - 1.0).abs() < 1e-9);
    }

    #[test]
    fn group_rate_gap() {
        let smp = SystemSpec::smp(3, 100, 1000);
        let numa = SystemSpec::numa(2, 10, 1000);
        // Group-2 per-node rates are roughly 15x group-1.
        let ratio = numa.rates.total() / smp.rates.total();
        assert!(ratio > 10.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn lanl_fleet_composition() {
        let fleet = FleetSpec::lanl();
        assert_eq!(fleet.systems.len(), 11);
        let group1 = fleet
            .systems
            .iter()
            .filter(|s| s.hardware == HardwareClass::Smp4Way && s.id != 8)
            .count();
        let group2 = fleet
            .systems
            .iter()
            .filter(|s| s.hardware == HardwareClass::Numa)
            .count();
        assert_eq!(group1, 7);
        assert_eq!(group2, 3);
        assert!(fleet.system(8).unwrap().workload.is_some());
        assert!(fleet.system(20).unwrap().workload.is_some());
        assert!(fleet.system(20).unwrap().temperature.is_some());
        assert!(fleet.system(18).unwrap().temperature.is_none());
    }

    #[test]
    fn scaling_shrinks_but_keeps_structure() {
        let s = FleetSpec::lanl_scaled(0.05);
        assert_eq!(s.systems.len(), 11);
        for spec in &s.systems {
            assert!(spec.nodes >= 3);
            assert!(spec.days >= 365);
        }
        let full = FleetSpec::lanl();
        assert!(s.system(18).unwrap().nodes < full.system(18).unwrap().nodes / 10);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn scale_validated() {
        let _ = FleetSpec::lanl_scaled(0.0);
    }

    #[test]
    fn config_conversion() {
        let spec = SystemSpec::smp(20, 512, 3000);
        let config = spec.to_config();
        assert_eq!(config.id, SystemId::new(20));
        assert_eq!(config.nodes, 512);
        assert_eq!(config.observation_days(), 3000);
        assert_eq!(config.group(), SystemGroup::Group1);
    }
}
