//! Declarative scenario packs: fleets as data, not code.
//!
//! A scenario is a JSON document (parsed with the workspace's std-only
//! [`hpcfail_obs::json`] reader) describing a fleet to simulate: a
//! name, a seed, and a list of systems that start from one of the two
//! calibrated templates ([`SystemSpec::smp`] / [`SystemSpec::numa`])
//! and override any generation parameter — base rates, event rates,
//! excitation, workload, temperature, and scripted [`Episode`]
//! elevations. New failure phenomenology (a 100k-node fleet, a
//! cascading power event, a firmware-rollout regression wave, a
//! network partition) is therefore a new data file, not new Rust.
//!
//! The parser is strict: unknown keys anywhere, negative rates, empty
//! or zero-node fleets, and out-of-range episodes are typed
//! [`ScenarioError`]s, never panics. [`Scenario::canonical`]
//! re-serializes the *effective* parameters (template + overrides) in
//! a stable key order, so `parse(canonical(s)) == s` and
//! `canonical(parse(canonical(s))) == canonical(s)` byte-for-byte.
//!
//! Four packs ship with the crate ([`builtin_names`]); `hpcfail-serve
//! serve --scenario`, `repro --scenario` and `hpcfail-load` all accept
//! either a pack name or a path to a scenario file.

use crate::sim::GeneratedFleet;
use crate::spec::{
    BaseRates, Episode, EventRates, ExcessCaps, FleetSpec, NeutronSpec, Node0Spec, SystemSpec,
    TemperatureSpec, WorkloadSpec,
};
use hpcfail_obs::json::Json;
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// The scenario schema version this parser understands.
pub const SCENARIO_VERSION: u64 = 1;

/// Seeds must stay exactly representable in the JSON number model
/// (f64), so round-tripping a scenario can never change its fleet.
const MAX_SEED: u64 = 1 << 53;

/// A malformed or invalid scenario document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The document is not valid JSON.
    Json(String),
    /// A value is missing, mistyped or out of range. `path` names the
    /// offending location (e.g. `systems[2].episodes[0].multiplier`).
    Schema {
        /// Where in the document the problem is.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// An object contains a key the schema does not define — usually a
    /// typo that would otherwise silently fall back to a default.
    UnknownKey {
        /// The object containing the stray key.
        path: String,
        /// The stray key itself.
        key: String,
    },
    /// A scenario file could not be read.
    Io {
        /// The path that failed to load.
        path: String,
        /// The I/O error text.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(message) => write!(f, "scenario is not valid JSON: {message}"),
            ScenarioError::Schema { path, message } => {
                write!(f, "invalid scenario at {path}: {message}")
            }
            ScenarioError::UnknownKey { path, key } => {
                write!(f, "unknown key {key:?} in {path}")
            }
            ScenarioError::Io { path, message } => {
                write!(f, "cannot read scenario {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which calibrated baseline a scenario system starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// A group-1-style SMP system ([`SystemSpec::smp`]).
    Smp,
    /// A group-2-style NUMA system ([`SystemSpec::numa`]).
    Numa,
}

impl Template {
    /// The wire label (`"smp"` / `"numa"`).
    pub fn label(self) -> &'static str {
        match self {
            Template::Smp => "smp",
            Template::Numa => "numa",
        }
    }

    fn base(self, id: u16, nodes: u32, days: u32) -> SystemSpec {
        match self {
            Template::Smp => SystemSpec::smp(id, nodes, days),
            Template::Numa => SystemSpec::numa(id, nodes, days),
        }
    }
}

/// One system of a scenario: the template it starts from plus the
/// fully resolved generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSystem {
    /// The calibrated baseline the spec was built from.
    pub template: Template,
    /// The effective generation parameters.
    pub spec: SystemSpec,
}

/// A parsed scenario: a named, seeded fleet description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The scenario name (for humans and manifests).
    pub name: String,
    /// What the scenario models.
    pub description: String,
    /// The generation seed baked into the pack, so a pack always
    /// reproduces the same trace.
    pub seed: u64,
    /// The systems to simulate.
    pub systems: Vec<ScenarioSystem>,
    /// The neutron-monitor curve.
    pub neutron: NeutronSpec,
}

/// The scenario packs compiled into the crate, as `(name, JSON)`.
const BUILTIN_PACKS: &[(&str, &str)] = &[
    ("fleet-100k", include_str!("../packs/fleet-100k.json")),
    (
        "cascading-power",
        include_str!("../packs/cascading-power.json"),
    ),
    ("firmware-wave", include_str!("../packs/firmware-wave.json")),
    (
        "network-partition",
        include_str!("../packs/network-partition.json"),
    ),
];

/// Names of the packs compiled into the crate.
pub fn builtin_names() -> impl Iterator<Item = &'static str> {
    BUILTIN_PACKS.iter().map(|(name, _)| *name)
}

/// The JSON source of a builtin pack.
pub fn builtin_source(name: &str) -> Option<&'static str> {
    BUILTIN_PACKS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Loads a scenario by builtin pack name or file path.
///
/// # Errors
///
/// [`ScenarioError::Io`] when `name_or_path` is neither a builtin pack
/// nor a readable file, plus everything [`Scenario::parse`] reports.
pub fn load(name_or_path: &str) -> Result<Scenario, ScenarioError> {
    let source = match builtin_source(name_or_path) {
        Some(source) => source.to_owned(),
        None => std::fs::read_to_string(name_or_path).map_err(|e| ScenarioError::Io {
            path: name_or_path.to_owned(),
            message: e.to_string(),
        })?,
    };
    Scenario::parse(&source)
}

impl Scenario {
    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] on malformed JSON, unknown keys, missing
    /// fields, or out-of-range values.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let json =
            hpcfail_obs::json::parse(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
        let o = obj(&json, "scenario")?;
        known_keys(
            o,
            "scenario",
            &[
                "scenario",
                "version",
                "description",
                "seed",
                "systems",
                "neutron",
            ],
        )?;
        let version = require_u64(o, "scenario", "version")?;
        if version != SCENARIO_VERSION {
            return Err(schema(
                "scenario.version",
                format!("unsupported version {version}, expected {SCENARIO_VERSION}"),
            ));
        }
        let name = require_str(o, "scenario", "scenario")?;
        if name.is_empty() {
            return Err(schema("scenario.scenario", "name must not be empty"));
        }
        let description = opt_str(o, "scenario", "description")?.unwrap_or_default();
        let seed = require_u64(o, "scenario", "seed")?;
        if seed > MAX_SEED {
            return Err(schema(
                "scenario.seed",
                format!("seed must be at most 2^53 ({MAX_SEED}), got {seed}"),
            ));
        }
        let systems_json = match o.get("systems") {
            Some(Json::Arr(items)) => items,
            Some(_) => return Err(schema("scenario.systems", "must be an array")),
            None => return Err(schema("scenario", "missing field systems")),
        };
        if systems_json.is_empty() {
            return Err(schema("scenario.systems", "must list at least one system"));
        }
        let mut systems = Vec::with_capacity(systems_json.len());
        for (i, item) in systems_json.iter().enumerate() {
            systems.push(parse_system(item, &format!("systems[{i}]"))?);
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &systems {
            if !seen.insert(s.spec.id) {
                return Err(schema(
                    "scenario.systems",
                    format!("duplicate system id {}", s.spec.id),
                ));
            }
        }
        let neutron = match o.get("neutron") {
            Some(j) => parse_neutron(j, "neutron")?,
            None => NeutronSpec::default(),
        };
        Ok(Scenario {
            name: name.to_owned(),
            description,
            seed,
            systems,
            neutron,
        })
    }

    /// The fleet this scenario describes.
    pub fn fleet(&self) -> FleetSpec {
        FleetSpec {
            systems: self.systems.iter().map(|s| s.spec.clone()).collect(),
            neutron: self.neutron,
        }
    }

    /// Generates the scenario's trace with its baked-in seed.
    pub fn generate(&self) -> GeneratedFleet {
        self.fleet().generate(self.seed)
    }

    /// Serializes the scenario with every *effective* parameter spelled
    /// out, in stable (sorted) key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.name.clone())),
            ("version", Json::Num(SCENARIO_VERSION as f64)),
            ("description", Json::Str(self.description.clone())),
            ("seed", num_u64(self.seed)),
            (
                "systems",
                Json::Arr(self.systems.iter().map(system_to_json).collect()),
            ),
            ("neutron", neutron_to_json(&self.neutron)),
        ])
    }

    /// The canonical text form: [`Scenario::to_json`] pretty-printed.
    /// Parsing the canonical form yields an equal scenario, and
    /// re-canonicalizing it reproduces the same bytes.
    pub fn canonical(&self) -> String {
        self.to_json().pretty()
    }
}

fn schema(path: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema {
        path: path.into(),
        message: message.into(),
    }
}

fn obj<'a>(json: &'a Json, path: &str) -> Result<&'a BTreeMap<String, Json>, ScenarioError> {
    match json {
        Json::Obj(map) => Ok(map),
        _ => Err(schema(path, "must be an object")),
    }
}

fn known_keys(
    map: &BTreeMap<String, Json>,
    path: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                path: path.to_owned(),
                key: key.clone(),
            });
        }
    }
    Ok(())
}

fn require_str<'a>(
    map: &'a BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<&'a str, ScenarioError> {
    match map.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(schema(format!("{path}.{key}"), "must be a string")),
        None => Err(schema(path, format!("missing field {key}"))),
    }
}

fn opt_str(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<String>, ScenarioError> {
    match map.get(key) {
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(schema(format!("{path}.{key}"), "must be a string")),
        None => Ok(None),
    }
}

fn require_u64(map: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<u64, ScenarioError> {
    match map.get(key) {
        Some(v) => v.as_u64().ok_or_else(|| {
            schema(
                format!("{path}.{key}"),
                "must be a non-negative whole number",
            )
        }),
        None => Err(schema(path, format!("missing field {key}"))),
    }
}

fn opt_u64(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<u64>, ScenarioError> {
    match map.get(key) {
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            schema(
                format!("{path}.{key}"),
                "must be a non-negative whole number",
            )
        }),
        None => Ok(None),
    }
}

/// A finite, non-negative number.
fn opt_rate(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<f64>, ScenarioError> {
    match map.get(key) {
        Some(v) => match v.as_f64() {
            Some(n) if n.is_finite() && n >= 0.0 => Ok(Some(n)),
            _ => Err(schema(
                format!("{path}.{key}"),
                "must be a finite non-negative number",
            )),
        },
        None => Ok(None),
    }
}

/// A finite, strictly positive number.
fn opt_positive(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<f64>, ScenarioError> {
    match opt_rate(map, path, key)? {
        Some(n) if n > 0.0 => Ok(Some(n)),
        Some(_) => Err(schema(format!("{path}.{key}"), "must be greater than zero")),
        None => Ok(None),
    }
}

/// A number in `[0, 1]`.
fn opt_fraction(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<f64>, ScenarioError> {
    match opt_rate(map, path, key)? {
        Some(n) if n <= 1.0 => Ok(Some(n)),
        Some(_) => Err(schema(format!("{path}.{key}"), "must be between 0 and 1")),
        None => Ok(None),
    }
}

fn opt_bool(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<Option<bool>, ScenarioError> {
    match map.get(key) {
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(schema(format!("{path}.{key}"), "must be a boolean")),
        None => Ok(None),
    }
}

/// An inclusive `[first, last]` range encoded as a two-element array.
fn range_field(
    map: &BTreeMap<String, Json>,
    path: &str,
    key: &str,
) -> Result<(u32, u32), ScenarioError> {
    let field = format!("{path}.{key}");
    let items = match map.get(key) {
        Some(Json::Arr(items)) if items.len() == 2 => items,
        Some(_) => return Err(schema(field, "must be a two-element [first, last] array")),
        None => return Err(schema(path, format!("missing field {key}"))),
    };
    let mut bounds = [0u32; 2];
    for (i, item) in items.iter().enumerate() {
        bounds[i] = item
            .as_u64()
            .filter(|&n| n <= u64::from(u32::MAX))
            .ok_or_else(|| schema(&field, "entries must be non-negative whole numbers"))?
            as u32;
    }
    if bounds[0] > bounds[1] {
        return Err(schema(field, "first must not exceed last"));
    }
    Ok((bounds[0], bounds[1]))
}

fn parse_system(json: &Json, path: &str) -> Result<ScenarioSystem, ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &[
            "id",
            "template",
            "name",
            "nodes",
            "days",
            "procs_per_node",
            "rates",
            "frailty_shape",
            "node0",
            "events",
            "undetermined_fraction",
            "workload",
            "temperature",
            "has_layout",
            "cpu_soft_fraction",
            "excitation_scale",
            "excess_caps",
            "event_peak_scale",
            "episodes",
        ],
    )?;
    let id = require_u64(o, path, "id")?;
    if id > u64::from(u16::MAX) {
        return Err(schema(format!("{path}.id"), "must fit in 16 bits"));
    }
    let template = match require_str(o, path, "template")? {
        "smp" => Template::Smp,
        "numa" => Template::Numa,
        other => {
            return Err(schema(
                format!("{path}.template"),
                format!("unknown template {other:?}, expected smp or numa"),
            ))
        }
    };
    let nodes = require_u64(o, path, "nodes")?;
    if nodes == 0 {
        return Err(schema(
            format!("{path}.nodes"),
            "must have at least one node",
        ));
    }
    if nodes > u64::from(u32::MAX) {
        return Err(schema(format!("{path}.nodes"), "must fit in 32 bits"));
    }
    let days = require_u64(o, path, "days")?;
    if days == 0 {
        return Err(schema(
            format!("{path}.days"),
            "must observe at least one day",
        ));
    }
    if days > u64::from(u32::MAX) {
        return Err(schema(format!("{path}.days"), "must fit in 32 bits"));
    }

    let mut spec = template.base(id as u16, nodes as u32, days as u32);
    if let Some(name) = opt_str(o, path, "name")? {
        if name.is_empty() {
            return Err(schema(format!("{path}.name"), "must not be empty"));
        }
        spec.name = name;
    }
    if let Some(procs) = opt_u64(o, path, "procs_per_node")? {
        if procs == 0 || procs > u64::from(u32::MAX) {
            return Err(schema(
                format!("{path}.procs_per_node"),
                "must be a positive 32-bit count",
            ));
        }
        spec.procs_per_node = procs as u32;
    }
    if let Some(rates) = o.get("rates") {
        parse_rates(rates, &format!("{path}.rates"), &mut spec.rates)?;
    }
    if let Some(v) = opt_positive(o, path, "frailty_shape")? {
        spec.frailty_shape = v;
    }
    if let Some(node0) = o.get("node0") {
        parse_node0(node0, &format!("{path}.node0"), &mut spec.node0)?;
    }
    if let Some(events) = o.get("events") {
        parse_events(events, &format!("{path}.events"), &mut spec.events)?;
    }
    if let Some(v) = opt_fraction(o, path, "undetermined_fraction")? {
        spec.undetermined_fraction = v;
    }
    if let Some(workload) = o.get("workload") {
        spec.workload = Some(parse_workload(workload, &format!("{path}.workload"))?);
    }
    if let Some(temperature) = o.get("temperature") {
        spec.temperature = Some(parse_temperature(
            temperature,
            &format!("{path}.temperature"),
        )?);
    }
    if let Some(v) = opt_bool(o, path, "has_layout")? {
        spec.has_layout = v;
    }
    if let Some(v) = opt_fraction(o, path, "cpu_soft_fraction")? {
        spec.cpu_soft_fraction = v;
    }
    if let Some(v) = opt_rate(o, path, "excitation_scale")? {
        spec.excitation_scale = v;
    }
    if let Some(caps) = o.get("excess_caps") {
        parse_caps(caps, &format!("{path}.excess_caps"), &mut spec.excess_caps)?;
    }
    if let Some(v) = opt_rate(o, path, "event_peak_scale")? {
        spec.event_peak_scale = v;
    }
    if let Some(episodes) = o.get("episodes") {
        let Json::Arr(items) = episodes else {
            return Err(schema(format!("{path}.episodes"), "must be an array"));
        };
        for (i, item) in items.iter().enumerate() {
            spec.episodes.push(parse_episode(
                item,
                &format!("{path}.episodes[{i}]"),
                spec.nodes,
                spec.days,
            )?);
        }
    }
    Ok(ScenarioSystem { template, spec })
}

fn parse_rates(json: &Json, path: &str, rates: &mut BaseRates) -> Result<(), ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &["hardware", "software", "network", "human", "environment"],
    )?;
    for (key, slot) in [
        ("hardware", &mut rates.hardware),
        ("software", &mut rates.software),
        ("network", &mut rates.network),
        ("human", &mut rates.human),
        ("environment", &mut rates.environment),
    ] {
        if let Some(v) = opt_rate(o, path, key)? {
            *slot = v;
        }
    }
    Ok(())
}

fn parse_node0(json: &Json, path: &str, node0: &mut Node0Spec) -> Result<(), ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &[
            "environment",
            "network",
            "software",
            "hardware",
            "human",
            "logs_cluster_events",
        ],
    )?;
    for (key, slot) in [
        ("environment", &mut node0.environment),
        ("network", &mut node0.network),
        ("software", &mut node0.software),
        ("hardware", &mut node0.hardware),
        ("human", &mut node0.human),
    ] {
        if let Some(v) = opt_rate(o, path, key)? {
            *slot = v;
        }
    }
    if let Some(v) = opt_fraction(o, path, "logs_cluster_events")? {
        node0.logs_cluster_events = v;
    }
    Ok(())
}

fn parse_events(json: &Json, path: &str, events: &mut EventRates) -> Result<(), ScenarioError> {
    let o = obj(json, path)?;
    known_keys(o, path, &["power_outage", "power_spike", "ups", "chiller"])?;
    for (key, slot) in [
        ("power_outage", &mut events.power_outage),
        ("power_spike", &mut events.power_spike),
        ("ups", &mut events.ups),
        ("chiller", &mut events.chiller),
    ] {
        if let Some(v) = opt_rate(o, path, key)? {
            *slot = v;
        }
    }
    Ok(())
}

fn parse_caps(json: &Json, path: &str, caps: &mut ExcessCaps) -> Result<(), ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &["environment", "hardware", "software", "network", "human"],
    )?;
    for (key, slot) in [
        ("environment", &mut caps.environment),
        ("hardware", &mut caps.hardware),
        ("software", &mut caps.software),
        ("network", &mut caps.network),
        ("human", &mut caps.human),
    ] {
        if let Some(v) = opt_rate(o, path, key)? {
            *slot = v;
        }
    }
    Ok(())
}

fn parse_workload(json: &Json, path: &str) -> Result<WorkloadSpec, ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &[
            "users",
            "jobs_per_day",
            "mean_runtime_hours",
            "user_activity_shape",
            "user_risk_sigma",
            "node0_inclusion",
        ],
    )?;
    let mut spec = WorkloadSpec::default();
    if let Some(users) = opt_u64(o, path, "users")? {
        if users == 0 || users > u64::from(u32::MAX) {
            return Err(schema(
                format!("{path}.users"),
                "must be a positive 32-bit count",
            ));
        }
        spec.users = users as u32;
    }
    if let Some(v) = opt_rate(o, path, "jobs_per_day")? {
        spec.jobs_per_day = v;
    }
    if let Some(v) = opt_positive(o, path, "mean_runtime_hours")? {
        spec.mean_runtime_hours = v;
    }
    if let Some(v) = opt_positive(o, path, "user_activity_shape")? {
        spec.user_activity_shape = v;
    }
    if let Some(v) = opt_rate(o, path, "user_risk_sigma")? {
        spec.user_risk_sigma = v;
    }
    if let Some(v) = opt_fraction(o, path, "node0_inclusion")? {
        spec.node0_inclusion = v;
    }
    Ok(spec)
}

fn parse_temperature(json: &Json, path: &str) -> Result<TemperatureSpec, ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &[
            "samples_per_day",
            "base_celsius",
            "per_position",
            "noise_sigma",
        ],
    )?;
    let mut spec = TemperatureSpec::default();
    if let Some(samples) = opt_u64(o, path, "samples_per_day")? {
        if samples == 0 || samples > u64::from(u32::MAX) {
            return Err(schema(
                format!("{path}.samples_per_day"),
                "must be a positive 32-bit count",
            ));
        }
        spec.samples_per_day = samples as u32;
    }
    if let Some(v) = opt_rate(o, path, "base_celsius")? {
        spec.base_celsius = v;
    }
    if let Some(v) = opt_rate(o, path, "per_position")? {
        spec.per_position = v;
    }
    if let Some(v) = opt_rate(o, path, "noise_sigma")? {
        spec.noise_sigma = v;
    }
    Ok(spec)
}

fn parse_neutron(json: &Json, path: &str) -> Result<NeutronSpec, ScenarioError> {
    let o = obj(json, path)?;
    known_keys(
        o,
        path,
        &[
            "mean_counts",
            "cycle_amplitude",
            "cycle_days",
            "noise_sigma",
            "flares_per_year",
            "samples_per_day",
        ],
    )?;
    let mut spec = NeutronSpec::default();
    if let Some(v) = opt_positive(o, path, "mean_counts")? {
        spec.mean_counts = v;
    }
    if let Some(v) = opt_rate(o, path, "cycle_amplitude")? {
        spec.cycle_amplitude = v;
    }
    if let Some(v) = opt_positive(o, path, "cycle_days")? {
        spec.cycle_days = v;
    }
    if let Some(v) = opt_rate(o, path, "noise_sigma")? {
        spec.noise_sigma = v;
    }
    if let Some(v) = opt_rate(o, path, "flares_per_year")? {
        spec.flares_per_year = v;
    }
    if let Some(samples) = opt_u64(o, path, "samples_per_day")? {
        if samples == 0 || samples > u64::from(u32::MAX) {
            return Err(schema(
                format!("{path}.samples_per_day"),
                "must be a positive 32-bit count",
            ));
        }
        spec.samples_per_day = samples as u32;
    }
    Ok(spec)
}

fn channel_label(channel: RootCause) -> Option<&'static str> {
    match channel {
        RootCause::Hardware => Some("hardware"),
        RootCause::Software => Some("software"),
        RootCause::Network => Some("network"),
        RootCause::HumanError => Some("human"),
        RootCause::Environment => Some("environment"),
        RootCause::Undetermined => None,
    }
}

fn parse_episode(json: &Json, path: &str, nodes: u32, days: u32) -> Result<Episode, ScenarioError> {
    let o = obj(json, path)?;
    known_keys(o, path, &["days", "nodes", "channel", "multiplier"])?;
    let (first_day, last_day) = range_field(o, path, "days")?;
    if first_day >= days {
        return Err(schema(
            format!("{path}.days"),
            format!("starts on day {first_day}, past the {days}-day observation span"),
        ));
    }
    let (first_node, last_node) = range_field(o, path, "nodes")?;
    if last_node >= nodes {
        return Err(schema(
            format!("{path}.nodes"),
            format!("node {last_node} is outside the {nodes}-node system"),
        ));
    }
    let channel = match require_str(o, path, "channel")? {
        "hardware" => RootCause::Hardware,
        "software" => RootCause::Software,
        "network" => RootCause::Network,
        "human" => RootCause::HumanError,
        "environment" => RootCause::Environment,
        other => {
            return Err(schema(
                format!("{path}.channel"),
                format!(
                    "unknown channel {other:?}, expected hardware, software, network, human or environment"
                ),
            ))
        }
    };
    let multiplier = match opt_positive(o, path, "multiplier")? {
        Some(m) => m,
        None => return Err(schema(path, "missing field multiplier")),
    };
    Ok(Episode {
        first_day,
        last_day,
        first_node,
        last_node,
        channel,
        multiplier,
    })
}

fn num_u64(n: u64) -> Json {
    Json::Num(n as f64)
}

fn num_u32(n: u32) -> Json {
    Json::Num(f64::from(n))
}

fn system_to_json(system: &ScenarioSystem) -> Json {
    let spec = &system.spec;
    let mut fields = vec![
        ("id", num_u64(u64::from(spec.id))),
        ("template", Json::Str(system.template.label().to_owned())),
        ("name", Json::Str(spec.name.clone())),
        ("nodes", num_u32(spec.nodes)),
        ("days", num_u32(spec.days)),
        ("procs_per_node", num_u32(spec.procs_per_node)),
        (
            "rates",
            Json::obj([
                ("hardware", Json::Num(spec.rates.hardware)),
                ("software", Json::Num(spec.rates.software)),
                ("network", Json::Num(spec.rates.network)),
                ("human", Json::Num(spec.rates.human)),
                ("environment", Json::Num(spec.rates.environment)),
            ]),
        ),
        ("frailty_shape", Json::Num(spec.frailty_shape)),
        (
            "node0",
            Json::obj([
                ("environment", Json::Num(spec.node0.environment)),
                ("network", Json::Num(spec.node0.network)),
                ("software", Json::Num(spec.node0.software)),
                ("hardware", Json::Num(spec.node0.hardware)),
                ("human", Json::Num(spec.node0.human)),
                (
                    "logs_cluster_events",
                    Json::Num(spec.node0.logs_cluster_events),
                ),
            ]),
        ),
        (
            "events",
            Json::obj([
                ("power_outage", Json::Num(spec.events.power_outage)),
                ("power_spike", Json::Num(spec.events.power_spike)),
                ("ups", Json::Num(spec.events.ups)),
                ("chiller", Json::Num(spec.events.chiller)),
            ]),
        ),
        (
            "undetermined_fraction",
            Json::Num(spec.undetermined_fraction),
        ),
        ("has_layout", Json::Bool(spec.has_layout)),
        ("cpu_soft_fraction", Json::Num(spec.cpu_soft_fraction)),
        ("excitation_scale", Json::Num(spec.excitation_scale)),
        (
            "excess_caps",
            Json::obj([
                ("environment", Json::Num(spec.excess_caps.environment)),
                ("hardware", Json::Num(spec.excess_caps.hardware)),
                ("software", Json::Num(spec.excess_caps.software)),
                ("network", Json::Num(spec.excess_caps.network)),
                ("human", Json::Num(spec.excess_caps.human)),
            ]),
        ),
        ("event_peak_scale", Json::Num(spec.event_peak_scale)),
        (
            "episodes",
            Json::Arr(spec.episodes.iter().map(episode_to_json).collect()),
        ),
    ];
    if let Some(w) = &spec.workload {
        fields.push((
            "workload",
            Json::obj([
                ("users", num_u32(w.users)),
                ("jobs_per_day", Json::Num(w.jobs_per_day)),
                ("mean_runtime_hours", Json::Num(w.mean_runtime_hours)),
                ("user_activity_shape", Json::Num(w.user_activity_shape)),
                ("user_risk_sigma", Json::Num(w.user_risk_sigma)),
                ("node0_inclusion", Json::Num(w.node0_inclusion)),
            ]),
        ));
    }
    if let Some(t) = &spec.temperature {
        fields.push((
            "temperature",
            Json::obj([
                ("samples_per_day", num_u32(t.samples_per_day)),
                ("base_celsius", Json::Num(t.base_celsius)),
                ("per_position", Json::Num(t.per_position)),
                ("noise_sigma", Json::Num(t.noise_sigma)),
            ]),
        ));
    }
    Json::obj(fields)
}

fn episode_to_json(e: &Episode) -> Json {
    Json::obj([
        (
            "days",
            Json::Arr(vec![num_u32(e.first_day), num_u32(e.last_day)]),
        ),
        (
            "nodes",
            Json::Arr(vec![num_u32(e.first_node), num_u32(e.last_node)]),
        ),
        (
            "channel",
            Json::Str(channel_label(e.channel).unwrap_or("hardware").to_owned()),
        ),
        ("multiplier", Json::Num(e.multiplier)),
    ])
}

fn neutron_to_json(n: &NeutronSpec) -> Json {
    Json::obj([
        ("mean_counts", Json::Num(n.mean_counts)),
        ("cycle_amplitude", Json::Num(n.cycle_amplitude)),
        ("cycle_days", Json::Num(n.cycle_days)),
        ("noise_sigma", Json::Num(n.noise_sigma)),
        ("flares_per_year", Json::Num(n.flares_per_year)),
        ("samples_per_day", num_u32(n.samples_per_day)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses_with_template_defaults() {
        let s = Scenario::parse(
            r#"{
                "scenario": "mini",
                "version": 1,
                "seed": 7,
                "systems": [
                    {"id": 9, "template": "smp", "nodes": 4, "days": 30}
                ]
            }"#,
        )
        .expect("parses");
        assert_eq!(s.name, "mini");
        assert_eq!(s.seed, 7);
        let base = SystemSpec::smp(9, 4, 30);
        assert_eq!(s.systems[0].spec, base);
        assert_eq!(s.neutron, NeutronSpec::default());
    }

    #[test]
    fn canonical_is_a_fixpoint() {
        let s = Scenario::parse(
            r#"{
                "scenario": "mini",
                "version": 1,
                "seed": 7,
                "systems": [
                    {"id": 9, "template": "numa", "nodes": 4, "days": 30,
                     "rates": {"network": 0.5},
                     "episodes": [
                        {"days": [3, 9], "nodes": [0, 1],
                         "channel": "network", "multiplier": 12.5}
                     ]}
                ]
            }"#,
        )
        .expect("parses");
        let canon = s.canonical();
        let reparsed = Scenario::parse(&canon).expect("canonical parses");
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.canonical(), canon);
    }

    #[test]
    fn unknown_key_is_typed() {
        let err = Scenario::parse(
            r#"{"scenario": "x", "version": 1, "seed": 1, "bogus": true,
                "systems": [{"id": 1, "template": "smp", "nodes": 1, "days": 1}]}"#,
        )
        .expect_err("rejects");
        assert_eq!(
            err,
            ScenarioError::UnknownKey {
                path: "scenario".to_owned(),
                key: "bogus".to_owned(),
            }
        );
    }

    #[test]
    fn episodes_need_valid_ranges() {
        let err = Scenario::parse(
            r#"{"scenario": "x", "version": 1, "seed": 1,
                "systems": [{"id": 1, "template": "smp", "nodes": 4, "days": 10,
                  "episodes": [{"days": [0, 3], "nodes": [0, 9],
                                "channel": "hardware", "multiplier": 2}]}]}"#,
        )
        .expect_err("rejects");
        assert!(matches!(err, ScenarioError::Schema { .. }), "{err}");
    }
}
