//! Generate a clean CSV trace directory and/or damage one of its files
//! with a seed-deterministic mutation. The CI fault-injection smoke run
//! uses this to hand `repro --trace` a corrupted input with known
//! damage.

use hpcfail_store::csv::save_trace;
use hpcfail_synth::corrupt::{corrupt_file, MutationKind};
use hpcfail_synth::FleetSpec;
use std::process::ExitCode;

fn usage() -> String {
    "Usage: corrupt --out DIR [OPTIONS]\n\
     \n\
     Options:\n\
       --out DIR            trace directory to write or mutate (required)\n\
       --generate           generate a clean fleet trace into DIR first\n\
       --scale F            fleet scale for --generate (default 0.05)\n\
       --seed N             fleet seed for --generate (default 42)\n\
       --target FILE        trace file in DIR to corrupt (e.g. failures.csv)\n\
       --kind KIND          mutation: torn-final-line, swap-fields, garbage-utf8,\n\
                            duplicate-record, shuffle-timestamps, foreign-header\n\
       --mutation-seed N    seed for the mutation (default 7)\n\
       -h, --help           show this help\n\
     \n\
     With --target, prints one line per mutation:\n\
       corrupted FILE kind=KIND seed=N damaged_lines=[..] duplicates=BOOL out_of_order=BOOL\n"
        .to_owned()
}

struct Args {
    out: String,
    generate: bool,
    scale: f64,
    seed: u64,
    target: Option<String>,
    kind: Option<MutationKind>,
    mutation_seed: u64,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        out: String::new(),
        generate: false,
        scale: 0.05,
        seed: 42,
        target: None,
        kind: None,
        mutation_seed: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} requires a value\n\n{}", usage()))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out")?,
            "--generate" => args.generate = true,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--target" => args.target = Some(value("--target")?),
            "--kind" => args.kind = Some(value("--kind")?.parse()?),
            "--mutation-seed" => {
                args.mutation_seed = value("--mutation-seed")?
                    .parse()
                    .map_err(|e| format!("bad --mutation-seed: {e}"))?;
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{}", usage())),
        }
    }
    if args.out.is_empty() {
        return Err(format!("--out is required\n\n{}", usage()));
    }
    if args.target.is_some() != args.kind.is_some() {
        return Err("--target and --kind must be given together".to_owned());
    }
    if !args.generate && args.target.is_none() {
        return Err(format!(
            "nothing to do: pass --generate and/or --target\n\n{}",
            usage()
        ));
    }
    Ok(Some(args))
}

fn run(args: Args) -> Result<(), String> {
    if args.generate {
        let trace = FleetSpec::lanl_scaled(args.scale)
            .generate(args.seed)
            .into_store();
        std::fs::create_dir_all(&args.out).map_err(|e| format!("creating {}: {e}", args.out))?;
        save_trace(&args.out, &trace).map_err(|e| format!("saving trace: {e}"))?;
        println!(
            "generated {} (scale {}, seed {})",
            args.out, args.scale, args.seed
        );
    }
    if let (Some(target), Some(kind)) = (args.target, args.kind) {
        let path = std::path::Path::new(&args.out).join(&target);
        let report = corrupt_file(&path, kind, args.mutation_seed)
            .map_err(|e| format!("corrupting {}: {e}", path.display()))?;
        if !report.changed {
            return Err(format!(
                "{target}: no opportunity for {kind} (file too small?)"
            ));
        }
        println!(
            "corrupted {target} kind={kind} seed={} damaged_lines={:?} duplicates={} out_of_order={}",
            report.seed, report.damaged_lines, report.expect_duplicates, report.expect_out_of_order
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(Some(args)) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("corrupt: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("corrupt: {e}");
            ExitCode::FAILURE
        }
    }
}
