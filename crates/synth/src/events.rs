//! Cluster-level power/cooling events and the hazard modifiers they
//! leave behind.
//!
//! Section VII of the paper studies four power-problem triggers (power
//! outage, power spike, UPS failure, power-supply-unit failure) plus the
//! fan/chiller temperature triggers of Section VIII. Each event here
//! (a) logs environment failures on some affected nodes, (b) elevates
//! specific hardware-component and software-subsystem hazards for the
//! following month with a decaying profile, and (c) may trigger
//! unscheduled hardware maintenance.

use hpcfail_types::prelude::*;
use rand::Rng;

/// The cluster-level event kinds the generator simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterEventKind {
    /// Facility power outage (system-wide).
    PowerOutage,
    /// Power spike (system-wide).
    PowerSpike,
    /// UPS failure (one rack zone).
    UpsFailure,
    /// Chiller failure (one machine-room region).
    ChillerFailure,
}

impl ClusterEventKind {
    /// The environment sub-cause recorded for failures this event logs.
    pub fn env_cause(self) -> EnvironmentCause {
        match self {
            ClusterEventKind::PowerOutage => EnvironmentCause::PowerOutage,
            ClusterEventKind::PowerSpike => EnvironmentCause::PowerSpike,
            ClusterEventKind::UpsFailure => EnvironmentCause::Ups,
            ClusterEventKind::ChillerFailure => EnvironmentCause::Chiller,
        }
    }

    /// Probability that a node *in the record zone* logs an ENV failure
    /// record at event time. The record zone is a few racks, so the
    /// fleet-wide share of environment failures stays near LANL's ~2%
    /// while preserving the same-time/same-rack clustering of Fig. 12.
    pub fn env_record_probability(self) -> f64 {
        match self {
            ClusterEventKind::PowerOutage => 0.60,
            ClusterEventKind::PowerSpike => 0.22,
            ClusterEventKind::UpsFailure => 0.22,
            ClusterEventKind::ChillerFailure => 0.08,
        }
    }

    /// Probability an affected node needs unscheduled hardware
    /// maintenance within the following month (Section VII-A.2: ~25%
    /// after outages/spikes, 28% after UPS failures).
    pub fn maintenance_probability(self) -> f64 {
        match self {
            ClusterEventKind::PowerOutage => 0.25,
            ClusterEventKind::PowerSpike => 0.25,
            ClusterEventKind::UpsFailure => 0.28,
            ClusterEventKind::ChillerFailure => 0.02,
        }
    }

    /// Peak hazard multipliers per hardware component (Figure 10 right,
    /// Figure 13 right). CPUs are never elevated — the paper finds no
    /// power or temperature effect on CPU failures.
    pub fn hw_elevations(self) -> &'static [(HardwareComponent, f64)] {
        use HardwareComponent::*;
        match self {
            ClusterEventKind::PowerOutage => {
                &[(PowerSupply, 20.0), (NodeBoard, 16.0), (MemoryDimm, 5.0)]
            }
            ClusterEventKind::PowerSpike => {
                &[(PowerSupply, 17.0), (MemoryDimm, 14.0), (NodeBoard, 10.0)]
            }
            ClusterEventKind::UpsFailure => &[(NodeBoard, 27.0), (MemoryDimm, 9.0)],
            ClusterEventKind::ChillerFailure => &[(MemoryDimm, 5.3), (NodeBoard, 10.8)],
        }
    }

    /// Peak hazard multipliers per software sub-cause (Figure 11 right:
    /// storage software — DST, PFS, CFS — dominates after power
    /// problems).
    pub fn sw_elevations(self) -> &'static [(SoftwareCause, f64)] {
        use SoftwareCause::*;
        match self {
            ClusterEventKind::PowerOutage => &[
                (Dst, 45.0),
                (Pfs, 14.0),
                (Cfs, 10.0),
                (Os, 3.0),
                (Other, 3.0),
            ],
            ClusterEventKind::PowerSpike => &[(Dst, 14.0), (Pfs, 7.0), (Cfs, 5.0), (Other, 2.0)],
            ClusterEventKind::UpsFailure => &[(Dst, 28.0), (Pfs, 9.0), (Cfs, 7.0)],
            ClusterEventKind::ChillerFailure => &[],
        }
    }
}

/// One cluster-level event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterEvent {
    /// What happened.
    pub kind: ClusterEventKind,
    /// Day index (relative to the system's start).
    pub day: u32,
    /// Exact event time within the day.
    pub time: Timestamp,
    /// Affected node-index range `[start, end)`: the scope of the
    /// hazard elevation (events hit contiguous zones/regions of the
    /// machine room).
    pub affected: (u32, u32),
    /// Node-index range `[start, end)` whose nodes may log an ENV
    /// failure record at event time — the nodes that actually crashed.
    /// Always a (small) sub-range of `affected`.
    pub record_zone: (u32, u32),
}

impl ClusterEvent {
    /// `true` if the node is in the affected range.
    pub fn affects(&self, node: NodeId) -> bool {
        let n = node.raw();
        self.affected.0 <= n && n < self.affected.1
    }

    /// `true` if the node may log an ENV record for this event.
    pub fn in_record_zone(&self, node: NodeId) -> bool {
        let n = node.raw();
        self.record_zone.0 <= n && n < self.record_zone.1
    }
}

/// Generates the event timeline for a system with `nodes` nodes over
/// `days` days, given per-day rates.
pub fn generate_events<R: Rng + ?Sized>(
    rng: &mut R,
    rates: &crate::spec::EventRates,
    nodes: u32,
    days: u32,
) -> Vec<ClusterEvent> {
    let mut events = Vec::new();
    let kinds = [
        (ClusterEventKind::PowerOutage, rates.power_outage),
        (ClusterEventKind::PowerSpike, rates.power_spike),
        (ClusterEventKind::UpsFailure, rates.ups),
        (ClusterEventKind::ChillerFailure, rates.chiller),
    ];
    // Outages and UPS failures strike the same weak spots repeatedly
    // (the paper's Fig. 12: outages/UPS correlate across nodes and over
    // time, spikes look random); remember the last zone per kind.
    // Node range + rack range of the zone an event kind last struck.
    type StickyZone = ((u32, u32), (u32, u32));
    let mut sticky: [Option<StickyZone>; 4] = [None; 4];
    for day in 0..days {
        for (k, &(kind, rate)) in kinds.iter().enumerate() {
            if rng.gen_range(0.0..1.0) < rate {
                let is_sticky_kind = matches!(
                    kind,
                    ClusterEventKind::PowerOutage | ClusterEventKind::UpsFailure
                );
                let (affected, zone) = match sticky[k] {
                    Some(prev) if is_sticky_kind && rng.gen_range(0.0..1.0) < 0.55 => prev,
                    _ => {
                        let affected = affected_range(rng, kind, nodes);
                        (affected, record_zone(rng, affected))
                    }
                };
                sticky[k] = Some((affected, zone));
                let second = rng.gen_range(0..86_400i64);
                events.push(ClusterEvent {
                    kind,
                    day,
                    time: Timestamp::from_seconds(day as i64 * 86_400 + second),
                    affected,
                    record_zone: zone,
                });
            }
        }
    }
    events
}

/// A contiguous slice of the affected range whose nodes actually crash
/// and log ENV records. The width scales with system size (about three
/// racks on a 1024-node system) so large systems log proportionally
/// more environment failures, as in the LANL release.
fn record_zone<R: Rng + ?Sized>(rng: &mut R, affected: (u32, u32)) -> (u32, u32) {
    let span = affected.1 - affected.0;
    let width = (span * 3 / 200).clamp(2, 15).min(span.max(1));
    let start = if span > width {
        affected.0 + rng.gen_range(0..=(span - width))
    } else {
        affected.0
    };
    (start, start + width)
}

/// Outages and spikes hit the whole system; UPS failures hit one third
/// of the node range (a UPS zone); chiller failures hit one half (a
/// machine-room region).
fn affected_range<R: Rng + ?Sized>(rng: &mut R, kind: ClusterEventKind, nodes: u32) -> (u32, u32) {
    match kind {
        ClusterEventKind::PowerOutage | ClusterEventKind::PowerSpike => (0, nodes),
        ClusterEventKind::UpsFailure => {
            let zone = (nodes / 3).max(1);
            let start = rng.gen_range(0..3.min(nodes)) * zone;
            (start, (start + zone).min(nodes))
        }
        ClusterEventKind::ChillerFailure => {
            let region = (nodes / 2).max(1);
            let start = rng.gen_range(0..2.min(nodes)) * region;
            (start, (start + region).min(nodes))
        }
    }
}

/// A hazard modifier attached to one node: elevates one target channel
/// for a month after an event, with an exponentially decaying profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Modifier {
    /// Day the modifier started.
    pub start_day: u32,
    /// Days it stays active (30 = the paper's month).
    pub duration_days: u32,
    /// Peak multiplier at age zero.
    pub peak: f64,
    /// Exponential decay constant in days for the excess over 1.
    pub decay_days: f64,
    /// Which channel it elevates.
    pub target: ModifierTarget,
}

/// The channel a [`Modifier`] elevates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModifierTarget {
    /// One hardware component's hazard.
    Hw(HardwareComponent),
    /// One software sub-cause's hazard.
    Sw(SoftwareCause),
}

impl Modifier {
    /// Standard month-long modifier with the default 12-day decay.
    pub fn month(start_day: u32, target: ModifierTarget, peak: f64) -> Self {
        Modifier {
            start_day,
            duration_days: 30,
            peak,
            decay_days: 12.0,
            target,
        }
    }

    /// The multiplier contributed on `day` (1.0 when inactive).
    pub fn multiplier(&self, day: u32) -> f64 {
        if day < self.start_day || day >= self.start_day + self.duration_days {
            return 1.0;
        }
        let age = (day - self.start_day) as f64;
        1.0 + (self.peak - 1.0) * (-age / self.decay_days).exp()
    }

    /// `true` once the modifier can be dropped.
    pub fn expired(&self, day: u32) -> bool {
        day >= self.start_day + self.duration_days
    }

    /// Returns a copy with the peak compressed towards 1:
    /// `peak_eff = 1 + (peak - 1) * scale`.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.peak = 1.0 + (self.peak - 1.0) * scale;
        self
    }
}

/// Same-component re-arm after a hardware failure: hard errors repeat,
/// so the failed component's own hazard stays elevated for the next
/// month (Section III-A.4: the week after a memory failure the
/// probability of another memory failure rises ~100x). Power supplies
/// and fans have richer cascades ([`psu_cascade`], [`fan_cascade`]).
pub fn component_rearm(day: u32, component: HardwareComponent) -> Modifier {
    use HardwareComponent::*;
    let peak = match component {
        MemoryDimm => 150.0,
        NodeBoard => 120.0,
        MscBoard | Midplane => 120.0,
        Cpu => 100.0,
        Nic | Disk => 100.0,
        Other => 80.0,
        // Handled by their cascades, but keep a sane value.
        PowerSupply => 40.0,
        Fan => 120.0,
    };
    Modifier {
        start_day: day,
        duration_days: 30,
        peak,
        decay_days: 5.0,
        target: ModifierTarget::Hw(component),
    }
}

/// Node-local degradation cascade after a power-supply-unit failure
/// (Figure 10: fans 46x, power supplies 41x, node boards 28x, memory
/// 14x in the following month).
pub fn psu_cascade(day: u32) -> Vec<Modifier> {
    use HardwareComponent::*;
    [
        (Fan, 46.0),
        (PowerSupply, 40.0),
        (NodeBoard, 28.0),
        (MemoryDimm, 14.0),
    ]
    .into_iter()
    .map(|(c, peak)| Modifier::month(day, ModifierTarget::Hw(c), peak))
    .chain(
        [(SoftwareCause::Dst, 10.0), (SoftwareCause::Pfs, 5.0)]
            .into_iter()
            .map(|(c, peak)| Modifier::month(day, ModifierTarget::Sw(c), peak)),
    )
    .collect()
}

/// Node-local cascade after a fan failure (Figure 13: fans 120x, MSC
/// boards ~106x, midplanes ~100x, node boards/memory/power supplies
/// 10-20x). The node also sees a temperature excursion, handled by the
/// temperature sampler.
pub fn fan_cascade(day: u32) -> Vec<Modifier> {
    use HardwareComponent::*;
    [
        (Fan, 120.0),
        (MscBoard, 105.0),
        (Midplane, 100.0),
        (NodeBoard, 20.0),
        (PowerSupply, 18.0),
        (MemoryDimm, 11.0),
    ]
    .into_iter()
    .map(|(c, peak)| Modifier::month(day, ModifierTarget::Hw(c), peak))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cpus_never_elevated() {
        for kind in [
            ClusterEventKind::PowerOutage,
            ClusterEventKind::PowerSpike,
            ClusterEventKind::UpsFailure,
            ClusterEventKind::ChillerFailure,
        ] {
            assert!(kind
                .hw_elevations()
                .iter()
                .all(|(c, _)| *c != HardwareComponent::Cpu));
        }
        assert!(psu_cascade(0)
            .iter()
            .all(|m| m.target != ModifierTarget::Hw(HardwareComponent::Cpu)));
        assert!(fan_cascade(0)
            .iter()
            .all(|m| m.target != ModifierTarget::Hw(HardwareComponent::Cpu)));
    }

    #[test]
    fn storage_software_dominates_power_sw_effects() {
        let dst = ClusterEventKind::PowerOutage
            .sw_elevations()
            .iter()
            .find(|(c, _)| *c == SoftwareCause::Dst)
            .unwrap()
            .1;
        let os = ClusterEventKind::PowerOutage
            .sw_elevations()
            .iter()
            .find(|(c, _)| *c == SoftwareCause::Os)
            .map_or(1.0, |p| p.1);
        assert!(dst > 5.0 * os);
    }

    #[test]
    fn modifier_profile_decays() {
        let m = Modifier::month(10, ModifierTarget::Hw(HardwareComponent::Fan), 46.0);
        assert_eq!(m.multiplier(9), 1.0);
        assert_eq!(m.multiplier(10), 46.0);
        assert!(m.multiplier(15) < 46.0);
        assert!(m.multiplier(15) > m.multiplier(25));
        assert_eq!(m.multiplier(40), 1.0);
        assert!(m.expired(40));
        assert!(!m.expired(39));
    }

    #[test]
    fn event_generation_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let rates = crate::spec::EventRates {
            power_outage: 0.05,
            power_spike: 0.02,
            ups: 0.03,
            chiller: 0.01,
        };
        let events = generate_events(&mut rng, &rates, 90, 5000);
        let outages = events
            .iter()
            .filter(|e| e.kind == ClusterEventKind::PowerOutage)
            .count();
        // Expect ~250 outages; allow generous slack.
        assert!(outages > 180 && outages < 330, "outages {outages}");
        // Outages hit everything; UPS zones are proper subsets.
        for e in &events {
            match e.kind {
                ClusterEventKind::PowerOutage | ClusterEventKind::PowerSpike => {
                    assert_eq!(e.affected, (0, 90));
                }
                ClusterEventKind::UpsFailure => {
                    assert!(e.affected.1 - e.affected.0 <= 30);
                }
                ClusterEventKind::ChillerFailure => {
                    assert!(e.affected.1 - e.affected.0 <= 45);
                }
            }
            assert_eq!(e.time.day_index(), e.day as i64);
        }
    }

    #[test]
    fn affects_respects_range() {
        let e = ClusterEvent {
            kind: ClusterEventKind::UpsFailure,
            day: 0,
            time: Timestamp::EPOCH,
            affected: (10, 20),
            record_zone: (10, 15),
        };
        assert!(e.affects(NodeId::new(10)));
        assert!(e.affects(NodeId::new(19)));
        assert!(!e.affects(NodeId::new(20)));
        assert!(!e.affects(NodeId::new(0)));
    }

    #[test]
    fn tiny_system_ranges_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let rates = crate::spec::EventRates {
            power_outage: 0.5,
            power_spike: 0.5,
            ups: 0.5,
            chiller: 0.5,
        };
        for nodes in [1u32, 2, 3] {
            let events = generate_events(&mut rng, &rates, nodes, 200);
            for e in events {
                assert!(e.affected.0 < e.affected.1, "empty range for {nodes} nodes");
                assert!(e.affected.1 <= nodes);
            }
        }
    }
}
