//! Property-based tests for the statistics substrate.

use hpcfail_stats::corr::{pearson, spearman};
use hpcfail_stats::dist::{ChiSquared, Distribution, Normal, Poisson, StudentT};
use hpcfail_stats::glm::{Family, GlmModel};
use hpcfail_stats::linalg::Matrix;
use hpcfail_stats::proportion::Proportion;
use hpcfail_stats::special::{
    digamma, ln_gamma, reg_beta, reg_gamma_p, reg_gamma_q, standard_normal_cdf,
};
use hpcfail_stats::summary::{quantile, ranks, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gamma_pq_complement(a in 0.05f64..50.0, x in 0.0f64..100.0) {
        let sum = reg_gamma_p(a, x) + reg_gamma_q(a, x);
        prop_assert!((sum - 1.0).abs() < 1e-9, "P + Q = {sum}");
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.01f64..5.0) {
        prop_assert!(reg_gamma_p(a, x + dx) >= reg_gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..80.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn digamma_increasing(x in 0.1f64..50.0, dx in 0.01f64..5.0) {
        prop_assert!(digamma(x + dx) > digamma(x));
    }

    #[test]
    fn beta_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..1.0) {
        let lhs = reg_beta(a, b, x);
        let rhs = 1.0 - reg_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_bounds_and_symmetry(x in -8.0f64..8.0) {
        let p = standard_normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + standard_normal_cdf(-x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn normal_quantile_roundtrip(p in 0.0001f64..0.9999) {
        let z = Normal::standard();
        let x = z.quantile(p);
        prop_assert!((z.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn chi_squared_cdf_monotone(k in 0.5f64..30.0, x in 0.0f64..60.0, dx in 0.01f64..10.0) {
        let d = ChiSquared::new(k);
        prop_assert!(d.cdf(x + dx) >= d.cdf(x));
    }

    #[test]
    fn student_t_symmetric(nu in 0.5f64..50.0, x in 0.0f64..6.0) {
        let t = StudentT::new(nu);
        prop_assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_cdf_reaches_one(lambda in 0.01f64..40.0) {
        let p = Poisson::new(lambda);
        prop_assert!(p.cdf(lambda + 20.0 * (lambda.sqrt() + 1.0)) > 0.999);
    }

    #[test]
    fn wilson_ci_contains_estimate(s in 0u64..500, extra in 0u64..500) {
        let p = Proportion::new(s, s + extra.max(1));
        let ci = p.wilson_ci(0.95);
        prop_assert!(ci.low <= p.estimate() + 1e-12);
        prop_assert!(ci.high >= p.estimate() - 1e-12);
        prop_assert!(ci.low >= 0.0 && ci.high <= 1.0);
    }

    #[test]
    fn wilson_narrows_with_n(s in 1u64..50, scale in 2u64..20) {
        let small = Proportion::new(s, s * 2);
        let large = Proportion::new(s * scale, s * 2 * scale);
        prop_assert!(
            large.wilson_ci(0.95).half_width() < small.wilson_ci(0.95).half_width() + 1e-12
        );
    }

    #[test]
    fn z_test_p_value_valid(a in 0u64..100, na in 1u64..200, b in 0u64..100, nb in 1u64..200) {
        let pa = Proportion::new(a.min(na), na);
        let pb = Proportion::new(b.min(nb), nb);
        let t = pa.two_sample_z_test(pb);
        prop_assert!((0.0..=1.0).contains(&t.p_value));
        // Symmetry.
        let t2 = pb.two_sample_z_test(pa);
        prop_assert!((t.p_value - t2.p_value).abs() < 1e-12);
    }

    #[test]
    fn pearson_bounded_and_scale_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 3..40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            // Affine transforms with positive scale preserve r.
            let zs: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
            if let Some(r2) = pearson(&zs, &ys) {
                prop_assert!((r - r2).abs() < 1e-6, "r {r} vs {r2}");
            }
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        xs in prop::collection::vec(-50.0f64..50.0, 3..30),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let cubed: Vec<f64> = xs.iter().map(|x| x * x * x).collect();
        let a = spearman(&xs, &ys);
        let b = spearman(&cubed, &ys);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_are_permutation_of_averages(xs in prop::collection::vec(-10.0f64..10.0, 1..50)) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        // Ranks always sum to n(n+1)/2 regardless of ties.
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_within_range(xs in prop::collection::vec(-100.0f64..100.0, 1..50), q in 0.0f64..1.0) {
        let v = quantile(&xs, q);
        let s = Summary::of(&xs);
        prop_assert!(v >= s.min - 1e-9 && v <= s.max + 1e-9);
    }

    #[test]
    fn summary_mean_between_min_max(xs in prop::collection::vec(-1000.0f64..1000.0, 1..60)) {
        let s = Summary::of(&xs);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
    }

    #[test]
    fn spd_solve_roundtrip(vals in prop::collection::vec(-2.0f64..2.0, 9), rhs in prop::collection::vec(-5.0f64..5.0, 3)) {
        // Build SPD matrix A = B Bᵀ + I.
        let b = Matrix::from_vec(3, 3, vals);
        let mut a = b.matmul(&b.transpose()).expect("3x3");
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x = a.solve_spd(&rhs).expect("SPD solvable");
        let back = a.matvec(&x).expect("dims");
        for i in 0..3 {
            prop_assert!((back[i] - rhs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn glm_intercept_only_recovers_log_mean(
        ys in prop::collection::vec(0u32..40, 5..40),
    ) {
        let y: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        let total: f64 = y.iter().sum();
        prop_assume!(total > 0.0);
        let fit = GlmModel::new(Family::Poisson).fit(&y).expect("fits");
        let mean = total / y.len() as f64;
        let b0 = fit.coefficient("(Intercept)").expect("intercept").estimate;
        prop_assert!((b0 - mean.ln()).abs() < 1e-6, "b0 {b0} vs ln mean {}", mean.ln());
    }
}

mod mle_properties {
    use hpcfail_stats::mle::{ks_test, rank_fits};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn rank_fits_never_panics_and_orders_by_aic(
            xs in prop::collection::vec(0.001f64..1000.0, 10..200),
        ) {
            if let Ok(ranked) = rank_fits(&xs) {
                prop_assert!(!ranked.is_empty());
                for pair in ranked.windows(2) {
                    prop_assert!(pair[0].aic <= pair[1].aic);
                }
                for fit in &ranked {
                    prop_assert!((0.0..=1.0).contains(&fit.ks_p_value));
                    prop_assert!((0.0..=1.0).contains(&fit.ks_statistic));
                    prop_assert!(fit.log_likelihood.is_finite());
                }
            }
        }

        #[test]
        fn ks_statistic_bounded(
            xs in prop::collection::vec(0.01f64..100.0, 5..100),
            rate in 0.01f64..10.0,
        ) {
            let dist = hpcfail_stats::mle::FittedDistribution::Exponential { rate };
            let (d, p) = ks_test(&xs, &dist);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

mod timeseries_properties {
    use hpcfail_stats::timeseries::{acf, ljung_box};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn acf_bounded_and_lag0_one(
            xs in prop::collection::vec(-100.0f64..100.0, 12..120),
        ) {
            // Skip near-constant series (acf panics by contract there).
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
            prop_assume!(var > 1e-6);
            let r = acf(&xs, 5);
            prop_assert!((r[0] - 1.0).abs() < 1e-12);
            for &v in &r {
                prop_assert!(v.abs() <= 1.0 + 1e-9);
            }
            let t = ljung_box(&xs, 5);
            prop_assert!((0.0..=1.0).contains(&t.p_value));
            prop_assert!(t.statistic >= 0.0);
        }
    }
}
