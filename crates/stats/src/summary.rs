//! Descriptive statistics: mean, variance, quantiles, ranks.

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::summary::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.variance - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (`n - 1` denominator); 0 for n < 2.
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of all values.
    pub sum: f64,
}

impl Summary {
    /// Computes summary statistics over `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "summary requires finite values"
        );
        let n = xs.len();
        let sum: f64 = xs.iter().sum();
        let mean = sum / n as f64;
        let variance = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            variance,
            min,
            max,
            sum,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample using linear interpolation
/// between order statistics (type-7, the R default).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::summary::quantile;
///
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0,1], got {q}"
    );
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile requires comparable values")
    });
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Midranks of a sample (average ranks for ties), 1-based, as used by
/// Spearman correlation.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::summary::ranks;
///
/// assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("ranks require comparable values")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 8);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.25), 2.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.1), 1.4);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn ranks_no_ties() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_all_tied() {
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ranks_empty() {
        assert!(ranks(&[]).is_empty());
    }
}
