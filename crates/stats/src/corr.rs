//! Correlation coefficients: Pearson and Spearman.
//!
//! Section V of the paper reports Pearson correlation between the number
//! of jobs assigned to a node and its failure count (0.465 and 0.12 for
//! systems 8 and 20), and notes the correlation is dominated by node 0.
//! Spearman is provided as the rank-based robustness check.

use crate::summary::ranks;

/// Pearson product-moment correlation between two equal-length samples.
///
/// Returns `None` when either sample has zero variance or fewer than two
/// points (the coefficient is undefined there).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::corr::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal lengths");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        None
    } else {
        Some(sxy / (sxx * syy).sqrt())
    }
}

/// Spearman rank correlation: Pearson correlation of midranks.
///
/// Returns `None` under the same conditions as [`pearson`] (after
/// ranking), e.g. when one sample is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal lengths");
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_correlation_orthogonal() {
        let x = [-1.0, 0.0, 1.0];
        let y = [1.0, -2.0, 1.0]; // symmetric around x = 0
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn constant_sample_undefined() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[0.5], &[0.1]), None);
    }

    #[test]
    fn outlier_dominates_pearson_but_not_spearman() {
        // Mirrors the node-0 effect: one high-usage high-failure outlier
        // creates strong linear correlation in otherwise noise.
        let x = [1.0, 2.0, 1.5, 2.5, 1.2, 100.0];
        let y = [3.0, 1.0, 2.0, 1.5, 2.8, 50.0];
        let r_all = pearson(&x, &y).unwrap();
        let r_wo = pearson(&x[..5], &y[..5]).unwrap();
        assert!(r_all > 0.9);
        assert!(r_wo < 0.0); // without the outlier the cloud is negative
        let rho = spearman(&x, &y).unwrap();
        assert!(rho < r_all); // rank correlation discounts the outlier
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // y = x^3
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho > 0.9 && rho <= 1.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
