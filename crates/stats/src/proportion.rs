//! Binomial proportions, confidence intervals and the two-sample
//! proportion z-test.
//!
//! The paper's conditional-probability figures carry 95% confidence
//! intervals and use two-sample hypothesis tests to decide whether the
//! probability in a window following a failure differs significantly
//! from the probability in a random window. [`Proportion`] packages a
//! `successes / trials` pair with exactly those operations.

use crate::special::{inverse_normal_cdf, standard_normal_cdf};

/// A two-sided confidence interval on a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound (clamped to 0).
    pub low: f64,
    /// Upper bound (clamped to 1).
    pub high: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// `true` if `p` lies inside the closed interval.
    pub fn contains(&self, p: f64) -> bool {
        self.low <= p && p <= self.high
    }
}

/// Result of a two-sided two-sample proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionTest {
    /// The z statistic (pooled standard error).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl ProportionTest {
    /// `true` if the difference is significant at level `alpha`
    /// (e.g. 0.05 or 0.01).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// An observed binomial proportion: `successes` out of `trials`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::proportion::Proportion;
///
/// let p = Proportion::new(204, 10_000); // 2.04% weekly failure probability
/// assert!((p.estimate() - 0.0204).abs() < 1e-12);
/// let ci = p.wilson_ci(0.95);
/// assert!(ci.low < 0.0204 && 0.0204 < ci.high);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates a proportion.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes {successes} exceed trials {trials}"
        );
        Proportion { successes, trials }
    }

    /// An empty observation (0 of 0); its estimate is defined as 0.
    pub const EMPTY: Proportion = Proportion {
        successes: 0,
        trials: 0,
    };

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate `successes / trials`, or 0 when `trials == 0`.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Merges two observations (sums successes and trials).
    pub fn merge(self, other: Proportion) -> Proportion {
        Proportion {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }

    /// Records one more trial with the given outcome.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Wilson score interval — well-behaved even for extreme proportions
    /// and small samples, which the paper's rare-event probabilities
    /// (e.g. 0.21% memory-failure weeks) require.
    ///
    /// Returns the degenerate interval `[0, 1]` when there are no trials.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the open interval `(0, 1)`.
    pub fn wilson_ci(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1), got {level}"
        );
        if self.trials == 0 {
            return ConfidenceInterval {
                low: 0.0,
                high: 1.0,
                level,
            };
        }
        let z = inverse_normal_cdf(1.0 - (1.0 - level) / 2.0);
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        // At the boundaries the Wilson bound is exactly 0 or 1; snap to
        // avoid floating-point roundoff excluding the point estimate.
        let low = if self.successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let high = if self.successes == self.trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        ConfidenceInterval { low, high, level }
    }

    /// Wald (normal approximation) interval, clamped to `[0, 1]`.
    ///
    /// Provided for comparison with the Wilson interval; prefer
    /// [`Proportion::wilson_ci`] for rare events.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the open interval `(0, 1)`.
    pub fn wald_ci(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1), got {level}"
        );
        if self.trials == 0 {
            return ConfidenceInterval {
                low: 0.0,
                high: 1.0,
                level,
            };
        }
        let z = inverse_normal_cdf(1.0 - (1.0 - level) / 2.0);
        let n = self.trials as f64;
        let p = self.estimate();
        let half = z * (p * (1.0 - p) / n).sqrt();
        ConfidenceInterval {
            low: (p - half).max(0.0),
            high: (p + half).min(1.0),
            level,
        }
    }

    /// Two-sided two-sample z-test of `H0: p_self = p_other` with a
    /// pooled standard error — the significance test the paper applies
    /// to every conditional-vs-baseline comparison.
    ///
    /// Degenerate inputs (no trials on either side, or a pooled
    /// proportion of exactly 0 or 1) yield `z = 0`, `p = 1`.
    pub fn two_sample_z_test(&self, other: Proportion) -> ProportionTest {
        if self.trials == 0 || other.trials == 0 {
            return ProportionTest {
                z: 0.0,
                p_value: 1.0,
            };
        }
        let n1 = self.trials as f64;
        let n2 = other.trials as f64;
        let pooled = (self.successes + other.successes) as f64 / (n1 + n2);
        let se = (pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2)).sqrt();
        if se == 0.0 {
            return ProportionTest {
                z: 0.0,
                p_value: 1.0,
            };
        }
        let z = (self.estimate() - other.estimate()) / se;
        let p_value = 2.0 * standard_normal_cdf(-z.abs());
        ProportionTest {
            z,
            p_value: p_value.min(1.0),
        }
    }

    /// The multiplicative increase of this proportion over `baseline`
    /// (the "7.2x" annotations in the paper's figures).
    ///
    /// Returns `None` when the baseline estimate is zero.
    pub fn factor_over(&self, baseline: Proportion) -> Option<f64> {
        let b = baseline.estimate();
        if b == 0.0 {
            None
        } else {
            Some(self.estimate() / b)
        }
    }
}

impl Default for Proportion {
    fn default() -> Self {
        Proportion::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_and_record() {
        let mut p = Proportion::default();
        assert_eq!(p.estimate(), 0.0);
        p.record(true);
        p.record(false);
        p.record(true);
        assert_eq!(p.successes(), 2);
        assert_eq!(p.trials(), 3);
        assert!((p.estimate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let a = Proportion::new(3, 10).merge(Proportion::new(7, 90));
        assert_eq!(a, Proportion::new(10, 100));
    }

    #[test]
    fn wilson_interval_reference() {
        // Wilson 95% CI for 10/100: approx (0.0552, 0.1744).
        let ci = Proportion::new(10, 100).wilson_ci(0.95);
        assert!((ci.low - 0.05522914).abs() < 1e-5, "low {}", ci.low);
        assert!((ci.high - 0.17436566).abs() < 1e-5, "high {}", ci.high);
    }

    #[test]
    fn wilson_interval_zero_successes_nonzero_low() {
        let ci = Proportion::new(0, 50).wilson_ci(0.95);
        assert_eq!(ci.low, 0.0);
        assert!(ci.high > 0.0 && ci.high < 0.1);
    }

    #[test]
    fn wilson_narrower_than_wald_near_boundary() {
        let p = Proportion::new(1, 1000);
        let wilson = p.wilson_ci(0.95);
        let wald = p.wald_ci(0.95);
        // Wald collapses around the estimate and gets clamped at 0; Wilson
        // stays inside (0, 1) with positive lower mass.
        assert!(wald.low == 0.0 || wald.low < wilson.low + 1e-9);
        assert!(wilson.high <= 1.0 && wilson.low >= 0.0);
    }

    #[test]
    fn interval_contains_estimate() {
        for &(s, n) in &[(0u64, 10u64), (5, 10), (10, 10), (1, 1000)] {
            let p = Proportion::new(s, n);
            for level in [0.9, 0.95, 0.99] {
                let ci = p.wilson_ci(level);
                assert!(ci.contains(p.estimate()), "{s}/{n} at {level}");
                assert!(ci.half_width() >= 0.0);
            }
        }
    }

    #[test]
    fn higher_level_widens_interval() {
        let p = Proportion::new(30, 200);
        assert!(p.wilson_ci(0.99).half_width() > p.wilson_ci(0.90).half_width());
    }

    #[test]
    fn z_test_detects_large_difference() {
        let t = Proportion::new(72, 1000).two_sample_z_test(Proportion::new(31, 10_000));
        assert!(t.z > 5.0);
        assert!(t.significant_at(0.01));
    }

    #[test]
    fn z_test_no_difference() {
        let t = Proportion::new(50, 1000).two_sample_z_test(Proportion::new(50, 1000));
        assert_eq!(t.z, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn z_test_degenerate_inputs() {
        let t = Proportion::EMPTY.two_sample_z_test(Proportion::new(1, 2));
        assert_eq!(t.p_value, 1.0);
        let t = Proportion::new(0, 10).two_sample_z_test(Proportion::new(0, 20));
        assert_eq!(t.p_value, 1.0);
        let t = Proportion::new(10, 10).two_sample_z_test(Proportion::new(20, 20));
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn z_test_symmetry() {
        let a = Proportion::new(30, 100);
        let b = Proportion::new(10, 100);
        let t1 = a.two_sample_z_test(b);
        let t2 = b.two_sample_z_test(a);
        assert!((t1.z + t2.z).abs() < 1e-12);
        assert!((t1.p_value - t2.p_value).abs() < 1e-12);
    }

    #[test]
    fn factor_over_baseline() {
        let cond = Proportion::new(72, 1000);
        let base = Proportion::new(31, 10_000);
        let f = cond.factor_over(base).unwrap();
        assert!((f - (0.072 / 0.0031)).abs() < 1e-9);
        assert_eq!(cond.factor_over(Proportion::new(0, 100)), None);
    }

    #[test]
    #[should_panic(expected = "exceed trials")]
    fn successes_cannot_exceed_trials() {
        let _ = Proportion::new(5, 4);
    }
}
