//! Time-series tools: autocorrelation and the Ljung-Box portmanteau
//! test.
//!
//! The correlation-modeling literature the paper contrasts itself with
//! (Section I) characterizes failure processes through the
//! autocorrelation function of the failure sequence; the toolkit
//! provides it for daily failure-count series.

use crate::dist::{ChiSquared, Distribution};
use crate::htest::TestResult;

/// Sample autocorrelation function at lags `0..=max_lag`.
///
/// Uses the standard biased estimator (normalizing by `n`), which keeps
/// the sequence positive semi-definite. `acf[0]` is always 1.
///
/// # Panics
///
/// Panics if the series is shorter than `max_lag + 2` or constant.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::timeseries::acf;
///
/// // Alternating series: perfect negative lag-1 correlation.
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r = acf(&xs, 2);
/// assert!((r[0] - 1.0).abs() < 1e-12);
/// assert!(r[1] < -0.9);
/// assert!(r[2] > 0.9);
/// ```
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(
        xs.len() >= max_lag + 2,
        "series too short for lag {max_lag}"
    );
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    assert!(var > 0.0, "constant series has no autocorrelation");
    (0..=max_lag)
        .map(|lag| {
            let cov: f64 = xs[..xs.len() - lag]
                .iter()
                .zip(&xs[lag..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / n;
            cov / var
        })
        .collect()
}

/// The Ljung-Box portmanteau test of "no autocorrelation up to
/// `max_lag`": `Q = n(n+2) sum_k r_k^2 / (n-k)`, chi-square with
/// `max_lag` degrees of freedom under H0.
///
/// # Panics
///
/// Panics under the same conditions as [`acf`], or when `max_lag == 0`.
pub fn ljung_box(xs: &[f64], max_lag: usize) -> TestResult {
    assert!(max_lag > 0, "need at least one lag");
    let r = acf(xs, max_lag);
    let n = xs.len() as f64;
    let q: f64 = (1..=max_lag)
        .map(|k| r[k] * r[k] / (n - k as f64))
        .sum::<f64>()
        * n
        * (n + 2.0);
    TestResult {
        statistic: q,
        df: max_lag as f64,
        p_value: ChiSquared::new(max_lag as f64).sf(q),
    }
}

/// Approximate 95% white-noise band for sample autocorrelations:
/// `±1.96 / sqrt(n)`.
pub fn white_noise_band(n: usize) -> f64 {
    1.96 / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// AR(1) process x_t = phi x_{t-1} + e_t.
    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            x = phi * x + rng.gen_range(-1.0..1.0);
            xs.push(x);
        }
        xs
    }

    #[test]
    fn acf_lag0_is_one() {
        let xs = white_noise(500, 1);
        let r = acf(&xs, 10);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn white_noise_acf_small() {
        let xs = white_noise(5000, 2);
        let r = acf(&xs, 20);
        let band = white_noise_band(xs.len());
        let outside = r[1..].iter().filter(|v| v.abs() > band).count();
        // ~5% expected outside; allow up to 15%.
        assert!(outside <= 3, "{outside} of 20 lags outside the band");
    }

    #[test]
    fn ar1_acf_decays_geometrically() {
        let xs = ar1(20_000, 0.7, 3);
        let r = acf(&xs, 5);
        assert!((r[1] - 0.7).abs() < 0.05, "lag1 {}", r[1]);
        assert!((r[2] - 0.49).abs() < 0.06, "lag2 {}", r[2]);
        assert!(r[1] > r[2] && r[2] > r[3]);
    }

    #[test]
    fn ljung_box_rejects_ar1_accepts_noise() {
        let correlated = ar1(2000, 0.5, 4);
        let t = ljung_box(&correlated, 10);
        assert!(t.significant_at(0.001), "p {}", t.p_value);

        let noise = white_noise(2000, 5);
        let t = ljung_box(&noise, 10);
        assert!(!t.significant_at(0.01), "p {}", t.p_value);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_rejected() {
        let _ = acf(&[1.0, 2.0, 3.0], 5);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_series_rejected() {
        let _ = acf(&[2.0; 50], 3);
    }
}
