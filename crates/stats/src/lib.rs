//! Statistics substrate for the `hpcfail` workspace.
//!
//! The Rust ecosystem lacks a GLM/statistics stack suitable for the
//! analyses in El-Sayed & Schroeder (DSN 2013), so this crate implements
//! everything the paper's methodology needs, from scratch:
//!
//! - [`special`] — special functions: log-gamma, digamma/trigamma,
//!   error function, regularized incomplete gamma and beta.
//! - [`dist`] — probability distributions (normal, chi-square, Student-t,
//!   F, Poisson, negative binomial, gamma, exponential, Weibull) with
//!   CDFs and `rand`-based samplers.
//! - [`linalg`] — small dense matrices with Cholesky and LU solvers.
//! - [`summary`] — descriptive statistics.
//! - [`proportion`] — binomial proportions with Wilson/Wald confidence
//!   intervals and the two-sample proportion z-test the paper uses for
//!   significance of conditional-probability increases.
//! - [`htest`] — chi-square equal-proportions test (Section IV's
//!   "do nodes fail at equal rates?"), likelihood-ratio / ANOVA tests.
//! - [`corr`] — Pearson and Spearman correlation (Section V).
//! - [`glm`] — Poisson and negative-binomial regression via IRLS
//!   (Sections VI, VIII, X).
//! - [`mle`] — inter-arrival distribution fitting (exponential,
//!   Weibull, lognormal, gamma) with KS goodness of fit and AIC
//!   ranking, for the failure-modeling companion analyses.
//! - [`timeseries`] — autocorrelation and the Ljung-Box test for daily
//!   failure-count series.
//!
//! # Examples
//!
//! ```
//! use hpcfail_stats::proportion::Proportion;
//!
//! let post_failure = Proportion::new(72, 1000);   // 7.2% after a failure
//! let random_day = Proportion::new(31, 10_000);   // 0.31% on a random day
//! let test = post_failure.two_sample_z_test(random_day);
//! assert!(test.p_value < 0.01); // significantly different
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corr;
pub mod dist;
pub mod glm;
pub mod htest;
pub mod linalg;
pub mod mle;
pub mod proportion;
pub mod special;
pub mod summary;
pub mod timeseries;

/// The most frequently used items.
pub mod prelude {
    pub use crate::corr::{pearson, spearman};
    pub use crate::dist::{
        ChiSquared, Distribution, Exponential, FisherF, GammaDist, LogNormal, NegativeBinomial,
        Normal, Poisson, StudentT, Weibull,
    };
    pub use crate::glm::{Family, GlmFit, GlmModel};
    pub use crate::htest::{anova_lrt, chi_square_equal_proportions, TestResult};
    pub use crate::linalg::Matrix;
    pub use crate::mle::{rank_fits, FittedDistribution, RankedFit};
    pub use crate::proportion::{ConfidenceInterval, Proportion};
    pub use crate::summary::Summary;
    pub use crate::timeseries::{acf, ljung_box};
}
