//! Probability distributions with CDFs and `rand`-based samplers.
//!
//! Every distribution implements [`Distribution`], which exposes the
//! density/mass, CDF, survival function, mean and variance; continuous
//! distributions additionally sample through [`Distribution::sample`].
//!
//! These back both the hypothesis tests (chi-square, normal, t, F tails)
//! and the synthetic trace generator (Poisson counts, gamma frailty,
//! Weibull/lognormal job durations).

use crate::special::{
    inverse_normal_cdf, ln_factorial, ln_gamma, reg_beta, reg_gamma_p, reg_gamma_q,
    standard_normal_cdf,
};
use rand::Rng;

/// Common interface for the distributions in this module.
pub trait Distribution {
    /// Probability density (continuous) or mass (discrete) at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x) = 1 - cdf(x)`, computed to preserve
    /// accuracy in the tail where possible.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The distribution mean.
    fn mean(&self) -> f64;

    /// The distribution variance.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// Normal (Gaussian) distribution.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::dist::{Distribution, Normal};
///
/// let z = Normal::standard();
/// assert!((z.cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((z.quantile(0.975) - 1.96).abs() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard
    /// deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "normal parameters must be finite"
        );
        assert!(sigma > 0.0, "normal sigma must be positive, got {sigma}");
        Normal { mu, sigma }
    }

    /// The standard normal distribution (mean 0, standard deviation 1).
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// The quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the open interval `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inverse_normal_cdf(p)
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mu) / self.sigma)
    }

    fn sf(&self, x: f64) -> f64 {
        standard_normal_cdf(-(x - self.mu) / self.sigma)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method.
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chi-squared
// ---------------------------------------------------------------------------

/// Chi-squared distribution with `k` degrees of freedom.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::dist::{ChiSquared, Distribution};
///
/// let chi2 = ChiSquared::new(1.0);
/// // P(X > 3.841) ~ 0.05 for 1 df.
/// assert!((chi2.sf(3.841458820694124) - 0.05).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0` or not finite.
    pub fn new(k: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0,
            "chi-squared df must be positive, got {k}"
        );
        ChiSquared { k }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.k
    }
}

impl Distribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let half_k = self.k / 2.0;
        ((half_k - 1.0) * x.ln() - x / 2.0 - half_k * (2f64).ln() - ln_gamma(half_k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_p(self.k / 2.0, x / 2.0)
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            reg_gamma_q(self.k / 2.0, x / 2.0)
        }
    }

    fn mean(&self) -> f64 {
        self.k
    }

    fn variance(&self) -> f64 {
        2.0 * self.k
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        GammaDist::new(self.k / 2.0, 2.0).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Student t
// ---------------------------------------------------------------------------

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates a t distribution with `nu > 0` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0` or not finite.
    pub fn new(nu: f64) -> Self {
        assert!(
            nu.is_finite() && nu > 0.0,
            "t df must be positive, got {nu}"
        );
        StudentT { nu }
    }
}

impl Distribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let nu = self.nu;
        (ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln()
            - (nu + 1.0) / 2.0 * (1.0 + x * x / nu).ln())
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let nu = self.nu;
        let ib = reg_beta(nu / 2.0, 0.5, nu / (nu + x * x));
        if x >= 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn mean(&self) -> f64 {
        assert!(self.nu > 1.0, "t mean undefined for df <= 1");
        0.0
    }

    fn variance(&self) -> f64 {
        assert!(self.nu > 2.0, "t variance undefined for df <= 2");
        self.nu / (self.nu - 2.0)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = Normal::standard().sample(rng);
        let chi = ChiSquared::new(self.nu).sample(rng);
        z / (chi / self.nu).sqrt()
    }
}

// ---------------------------------------------------------------------------
// Fisher F
// ---------------------------------------------------------------------------

/// Fisher's F distribution with `d1` and `d2` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Creates an F distribution.
    ///
    /// # Panics
    ///
    /// Panics if either degrees-of-freedom parameter is not positive.
    pub fn new(d1: f64, d2: f64) -> Self {
        assert!(
            d1 > 0.0 && d2 > 0.0,
            "F dfs must be positive, got {d1}, {d2}"
        );
        FisherF { d1, d2 }
    }
}

impl Distribution for FisherF {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        let ln_b = ln_gamma(d1 / 2.0) + ln_gamma(d2 / 2.0) - ln_gamma((d1 + d2) / 2.0);
        ((d1 / 2.0) * (d1 / d2).ln() + (d1 / 2.0 - 1.0) * x.ln()
            - ((d1 + d2) / 2.0) * (1.0 + d1 * x / d2).ln()
            - ln_b)
            .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_beta(
                self.d1 / 2.0,
                self.d2 / 2.0,
                self.d1 * x / (self.d1 * x + self.d2),
            )
        }
    }

    fn mean(&self) -> f64 {
        assert!(self.d2 > 2.0, "F mean undefined for d2 <= 2");
        self.d2 / (self.d2 - 2.0)
    }

    fn variance(&self) -> f64 {
        assert!(self.d2 > 4.0, "F variance undefined for d2 <= 4");
        let (d1, d2) = (self.d1, self.d2);
        2.0 * d2 * d2 * (d1 + d2 - 2.0) / (d1 * (d2 - 2.0) * (d2 - 2.0) * (d2 - 4.0))
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = ChiSquared::new(self.d1).sample(rng) / self.d1;
        let b = ChiSquared::new(self.d2).sample(rng) / self.d2;
        a / b
    }
}

// ---------------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------------

/// Gamma distribution with shape `alpha` and scale `theta`.
///
/// The synthetic fleet uses unit-mean gamma draws
/// ([`GammaDist::unit_mean`]) as node "frailty" multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    alpha: f64,
    theta: f64,
}

impl GammaDist {
    /// Creates a gamma distribution with shape `alpha > 0` and scale
    /// `theta > 0`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    pub fn new(alpha: f64, theta: f64) -> Self {
        assert!(
            alpha > 0.0 && theta > 0.0,
            "gamma parameters must be positive"
        );
        GammaDist { alpha, theta }
    }

    /// A gamma distribution with mean 1 and variance `1 / alpha`.
    pub fn unit_mean(alpha: f64) -> Self {
        GammaDist::new(alpha, 1.0 / alpha)
    }
}

impl Distribution for GammaDist {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        ((self.alpha - 1.0) * x.ln()
            - x / self.theta
            - self.alpha * self.theta.ln()
            - ln_gamma(self.alpha))
        .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_p(self.alpha, x / self.theta)
        }
    }

    fn mean(&self) -> f64 {
        self.alpha * self.theta
    }

    fn variance(&self) -> f64 {
        self.alpha * self.theta * self.theta
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia-Tsang squeeze method; boost for alpha < 1.
        let alpha = self.alpha;
        if alpha < 1.0 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let boosted = GammaDist::new(alpha + 1.0, self.theta).sample(rng);
            return boosted * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard().sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.theta;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exponential { lambda }
    }
}

impl Distribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-self.lambda * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.lambda
    }
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

/// Weibull distribution with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    k: f64,
    lambda: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `k > 0` and scale
    /// `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(
            k > 0.0 && lambda > 0.0,
            "weibull parameters must be positive"
        );
        Weibull { k, lambda }
    }
}

impl Distribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.lambda;
        self.k / self.lambda * z.powf(self.k - 1.0) * (-z.powf(self.k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.lambda).powf(self.k)).exp()
        }
    }

    fn mean(&self) -> f64 {
        self.lambda * (ln_gamma(1.0 + 1.0 / self.k)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.k)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.k)).exp();
        self.lambda * self.lambda * (g2 - g1 * g1)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }
}

// ---------------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------------

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution whose logarithm has mean `mu`
    /// and standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }
}

impl Distribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.normal.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.normal.cdf(x.ln())
        }
    }

    fn mean(&self) -> f64 {
        (self.normal.mean() + self.normal.variance() / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let v = self.normal.variance();
        ((v).exp() - 1.0) * (2.0 * self.normal.mean() + v).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Poisson distribution with mean `lambda`.
///
/// The synthetic fleet draws per-day failure counts from this
/// distribution; the GLM engine uses its log-likelihood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0` or not finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "poisson mean must be positive, got {lambda}"
        );
        Poisson { lambda }
    }

    /// The probability mass at integer `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)).exp()
    }

    /// Draws an integer count. Knuth's method for small means,
    /// normal approximation with continuity correction for large means.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen_range(0.0..1.0);
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation, adequate for the simulator's needs.
            let z = Normal::standard().sample(rng);
            let x = self.lambda + z * self.lambda.sqrt() + 0.5;
            if x < 0.0 {
                0
            } else {
                x.floor() as u64
            }
        }
    }
}

impl Distribution for Poisson {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 || x.fract() != 0.0 {
            0.0
        } else {
            self.pmf(x as u64)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            // P(X <= k) = Q(k+1, lambda).
            reg_gamma_q(x.floor() + 1.0, self.lambda)
        }
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }
}

// ---------------------------------------------------------------------------
// Negative binomial
// ---------------------------------------------------------------------------

/// Negative binomial distribution in the GLM (`mu`, `theta`)
/// parameterization: mean `mu`, variance `mu + mu^2 / theta`.
///
/// Equivalent to a gamma-Poisson mixture: `Poisson(G)` with
/// `G ~ Gamma(theta, mu/theta)`, which is also how sampling works.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    mu: f64,
    theta: f64,
}

impl NegativeBinomial {
    /// Creates a negative binomial with mean `mu > 0` and dispersion
    /// `theta > 0` (larger theta = closer to Poisson).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    pub fn new(mu: f64, theta: f64) -> Self {
        assert!(
            mu > 0.0 && theta > 0.0,
            "negative binomial parameters must be positive"
        );
        NegativeBinomial { mu, theta }
    }

    /// The probability mass at integer `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let (mu, th) = (self.mu, self.theta);
        let kf = k as f64;
        (ln_gamma(kf + th) - ln_gamma(th) - ln_factorial(k)
            + th * (th / (th + mu)).ln()
            + kf * (mu / (th + mu)).ln())
        .exp()
    }

    /// Draws an integer count via the gamma-Poisson mixture.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let g = GammaDist::new(self.theta, self.mu / self.theta).sample(rng);
        if g <= 0.0 {
            0
        } else {
            Poisson::new(g.max(1e-12)).sample_count(rng)
        }
    }
}

impl Distribution for NegativeBinomial {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 || x.fract() != 0.0 {
            0.0
        } else {
            self.pmf(x as u64)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        // P(X <= k) = I_{theta/(theta+mu)}(theta, k+1).
        reg_beta(
            self.theta,
            x.floor() + 1.0,
            self.theta / (self.theta + self.mu),
        )
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.mu + self.mu * self.mu / self.theta
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} vs {b} (tol {tol})"
        );
    }

    fn sample_moments<D: Distribution>(d: &D, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn normal_cdf_and_quantile() {
        let n = Normal::new(10.0, 2.0);
        close(n.cdf(10.0), 0.5, 1e-12);
        close(n.cdf(13.92), 0.975, 1e-3);
        close(n.quantile(n.cdf(12.3)), 12.3, 1e-8);
        close(n.sf(12.0) + n.cdf(12.0), 1.0, 1e-12);
    }

    #[test]
    fn normal_sampling_moments() {
        let n = Normal::new(-3.0, 1.5);
        let (m, v) = sample_moments(&n, 100_000, 1);
        close(m, -3.0, 0.02);
        close(v, 2.25, 0.05);
    }

    #[test]
    fn chi_squared_critical_values() {
        // Standard textbook 95th percentiles.
        close(ChiSquared::new(1.0).cdf(3.841), 0.95, 1e-3);
        close(ChiSquared::new(5.0).cdf(11.070), 0.95, 1e-3);
        close(ChiSquared::new(10.0).cdf(18.307), 0.95, 1e-3);
    }

    #[test]
    fn chi_squared_sampling_moments() {
        let c = ChiSquared::new(4.0);
        let (m, v) = sample_moments(&c, 100_000, 2);
        close(m, 4.0, 0.03);
        close(v, 8.0, 0.08);
    }

    #[test]
    fn student_t_matches_normal_for_large_df() {
        let t = StudentT::new(1e6);
        let z = Normal::standard();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            close(t.cdf(x), z.cdf(x), 1e-5);
        }
    }

    #[test]
    fn student_t_critical_values() {
        // t_{0.975, 10} = 2.228.
        close(StudentT::new(10.0).cdf(2.228), 0.975, 1e-3);
        close(StudentT::new(1.0).cdf(0.0), 0.5, 1e-12);
    }

    #[test]
    fn fisher_f_critical_values() {
        // F_{0.95}(5, 10) = 3.326.
        close(FisherF::new(5.0, 10.0).cdf(3.326), 0.95, 1e-3);
    }

    #[test]
    fn gamma_moments_and_sampling() {
        let g = GammaDist::new(3.0, 2.0);
        assert_eq!(g.mean(), 6.0);
        assert_eq!(g.variance(), 12.0);
        let (m, v) = sample_moments(&g, 100_000, 3);
        close(m, 6.0, 0.02);
        close(v, 12.0, 0.08);
    }

    #[test]
    fn gamma_small_shape_sampling() {
        let g = GammaDist::new(0.5, 1.0);
        let (m, v) = sample_moments(&g, 200_000, 4);
        close(m, 0.5, 0.03);
        close(v, 0.5, 0.08);
    }

    #[test]
    fn gamma_unit_mean_frailty() {
        let g = GammaDist::unit_mean(4.0);
        close(g.mean(), 1.0, 1e-12);
        close(g.variance(), 0.25, 1e-12);
    }

    #[test]
    fn exponential_cdf_and_sampling() {
        let e = Exponential::new(2.0);
        close(e.cdf(0.5), 1.0 - (-1.0f64).exp(), 1e-12);
        close(e.sf(1.0), (-2.0f64).exp(), 1e-12);
        let (m, _) = sample_moments(&e, 100_000, 5);
        close(m, 0.5, 0.02);
    }

    #[test]
    fn weibull_reduces_to_exponential() {
        let w = Weibull::new(1.0, 2.0);
        let e = Exponential::new(0.5);
        for &x in &[0.1, 1.0, 3.0] {
            close(w.cdf(x), e.cdf(x), 1e-12);
        }
    }

    #[test]
    fn weibull_sampling_moments() {
        let w = Weibull::new(2.0, 1.0);
        let (m, v) = sample_moments(&w, 100_000, 6);
        close(m, w.mean(), 0.02);
        close(v, w.variance(), 0.05);
    }

    #[test]
    fn lognormal_moments() {
        let ln = LogNormal::new(0.0, 0.5);
        let (m, v) = sample_moments(&ln, 200_000, 7);
        close(m, ln.mean(), 0.02);
        close(v, ln.variance(), 0.1);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let p = Poisson::new(4.2);
        let total: f64 = (0..100).map(|k| p.pmf(k)).sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn poisson_cdf_matches_pmf_sum() {
        let p = Poisson::new(3.0);
        let sum: f64 = (0..=5).map(|k| p.pmf(k)).sum();
        close(p.cdf(5.0), sum, 1e-10);
    }

    #[test]
    fn poisson_sampling_small_and_large_mean() {
        for &(lambda, seed) in &[(0.3, 8u64), (5.0, 9), (120.0, 10)] {
            let p = Poisson::new(lambda);
            let (m, v) = sample_moments(&p, 100_000, seed);
            close(m, lambda, 0.03);
            close(v, lambda, 0.05);
        }
    }

    #[test]
    fn negative_binomial_pmf_and_moments() {
        let nb = NegativeBinomial::new(3.0, 2.0);
        let total: f64 = (0..500).map(|k| nb.pmf(k)).sum();
        close(total, 1.0, 1e-10);
        assert_eq!(nb.mean(), 3.0);
        close(nb.variance(), 3.0 + 4.5, 1e-12);
    }

    #[test]
    fn negative_binomial_cdf_matches_pmf_sum() {
        let nb = NegativeBinomial::new(2.0, 1.5);
        let sum: f64 = (0..=4).map(|k| nb.pmf(k)).sum();
        close(nb.cdf(4.0), sum, 1e-9);
    }

    #[test]
    fn negative_binomial_sampling_moments() {
        let nb = NegativeBinomial::new(4.0, 2.0);
        let (m, v) = sample_moments(&nb, 200_000, 11);
        close(m, 4.0, 0.03);
        close(v, nb.variance(), 0.08);
    }

    #[test]
    fn negative_binomial_converges_to_poisson() {
        let nb = NegativeBinomial::new(3.0, 1e7);
        let p = Poisson::new(3.0);
        for k in 0..10 {
            close(nb.pmf(k), p.pmf(k), 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn normal_rejects_zero_sigma() {
        let _ = Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_rejects_zero_mean() {
        let _ = Poisson::new(0.0);
    }
}
