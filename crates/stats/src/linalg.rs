//! Small dense linear algebra: row-major matrices, Cholesky and LU
//! factorizations, solves and inversion.
//!
//! The GLM engine solves normal equations `(XᵀWX) β = XᵀWz` whose
//! dimension equals the predictor count (≤ 10 in every analysis), so a
//! straightforward dense implementation is both sufficient and fast.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned by factorizations and solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not square where a square matrix is required.
    NotSquare,
    /// Dimensions of the operands do not agree.
    DimensionMismatch,
    /// The matrix is singular (or not positive definite for Cholesky).
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare => f.write_str("matrix is not square"),
            LinalgError::DimensionMismatch => f.write_str("operand dimensions do not agree"),
            LinalgError::Singular => f.write_str("matrix is singular or not positive definite"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), hpcfail_stats::linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or there are no rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must have equal lengths"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor `L`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for non-square input;
    /// [`LinalgError::Singular`] if the matrix is not positive definite.
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::Singular);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// # Errors
    ///
    /// Propagates [`Matrix::cholesky`] errors, plus
    /// [`LinalgError::DimensionMismatch`] if `b.len() != rows`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A x = b` for general square `A` via LU with partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`], [`LinalgError::DimensionMismatch`] or
    /// [`LinalgError::Singular`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare);
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x: Vec<f64> = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                }
                x.swap(col, pivot);
            }
            for r in col + 1..n {
                let f = a[(r, col)] / a[(col, col)];
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in i + 1..n {
                sum -= a[(i, j)] * x[j];
            }
            x[i] = sum / a[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of a symmetric positive-definite matrix via Cholesky,
    /// used for GLM covariance `(XᵀWX)⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates [`Matrix::cholesky`] errors.
    pub fn inverse_spd(&self) -> Result<Matrix, LinalgError> {
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve_spd(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_vec(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3.rows(), 3);
        assert!(i3.is_square());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.3], &[0.0, 4.0, 1.0]]);
        let prod = a.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert_eq!(a.matmul(&b).unwrap_err(), LinalgError::DimensionMismatch);
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        close_vec(&a.matvec(&[1.0, 1.0]).unwrap(), &[3.0, 7.0], 1e-12);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let l = a.cholesky().unwrap();
        // L = [[2, 0], [1, 2]].
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        close_vec(&a.solve_spd(&b).unwrap(), &x_true, 1e-10);
    }

    #[test]
    fn solve_lu_with_pivoting() {
        // Leading zero forces a pivot.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let x = a.solve(&[4.0, 3.0]).unwrap();
        close_vec(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn inverse_spd_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let inv = a.inverse_spd().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn from_vec_layout() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
