//! Special functions: log-gamma, digamma, trigamma, error function,
//! regularized incomplete gamma and beta, and the inverse normal CDF.
//!
//! Implementations follow the classic Lanczos / Numerical-Recipes style
//! series and continued-fraction expansions. Accuracy targets are
//! ~1e-10 relative error over the argument ranges the analyses use,
//! verified against high-precision reference values in the unit tests.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to
/// ~1e-13 relative error for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::special::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12);            // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Log-factorial `ln(n!)` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) - 1/x` to push the argument above 6,
/// then the asymptotic series. Accurate to ~1e-12.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// The trigamma function `ψ'(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ'(x) ~ 1/x + 1/(2x²) + sum B_{2n} / x^{2n+1}.
    result
        + inv
            * (1.0
                + inv
                    * (0.5
                        + inv
                            * (1.0 / 6.0
                                - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// The error function `erf(x)`.
///
/// Computed through the regularized incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::special::erf;
///
/// assert!((erf(0.0)).abs() < 1e-14);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        reg_gamma_p(0.5, x * x)
    } else {
        -reg_gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the continued-fraction tail for large positive `x`, avoiding the
/// catastrophic cancellation of computing `1 - erf(x)` directly.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        reg_gamma_q(0.5, x * x)
    }
}

const GAMMA_EPS: f64 = 1e-15;
const GAMMA_MAX_ITER: usize = 500;

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`,
/// `x >= 0`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; the chi-square CDF with `k` degrees of
/// freedom is `P(k/2, x/2)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (Lentz) expansion of Q(a, x), convergent for x >= a + 1.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `0 <= x <= 1`.
///
/// The Student-t and F CDFs are thin wrappers around this function.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "reg_beta requires a, b > 0, got a={a}, b={b}"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_beta requires 0 <= x <= 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_contfrac(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + b * (1.0 - x).ln() + a * x.ln()).exp()
            * beta_contfrac(b, a, 1.0 - x)
            / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=GAMMA_MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    h
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses Acklam's rational approximation (relative error < 1.15e-9)
/// followed by one Halley refinement step, giving near machine precision.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::special::inverse_normal_cdf;
///
/// assert!(inverse_normal_cdf(0.5).abs() < 1e-12);
/// assert!((inverse_normal_cdf(0.975) - 1.959963984540054).abs() < 1e-8);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires 0 < p < 1, got {p}"
    );
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the accurate CDF.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of the standard normal distribution, `Φ(x)`.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} vs {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            close(ln_gamma(i as f64 + 1.0), f.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        let pi = std::f64::consts::PI;
        close(ln_gamma(0.5), (pi.sqrt()).ln(), 1e-12); // Γ(1/2) = √π
        close(ln_gamma(1.5), (pi.sqrt() / 2.0).ln(), 1e-12);
        close(ln_gamma(2.5), (3.0 * pi.sqrt() / 4.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Compare against Stirling with correction terms at x = 1000.
        let x: f64 = 1000.0;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
                - 1.0 / (360.0 * x * x * x);
        close(ln_gamma(x), stirling, 1e-12);
    }

    #[test]
    fn ln_factorial_matches() {
        close(ln_factorial(10), (3_628_800f64).ln(), 1e-12);
        close(ln_factorial(0), 0.0, 1e-14);
    }

    #[test]
    fn digamma_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER, 1e-11);
        close(digamma(2.0), 1.0 - EULER, 1e-11);
        close(digamma(0.5), -EULER - 2.0 * (2f64).ln(), 1e-11);
        // ψ(10) reference from tables.
        close(digamma(10.0), 2.251_752_589_066_721, 1e-11);
    }

    #[test]
    fn digamma_recurrence_property() {
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn trigamma_known_values() {
        let pi = std::f64::consts::PI;
        close(trigamma(1.0), pi * pi / 6.0, 1e-10);
        close(trigamma(0.5), pi * pi / 2.0, 1e-10);
    }

    #[test]
    fn trigamma_recurrence_property() {
        for &x in &[0.4, 2.3, 7.7] {
            close(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
        }
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-2.0), -0.995_322_265_018_952_7, 1e-10);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) is ~2.21e-5; naive 1 - erf would lose digits.
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-9);
        close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-7);
        close(erfc(0.0), 1.0, 1e-14);
    }

    #[test]
    fn incomplete_gamma_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 1.0, 2.5, 10.0] {
            close(reg_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = reg_gamma_p(3.0, x);
            assert!(p >= prev);
            prev = p;
        }
        assert!(prev > 0.999); // approaches 1
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(a,b) symmetric identity: I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.3), (5.0, 1.0, 0.9)] {
            close(reg_beta(a, b, x), 1.0 - reg_beta(b, a, 1.0 - x), 1e-12);
        }
        // I_x(1,1) = x (uniform CDF).
        close(reg_beta(1.0, 1.0, 0.73), 0.73, 1e-12);
        // I_x(1,b) = 1-(1-x)^b.
        close(reg_beta(1.0, 4.0, 0.2), 1.0 - 0.8f64.powi(4), 1e-12);
        // I_x(0.5, 0.5) = (2/π) asin(√x).
        close(
            reg_beta(0.5, 0.5, 0.25),
            2.0 / std::f64::consts::PI * (0.25f64).sqrt().asin(),
            1e-10,
        );
    }

    #[test]
    fn incomplete_beta_bounds() {
        assert_eq!(reg_beta(2.0, 2.0, 0.0), 0.0);
        assert_eq!(reg_beta(2.0, 2.0, 1.0), 1.0);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        close(standard_normal_cdf(0.0), 0.5, 1e-14);
        close(standard_normal_cdf(1.96), 0.975_002_104_851_780, 1e-9);
        for &x in &[0.1, 0.7, 1.3, 2.8] {
            close(standard_normal_cdf(x) + standard_normal_cdf(-x), 1.0, 1e-12);
        }
    }

    #[test]
    fn inverse_normal_roundtrip() {
        for &p in &[1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = inverse_normal_cdf(p);
            close(standard_normal_cdf(x), p, 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn probit_rejects_boundary() {
        let _ = inverse_normal_cdf(1.0);
    }
}
