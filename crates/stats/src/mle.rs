//! Maximum-likelihood fitting of inter-arrival-time distributions, with
//! Kolmogorov-Smirnov goodness of fit and AIC model selection.
//!
//! The failure-modeling literature the paper builds on (Schroeder &
//! Gibson DSN'06 and the correlation-modeling work cited in Section I)
//! characterizes failure inter-arrival times with exponential, Weibull,
//! gamma and lognormal fits; a Weibull shape below 1 is the classic
//! signature of the clustering the paper studies. This module provides
//! those fits for the toolkit's inter-arrival analysis.

use crate::dist::{Distribution, Exponential, GammaDist, LogNormal, Weibull};
use crate::special::digamma;
use std::fmt;

/// The candidate families for inter-arrival fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FittedDistribution {
    /// Exponential with the given rate (memoryless baseline).
    Exponential {
        /// Rate parameter (1 / mean).
        rate: f64,
    },
    /// Weibull with shape `k` and scale `lambda`; `k < 1` means a
    /// decreasing hazard — failures cluster.
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Log-normal with log-mean `mu` and log-std `sigma`.
    LogNormal {
        /// Mean of the log.
        mu: f64,
        /// Standard deviation of the log.
        sigma: f64,
    },
    /// Gamma with shape `alpha` and scale `theta`; `alpha < 1` likewise
    /// indicates clustering.
    Gamma {
        /// Shape parameter.
        alpha: f64,
        /// Scale parameter.
        theta: f64,
    },
}

impl FittedDistribution {
    /// Family name.
    pub const fn family(&self) -> &'static str {
        match self {
            FittedDistribution::Exponential { .. } => "exponential",
            FittedDistribution::Weibull { .. } => "weibull",
            FittedDistribution::LogNormal { .. } => "lognormal",
            FittedDistribution::Gamma { .. } => "gamma",
        }
    }

    /// Number of free parameters (for AIC).
    pub const fn n_params(&self) -> usize {
        match self {
            FittedDistribution::Exponential { .. } => 1,
            _ => 2,
        }
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            FittedDistribution::Exponential { rate } => Exponential::new(rate).cdf(x),
            FittedDistribution::Weibull { shape, scale } => Weibull::new(shape, scale).cdf(x),
            FittedDistribution::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).cdf(x),
            FittedDistribution::Gamma { alpha, theta } => GammaDist::new(alpha, theta).cdf(x),
        }
    }

    /// Log-likelihood of a sample under this distribution.
    pub fn log_likelihood(&self, xs: &[f64]) -> f64 {
        let pdf = |x: f64| -> f64 {
            match *self {
                FittedDistribution::Exponential { rate } => Exponential::new(rate).pdf(x),
                FittedDistribution::Weibull { shape, scale } => Weibull::new(shape, scale).pdf(x),
                FittedDistribution::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).pdf(x),
                FittedDistribution::Gamma { alpha, theta } => GammaDist::new(alpha, theta).pdf(x),
            }
        };
        xs.iter().map(|&x| pdf(x).max(1e-300).ln()).sum()
    }

    /// `true` if the fit indicates a decreasing hazard rate (failure
    /// clustering): Weibull/gamma shape below 1.
    pub fn decreasing_hazard(&self) -> Option<bool> {
        match *self {
            FittedDistribution::Weibull { shape, .. } => Some(shape < 1.0),
            FittedDistribution::Gamma { alpha, .. } => Some(alpha < 1.0),
            _ => None,
        }
    }
}

impl fmt::Display for FittedDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FittedDistribution::Exponential { rate } => {
                write!(f, "exponential(rate={rate:.4})")
            }
            FittedDistribution::Weibull { shape, scale } => {
                write!(f, "weibull(shape={shape:.3}, scale={scale:.2})")
            }
            FittedDistribution::LogNormal { mu, sigma } => {
                write!(f, "lognormal(mu={mu:.3}, sigma={sigma:.3})")
            }
            FittedDistribution::Gamma { alpha, theta } => {
                write!(f, "gamma(shape={alpha:.3}, scale={theta:.2})")
            }
        }
    }
}

/// Error returned when a sample cannot be fitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitError {
    what: String,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot fit distribution: {}", self.what)
    }
}

impl std::error::Error for FitError {}

fn validate(xs: &[f64], min_n: usize) -> Result<(), FitError> {
    if xs.len() < min_n {
        return Err(FitError {
            what: format!("need at least {min_n} observations"),
        });
    }
    if xs.iter().any(|&x| !x.is_finite() || x <= 0.0) {
        return Err(FitError {
            what: "observations must be positive and finite".into(),
        });
    }
    Ok(())
}

/// MLE for the exponential distribution: `rate = 1 / mean`.
///
/// # Errors
///
/// [`FitError`] for fewer than 2 observations or non-positive values.
pub fn fit_exponential(xs: &[f64]) -> Result<FittedDistribution, FitError> {
    validate(xs, 2)?;
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    Ok(FittedDistribution::Exponential { rate: 1.0 / mean })
}

/// MLE for the log-normal distribution (exact: moments of `ln x`).
///
/// # Errors
///
/// [`FitError`] for fewer than 2 observations, non-positive values, or
/// a degenerate (constant) sample.
pub fn fit_lognormal(xs: &[f64]) -> Result<FittedDistribution, FitError> {
    validate(xs, 2)?;
    let n = xs.len() as f64;
    let logs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(FitError {
            what: "sample is constant".into(),
        });
    }
    Ok(FittedDistribution::LogNormal {
        mu,
        sigma: var.sqrt(),
    })
}

/// MLE for the Weibull distribution via Newton iteration on the profile
/// likelihood in the shape parameter.
///
/// # Errors
///
/// [`FitError`] for fewer than 3 observations, non-positive values, a
/// constant sample, or non-convergence.
pub fn fit_weibull(xs: &[f64]) -> Result<FittedDistribution, FitError> {
    validate(xs, 3)?;
    let n = xs.len() as f64;
    let logs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let mean_log = logs.iter().sum::<f64>() / n;
    let var_log = logs
        .iter()
        .map(|l| (l - mean_log) * (l - mean_log))
        .sum::<f64>()
        / n;
    if var_log <= 0.0 {
        return Err(FitError {
            what: "sample is constant".into(),
        });
    }
    // Method-of-moments start: sd(ln X) = pi / (k sqrt(6)).
    let mut k = (std::f64::consts::PI / (var_log.sqrt() * 6f64.sqrt())).clamp(0.02, 100.0);

    // Newton on g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean_log = 0.
    for _ in 0..200 {
        let mut s0 = 0.0; // sum x^k
        let mut s1 = 0.0; // sum x^k ln x
        let mut s2 = 0.0; // sum x^k (ln x)^2
        for (&x, &lx) in xs.iter().zip(&logs) {
            let xk = x.powf(k);
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let g = s1 / s0 - 1.0 / k - mean_log;
        let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        if dg.abs() < 1e-300 {
            break;
        }
        let step = g / dg;
        let next = (k - step).clamp(k / 3.0, k * 3.0).clamp(1e-3, 1e3);
        if (next - k).abs() < 1e-10 * (k + 1.0) {
            k = next;
            break;
        }
        k = next;
    }
    let scale = (xs.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    if !k.is_finite() || !scale.is_finite() || scale <= 0.0 {
        return Err(FitError {
            what: "weibull fit did not converge".into(),
        });
    }
    Ok(FittedDistribution::Weibull { shape: k, scale })
}

/// MLE for the gamma distribution via Newton iteration on the digamma
/// equation `ln(alpha) - psi(alpha) = ln(mean) - mean(ln x)`.
///
/// # Errors
///
/// [`FitError`] for fewer than 3 observations, non-positive values or a
/// constant sample.
pub fn fit_gamma(xs: &[f64]) -> Result<FittedDistribution, FitError> {
    validate(xs, 3)?;
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let mean_log = xs.iter().map(|&x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_log;
    if s <= 0.0 {
        return Err(FitError {
            what: "sample is constant".into(),
        });
    }
    // Minka's initialization.
    let mut alpha = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..100 {
        let f = alpha.ln() - digamma(alpha) - s;
        let df = 1.0 / alpha - crate::special::trigamma(alpha);
        if df.abs() < 1e-300 {
            break;
        }
        let next = (alpha - f / df)
            .clamp(alpha / 3.0, alpha * 3.0)
            .clamp(1e-4, 1e6);
        if (next - alpha).abs() < 1e-12 * (alpha + 1.0) {
            alpha = next;
            break;
        }
        alpha = next;
    }
    Ok(FittedDistribution::Gamma {
        alpha,
        theta: mean / alpha,
    })
}

/// The one-sample Kolmogorov-Smirnov statistic `D = sup |F_n - F|`
/// against a fitted distribution, with an asymptotic p-value.
///
/// (The p-value is the classic asymptotic one; with estimated
/// parameters it is optimistic, which is fine for *ranking* fits.)
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-finite values.
pub fn ks_test(xs: &[f64], dist: &FittedDistribution) -> (f64, f64) {
    assert!(!xs.is_empty(), "KS test needs observations");
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "KS test requires finite values"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    // Kolmogorov asymptotic tail.
    let t = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let mut p = 0.0;
    for j in 1..=100 {
        let jf = j as f64;
        let term = 2.0 * (-1.0f64).powi(j + 1) * (-2.0 * jf * jf * t * t).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    (d, p.clamp(0.0, 1.0))
}

/// One candidate in a model-selection ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedFit {
    /// The fitted distribution.
    pub dist: FittedDistribution,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
    /// KS statistic against the sample.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub ks_p_value: f64,
}

/// Fits all candidate families to a sample and ranks them by AIC
/// (best first). Families that fail to fit are skipped.
///
/// # Errors
///
/// [`FitError`] if *no* family could be fitted.
pub fn rank_fits(xs: &[f64]) -> Result<Vec<RankedFit>, FitError> {
    let candidates = [
        fit_exponential(xs),
        fit_weibull(xs),
        fit_lognormal(xs),
        fit_gamma(xs),
    ];
    let mut out = Vec::new();
    for dist in candidates.into_iter().flatten() {
        let ll = dist.log_likelihood(xs);
        if !ll.is_finite() {
            continue;
        }
        let (d, p) = ks_test(xs, &dist);
        out.push(RankedFit {
            dist,
            log_likelihood: ll,
            aic: -2.0 * ll + 2.0 * dist.n_params() as f64,
            ks_statistic: d,
            ks_p_value: p,
        });
    }
    if out.is_empty() {
        return Err(FitError {
            what: "no candidate family could be fitted".into(),
        });
    }
    out.sort_by(|a, b| a.aic.partial_cmp(&b.aic).expect("AICs are finite"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential as ExpDist, Weibull as WeibullDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let xs = sample(&ExpDist::new(0.5), 20_000, 1);
        let FittedDistribution::Exponential { rate } = fit_exponential(&xs).unwrap() else {
            panic!("wrong family");
        };
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn weibull_mle_recovers_shape_and_scale() {
        for (shape, scale, seed) in [(0.7, 10.0, 2u64), (1.0, 3.0, 3), (2.2, 5.0, 4)] {
            let xs = sample(&WeibullDist::new(shape, scale), 20_000, seed);
            let FittedDistribution::Weibull { shape: k, scale: l } = fit_weibull(&xs).unwrap()
            else {
                panic!("wrong family");
            };
            assert!(
                (k - shape).abs() < 0.05 * shape + 0.02,
                "shape {k} vs {shape}"
            );
            assert!(
                (l - scale).abs() < 0.05 * scale + 0.05,
                "scale {l} vs {scale}"
            );
        }
    }

    #[test]
    fn lognormal_mle_exact_for_moments() {
        let xs = sample(&LogNormal::new(1.0, 0.5), 20_000, 5);
        let FittedDistribution::LogNormal { mu, sigma } = fit_lognormal(&xs).unwrap() else {
            panic!("wrong family");
        };
        assert!((mu - 1.0).abs() < 0.02, "mu {mu}");
        assert!((sigma - 0.5).abs() < 0.02, "sigma {sigma}");
    }

    #[test]
    fn gamma_mle_recovers_shape() {
        let xs = sample(&GammaDist::new(2.5, 4.0), 20_000, 6);
        let FittedDistribution::Gamma { alpha, theta } = fit_gamma(&xs).unwrap() else {
            panic!("wrong family");
        };
        assert!((alpha - 2.5).abs() < 0.12, "alpha {alpha}");
        assert!((theta - 4.0).abs() < 0.25, "theta {theta}");
    }

    #[test]
    fn decreasing_hazard_detected() {
        let clustered = sample(&WeibullDist::new(0.6, 10.0), 5000, 7);
        let fit = fit_weibull(&clustered).unwrap();
        assert_eq!(fit.decreasing_hazard(), Some(true));
        let regular = sample(&WeibullDist::new(2.0, 10.0), 5000, 8);
        let fit = fit_weibull(&regular).unwrap();
        assert_eq!(fit.decreasing_hazard(), Some(false));
        assert_eq!(fit_exponential(&regular).unwrap().decreasing_hazard(), None);
    }

    #[test]
    fn ks_accepts_true_distribution_rejects_wrong_one() {
        let xs = sample(&ExpDist::new(1.0), 2000, 9);
        let right = FittedDistribution::Exponential { rate: 1.0 };
        let (_, p_right) = ks_test(&xs, &right);
        assert!(p_right > 0.01, "true model rejected, p {p_right}");
        let wrong = FittedDistribution::Exponential { rate: 3.0 };
        let (_, p_wrong) = ks_test(&xs, &wrong);
        assert!(p_wrong < 1e-6, "wrong model accepted, p {p_wrong}");
    }

    #[test]
    fn aic_ranks_true_family_first() {
        // Strongly clustered Weibull data: weibull/gamma must beat
        // exponential.
        let xs = sample(&WeibullDist::new(0.5, 10.0), 5000, 10);
        let ranked = rank_fits(&xs).unwrap();
        assert!(ranked.len() >= 3);
        assert_ne!(ranked[0].dist.family(), "exponential", "{:?}", ranked[0]);
        let exp_aic = ranked
            .iter()
            .find(|r| r.dist.family() == "exponential")
            .unwrap()
            .aic;
        assert!(ranked[0].aic < exp_aic - 10.0);
    }

    #[test]
    fn exponential_data_keeps_exponential_competitive() {
        let xs = sample(&ExpDist::new(0.2), 5000, 11);
        let ranked = rank_fits(&xs).unwrap();
        // Weibull nests exponential, so AICs sit within a few points.
        let best = ranked[0].aic;
        let exp_aic = ranked
            .iter()
            .find(|r| r.dist.family() == "exponential")
            .unwrap()
            .aic;
        assert!(exp_aic - best < 6.0, "exp {exp_aic} vs best {best}");
    }

    #[test]
    fn fit_errors_are_informative() {
        assert!(fit_exponential(&[1.0]).is_err());
        assert!(fit_weibull(&[1.0, -2.0, 3.0]).is_err());
        assert!(fit_lognormal(&[2.0, 2.0, 2.0]).is_err());
        let err = fit_gamma(&[5.0, 5.0, 5.0]).unwrap_err();
        assert!(err.to_string().contains("constant"));
    }

    #[test]
    fn display_formats() {
        let d = FittedDistribution::Weibull {
            shape: 0.75,
            scale: 12.0,
        };
        assert_eq!(d.to_string(), "weibull(shape=0.750, scale=12.00)");
    }
}
