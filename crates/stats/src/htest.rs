//! Hypothesis tests: chi-square tests for equal proportions and
//! goodness of fit, and likelihood-ratio (ANOVA) tests for nested models.
//!
//! Section IV of the paper uses a chi-square test for differences
//! between proportions to reject "all nodes fail at equal rates";
//! Section VI compares a saturated per-user Poisson model against a
//! common-rate model with an ANOVA (likelihood-ratio) test.

use crate::dist::{ChiSquared, Distribution};

/// A generic test result: statistic, degrees of freedom and p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom of the reference distribution.
    pub df: f64,
    /// The p-value.
    pub p_value: f64,
}

impl TestResult {
    /// `true` if the null hypothesis is rejected at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square test of the null hypothesis that `k` groups share a common
/// event rate, given per-group event `counts` and per-group `exposure`
/// (observation time or trial counts).
///
/// Expected counts under H0 are `exposure_i * sum(counts) / sum(exposure)`;
/// the statistic is `sum (obs - exp)^2 / exp` with `k - 1` degrees of
/// freedom. This is the paper's "chi-square test for differences between
/// proportions" applied to per-node failure counts.
///
/// # Panics
///
/// Panics if the slices have different lengths, fewer than 2 groups,
/// or any exposure is not strictly positive.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::htest::chi_square_equal_proportions;
///
/// // One node with 10x the failures of its peers.
/// let counts = [100.0, 10.0, 9.0, 11.0, 10.0];
/// let exposure = [1.0; 5];
/// let t = chi_square_equal_proportions(&counts, &exposure);
/// assert!(t.significant_at(0.01));
/// ```
pub fn chi_square_equal_proportions(counts: &[f64], exposure: &[f64]) -> TestResult {
    assert_eq!(
        counts.len(),
        exposure.len(),
        "counts and exposure lengths differ"
    );
    assert!(counts.len() >= 2, "need at least two groups");
    assert!(
        exposure.iter().all(|&e| e > 0.0),
        "exposures must be positive"
    );
    let total_count: f64 = counts.iter().sum();
    let total_exposure: f64 = exposure.iter().sum();
    let rate = total_count / total_exposure;
    let mut stat = 0.0;
    for (&obs, &exp_time) in counts.iter().zip(exposure) {
        let expected = rate * exp_time;
        if expected > 0.0 {
            stat += (obs - expected) * (obs - expected) / expected;
        }
    }
    let df = (counts.len() - 1) as f64;
    let p_value = if total_count == 0.0 {
        1.0
    } else {
        ChiSquared::new(df).sf(stat)
    };
    TestResult {
        statistic: stat,
        df,
        p_value,
    }
}

/// Chi-square goodness-of-fit test of observed counts against expected
/// counts.
///
/// # Panics
///
/// Panics if lengths differ, fewer than 2 cells, or any expected count
/// is not strictly positive.
pub fn chi_square_goodness_of_fit(observed: &[f64], expected: &[f64]) -> TestResult {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected lengths differ"
    );
    assert!(observed.len() >= 2, "need at least two cells");
    assert!(
        expected.iter().all(|&e| e > 0.0),
        "expected counts must be positive"
    );
    let stat: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    let df = (observed.len() - 1) as f64;
    TestResult {
        statistic: stat,
        df,
        p_value: ChiSquared::new(df).sf(stat),
    }
}

/// Likelihood-ratio (analysis-of-deviance) test between two nested
/// models: the deviance drop `2 (ll_full - ll_reduced)` is chi-square
/// with `df_full - df_reduced` degrees of freedom under H0.
///
/// This is the ANOVA the paper applies in Section VI to show the
/// saturated per-user failure-rate model beats the common-rate model.
///
/// # Panics
///
/// Panics if `df_full <= df_reduced`.
pub fn anova_lrt(ll_full: f64, df_full: usize, ll_reduced: f64, df_reduced: usize) -> TestResult {
    assert!(df_full > df_reduced, "full model must have more parameters");
    let statistic = (2.0 * (ll_full - ll_reduced)).max(0.0);
    let df = (df_full - df_reduced) as f64;
    TestResult {
        statistic,
        df,
        p_value: ChiSquared::new(df).sf(statistic),
    }
}

/// Log-likelihood of independent Poisson counts with per-group rates
/// `rate_i = counts_i / exposure_i` (the saturated model).
///
/// Groups with zero counts contribute `-0` (their MLE rate is 0).
/// Constant `ln(y!)` terms are included so likelihoods are comparable
/// across models.
///
/// # Panics
///
/// Panics if lengths differ or any exposure is not strictly positive.
pub fn poisson_saturated_ll(counts: &[f64], exposure: &[f64]) -> f64 {
    assert_eq!(
        counts.len(),
        exposure.len(),
        "counts and exposure lengths differ"
    );
    assert!(
        exposure.iter().all(|&e| e > 0.0),
        "exposures must be positive"
    );
    counts
        .iter()
        .zip(exposure)
        .map(|(&y, &t)| poisson_ll_term(y, if y > 0.0 { y } else { 0.0 }, t))
        .sum()
}

/// Log-likelihood of independent Poisson counts under a single common
/// rate `sum(counts) / sum(exposure)`.
///
/// # Panics
///
/// Panics if lengths differ or any exposure is not strictly positive.
pub fn poisson_common_rate_ll(counts: &[f64], exposure: &[f64]) -> f64 {
    assert_eq!(
        counts.len(),
        exposure.len(),
        "counts and exposure lengths differ"
    );
    assert!(
        exposure.iter().all(|&e| e > 0.0),
        "exposures must be positive"
    );
    let rate = counts.iter().sum::<f64>() / exposure.iter().sum::<f64>();
    counts
        .iter()
        .zip(exposure)
        .map(|(&y, &t)| poisson_ll_term(y, rate * t, t))
        .sum()
}

/// One Poisson log-likelihood term `y ln(mu) - mu - ln(y!)`, where `mu`
/// is the expected count. `mu = 0` with `y = 0` contributes 0.
fn poisson_ll_term(y: f64, mu: f64, _exposure: f64) -> f64 {
    let ln_fact = crate::special::ln_gamma(y + 1.0);
    if mu == 0.0 {
        if y == 0.0 {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        y * mu.ln() - mu - ln_fact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rates_not_rejected() {
        let counts = [10.0, 11.0, 9.0, 10.0, 12.0, 8.0];
        let exposure = [1.0; 6];
        let t = chi_square_equal_proportions(&counts, &exposure);
        assert!(!t.significant_at(0.05), "p = {}", t.p_value);
        assert_eq!(t.df, 5.0);
    }

    #[test]
    fn outlier_node_rejected() {
        // Node 0 with ~19x the average failures, as in System 20.
        let mut counts = vec![10.0; 100];
        counts[0] = 190.0;
        let exposure = vec![1.0; 100];
        let t = chi_square_equal_proportions(&counts, &exposure);
        assert!(t.significant_at(0.01));
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn unequal_exposure_handled() {
        // Same rate, different exposures: should not reject.
        let counts = [20.0, 10.0, 40.0];
        let exposure = [2.0, 1.0, 4.0];
        let t = chi_square_equal_proportions(&counts, &exposure);
        assert!((t.statistic).abs() < 1e-12);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn zero_counts_give_p_one() {
        let t = chi_square_equal_proportions(&[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn goodness_of_fit_textbook_example() {
        // Fair die, 60 rolls: observed vs expected 10 each.
        let obs = [5.0, 8.0, 9.0, 8.0, 10.0, 20.0];
        let exp = [10.0; 6];
        let t = chi_square_goodness_of_fit(&obs, &exp);
        assert!((t.statistic - 13.4).abs() < 1e-9);
        assert_eq!(t.df, 5.0);
        assert!(t.p_value > 0.01 && t.p_value < 0.05);
    }

    #[test]
    fn lrt_detects_heterogeneous_users() {
        // 10 users with very different rates.
        let counts: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let exposure = vec![100.0; 10];
        let full = poisson_saturated_ll(&counts, &exposure);
        let reduced = poisson_common_rate_ll(&counts, &exposure);
        assert!(full >= reduced);
        let t = anova_lrt(full, 10, reduced, 1);
        assert_eq!(t.df, 9.0);
        assert!(t.significant_at(0.01));
    }

    #[test]
    fn lrt_homogeneous_users_not_significant() {
        let counts = vec![10.0; 8];
        let exposure = vec![100.0; 8];
        let full = poisson_saturated_ll(&counts, &exposure);
        let reduced = poisson_common_rate_ll(&counts, &exposure);
        // Identical rates: the models coincide.
        assert!((full - reduced).abs() < 1e-9);
        let t = anova_lrt(full, 8, reduced, 1);
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn saturated_ll_dominates_common_rate() {
        let counts = [3.0, 0.0, 12.0, 7.0];
        let exposure = [10.0, 20.0, 5.0, 8.0];
        assert!(
            poisson_saturated_ll(&counts, &exposure) >= poisson_common_rate_ll(&counts, &exposure)
        );
    }

    #[test]
    #[should_panic(expected = "more parameters")]
    fn lrt_requires_nesting() {
        let _ = anova_lrt(0.0, 1, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn chi_square_length_mismatch() {
        let _ = chi_square_equal_proportions(&[1.0, 2.0], &[1.0]);
    }
}
