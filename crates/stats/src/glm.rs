//! Generalized linear models with a log link: Poisson and
//! negative-binomial regression via iteratively reweighted least
//! squares (IRLS).
//!
//! Sections VI, VIII and X of the paper fit Poisson and negative-
//! binomial regressions of per-node outage counts on usage, temperature
//! and layout predictors, and read significance off Wald z-tests
//! (Tables II and III). This module reproduces that machinery, including
//! maximum-likelihood estimation of the negative-binomial dispersion
//! `theta` (the equivalent of R's `MASS::glm.nb`).
//!
//! # Examples
//!
//! Fitting a Poisson rate model with an exposure offset:
//!
//! ```
//! use hpcfail_stats::glm::{Family, GlmModel};
//!
//! // Counts observed over different exposure times, one binary predictor.
//! let y = [12.0, 15.0, 9.0, 30.0, 28.0, 35.0];
//! let group = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
//! let exposure = [10.0f64, 12.0, 8.0, 10.0, 9.0, 11.0];
//! let offset: Vec<f64> = exposure.iter().map(|t| t.ln()).collect();
//!
//! let fit = GlmModel::new(Family::Poisson)
//!     .term("group", &group)
//!     .offset(&offset)
//!     .fit(&y)?;
//! assert!(fit.coefficient("group").unwrap().estimate > 0.5); // higher rate
//! # Ok::<(), hpcfail_stats::glm::GlmError>(())
//! ```

use crate::dist::{ChiSquared, Distribution};
use crate::linalg::{LinalgError, Matrix};
use crate::special::{digamma, ln_gamma, standard_normal_cdf, trigamma};
use std::fmt;

/// Maximum IRLS iterations before reporting non-convergence.
const MAX_IRLS_ITER: usize = 100;
/// Maximum outer theta-estimation iterations for `glm.nb`-style fits.
const MAX_THETA_ITER: usize = 50;
/// Convergence tolerance on relative deviance change.
const DEVIANCE_TOL: f64 = 1e-10;
/// Linear-predictor clamp keeping `exp` finite and weights positive.
const ETA_CLAMP: f64 = 30.0;

/// Errors from model specification or fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GlmError {
    /// The response is empty or all terms/rows are inconsistent lengths.
    DimensionMismatch {
        /// Description of the offending input.
        what: String,
    },
    /// The response contains a negative or non-finite value.
    InvalidResponse {
        /// Index of the offending observation.
        index: usize,
    },
    /// Fewer observations than parameters.
    Underdetermined,
    /// The weighted normal equations are singular (collinear predictors).
    Singular,
    /// IRLS failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for GlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlmError::DimensionMismatch { what } => {
                write!(f, "dimension mismatch in {what}")
            }
            GlmError::InvalidResponse { index } => {
                write!(
                    f,
                    "response value at index {index} is negative or non-finite"
                )
            }
            GlmError::Underdetermined => f.write_str("fewer observations than parameters"),
            GlmError::Singular => f.write_str("design matrix is singular (collinear predictors)"),
            GlmError::NoConvergence { iterations } => {
                write!(f, "IRLS did not converge in {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for GlmError {}

impl From<LinalgError> for GlmError {
    fn from(_: LinalgError) -> Self {
        GlmError::Singular
    }
}

/// The response family (and so the variance function) of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Poisson counts: variance = mean.
    Poisson,
    /// Negative binomial with *fixed* dispersion: variance
    /// = mean + mean²/theta.
    NegativeBinomial {
        /// The (fixed) dispersion parameter.
        theta: f64,
    },
}

impl Family {
    /// IRLS working weight at mean `mu` (prior weight 1).
    fn weight(self, mu: f64) -> f64 {
        match self {
            Family::Poisson => mu,
            Family::NegativeBinomial { theta } => mu / (1.0 + mu / theta),
        }
    }

    /// Unit deviance contribution of observation `(y, mu)`.
    fn deviance_term(self, y: f64, mu: f64) -> f64 {
        match self {
            Family::Poisson => {
                if y > 0.0 {
                    2.0 * (y * (y / mu).ln() - (y - mu))
                } else {
                    2.0 * mu
                }
            }
            Family::NegativeBinomial { theta } => {
                let a = if y > 0.0 { y * (y / mu).ln() } else { 0.0 };
                2.0 * (a - (y + theta) * ((y + theta) / (mu + theta)).ln())
            }
        }
    }

    /// Log-likelihood contribution of observation `(y, mu)`.
    fn ll_term(self, y: f64, mu: f64) -> f64 {
        match self {
            Family::Poisson => y * mu.ln() - mu - ln_gamma(y + 1.0),
            Family::NegativeBinomial { theta } => {
                ln_gamma(y + theta) - ln_gamma(theta) - ln_gamma(y + 1.0)
                    + theta * (theta / (theta + mu)).ln()
                    + y * (mu / (theta + mu)).ln()
            }
        }
    }

    /// Number of distribution parameters beyond the coefficients
    /// (1 for the estimated NB theta when counted in AIC).
    fn extra_params(self) -> usize {
        match self {
            Family::Poisson => 0,
            Family::NegativeBinomial { .. } => 1,
        }
    }
}

/// One fitted coefficient with its Wald test, a row of Tables II/III.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficient {
    /// Term name (`"(Intercept)"` for the intercept).
    pub name: String,
    /// Point estimate on the log scale.
    pub estimate: f64,
    /// Standard error from the Fisher information.
    pub std_error: f64,
    /// Wald z statistic, `estimate / std_error`.
    pub z_value: f64,
    /// Two-sided p-value `Pr(>|z|)`.
    pub p_value: f64,
}

impl Coefficient {
    /// `true` if the coefficient differs from zero at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// A fitted GLM.
#[derive(Debug, Clone, PartialEq)]
pub struct GlmFit {
    /// The family the model was fitted with (for NB fits with estimated
    /// theta, this carries the final theta).
    pub family: Family,
    /// Fitted coefficients, intercept first.
    pub coefficients: Vec<Coefficient>,
    /// Residual deviance.
    pub deviance: f64,
    /// Deviance of the intercept-only model on the same data.
    pub null_deviance: f64,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion.
    pub aic: f64,
    /// IRLS iterations used.
    pub iterations: usize,
    /// Number of observations.
    pub n: usize,
    /// Fitted means, one per observation.
    pub fitted: Vec<f64>,
}

impl GlmFit {
    /// Looks up a coefficient by term name.
    pub fn coefficient(&self, name: &str) -> Option<&Coefficient> {
        self.coefficients.iter().find(|c| c.name == name)
    }

    /// Number of estimated regression coefficients.
    pub fn n_params(&self) -> usize {
        self.coefficients.len()
    }

    /// Pearson dispersion estimate `sum((y - mu)^2 / V(mu)) / (n - p)`.
    ///
    /// Values well above 1 under a Poisson fit indicate overdispersion —
    /// the diagnostic that motivates refitting with the negative
    /// binomial (as the paper does for Tables II/III).
    ///
    /// Requires the response used for fitting, since the fit stores only
    /// fitted means.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != n` or the model has no residual degrees of
    /// freedom.
    pub fn pearson_dispersion(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.n, "response length must match the fit");
        assert!(self.n > self.n_params(), "no residual degrees of freedom");
        let var = |mu: f64| match self.family {
            Family::Poisson => mu,
            Family::NegativeBinomial { theta } => mu + mu * mu / theta,
        };
        let chi2: f64 = y
            .iter()
            .zip(&self.fitted)
            .map(|(&yi, &mui)| {
                let v = var(mui).max(1e-12);
                (yi - mui) * (yi - mui) / v
            })
            .sum();
        chi2 / (self.n - self.n_params()) as f64
    }

    /// Likelihood-ratio test against a nested fit (same family, fewer
    /// terms). Returns `(statistic, df, p_value)`.
    ///
    /// # Panics
    ///
    /// Panics if `reduced` does not have strictly fewer parameters.
    pub fn lrt_against(&self, reduced: &GlmFit) -> (f64, f64, f64) {
        assert!(
            self.n_params() > reduced.n_params(),
            "reduced model must have fewer parameters"
        );
        let stat = (2.0 * (self.log_likelihood - reduced.log_likelihood)).max(0.0);
        let df = (self.n_params() - reduced.n_params()) as f64;
        (stat, df, ChiSquared::new(df).sf(stat))
    }
}

/// A GLM specification under construction (non-consuming builder).
///
/// Terms are added column-by-column; an intercept is included by
/// default. Call [`GlmModel::fit`] with the response to estimate.
#[derive(Debug, Clone)]
pub struct GlmModel {
    family: Family,
    intercept: bool,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    offset: Option<Vec<f64>>,
}

impl GlmModel {
    /// Starts a model for the given family.
    pub fn new(family: Family) -> Self {
        GlmModel {
            family,
            intercept: true,
            names: Vec::new(),
            columns: Vec::new(),
            offset: None,
        }
    }

    /// Adds a predictor column.
    pub fn term(&mut self, name: &str, values: &[f64]) -> &mut Self {
        self.names.push(name.to_owned());
        self.columns.push(values.to_vec());
        self
    }

    /// Includes or excludes the intercept (included by default).
    pub fn intercept(&mut self, include: bool) -> &mut Self {
        self.intercept = include;
        self
    }

    /// Sets a per-observation offset on the linear predictor, e.g.
    /// `ln(exposure)` for rate models.
    pub fn offset(&mut self, values: &[f64]) -> &mut Self {
        self.offset = Some(values.to_vec());
        self
    }

    /// Fits the model to the response `y` by IRLS.
    ///
    /// # Errors
    ///
    /// Returns a [`GlmError`] for inconsistent dimensions, invalid
    /// responses, singular designs or non-convergence.
    pub fn fit(&self, y: &[f64]) -> Result<GlmFit, GlmError> {
        let (x, names) = self.design(y.len())?;
        validate_response(y)?;
        let offset = self.effective_offset(y.len())?;
        let (fit, _) = irls(self.family, &x, &names, y, &offset)?;
        Ok(fit)
    }

    /// Builds the design matrix and term names.
    fn design(&self, n: usize) -> Result<(Matrix, Vec<String>), GlmError> {
        if n == 0 {
            return Err(GlmError::DimensionMismatch {
                what: "empty response".into(),
            });
        }
        for (name, col) in self.names.iter().zip(&self.columns) {
            if col.len() != n {
                return Err(GlmError::DimensionMismatch {
                    what: format!("term {name:?}"),
                });
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(GlmError::DimensionMismatch {
                    what: format!("non-finite value in term {name:?}"),
                });
            }
        }
        let p = self.columns.len() + usize::from(self.intercept);
        if p == 0 {
            return Err(GlmError::DimensionMismatch {
                what: "model with no terms".into(),
            });
        }
        if n < p {
            return Err(GlmError::Underdetermined);
        }
        let mut x = Matrix::zeros(n, p);
        let mut names = Vec::with_capacity(p);
        let mut j0 = 0;
        if self.intercept {
            for i in 0..n {
                x[(i, 0)] = 1.0;
            }
            names.push("(Intercept)".to_owned());
            j0 = 1;
        }
        for (j, (name, col)) in self.names.iter().zip(&self.columns).enumerate() {
            for i in 0..n {
                x[(i, j0 + j)] = col[i];
            }
            names.push(name.clone());
        }
        Ok((x, names))
    }

    fn effective_offset(&self, n: usize) -> Result<Vec<f64>, GlmError> {
        match &self.offset {
            Some(o) if o.len() != n => Err(GlmError::DimensionMismatch {
                what: "offset".into(),
            }),
            Some(o) => Ok(o.clone()),
            None => Ok(vec![0.0; n]),
        }
    }
}

fn validate_response(y: &[f64]) -> Result<(), GlmError> {
    for (i, &v) in y.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(GlmError::InvalidResponse { index: i });
        }
    }
    Ok(())
}

/// Core IRLS loop. Returns the fit and the final coefficient vector.
fn irls(
    family: Family,
    x: &Matrix,
    names: &[String],
    y: &[f64],
    offset: &[f64],
) -> Result<(GlmFit, Vec<f64>), GlmError> {
    let n = y.len();
    let p = x.cols();

    // Initialize the linear predictor from the response.
    let mut eta: Vec<f64> = y.iter().map(|&v| (v + 0.5).ln()).collect();
    let mut beta = vec![0.0; p];
    let mut deviance = f64::INFINITY;
    let mut iterations = 0;

    for iter in 1..=MAX_IRLS_ITER {
        iterations = iter;
        let mu: Vec<f64> = eta
            .iter()
            .map(|&e| e.clamp(-ETA_CLAMP, ETA_CLAMP).exp())
            .collect();

        // Weighted normal equations: (X' W X) beta = X' W z.
        let mut xtwx = Matrix::zeros(p, p);
        let mut xtwz = vec![0.0; p];
        for i in 0..n {
            let w = family.weight(mu[i]).max(1e-12);
            let z = eta[i] - offset[i] + (y[i] - mu[i]) / mu[i];
            let row = x.row(i);
            for a in 0..p {
                let wa = w * row[a];
                xtwz[a] += wa * z;
                for b in a..p {
                    xtwx[(a, b)] += wa * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..p {
            for b in 0..a {
                xtwx[(a, b)] = xtwx[(b, a)];
            }
        }

        beta = xtwx.solve_spd(&xtwz).map_err(|_| GlmError::Singular)?;
        for i in 0..n {
            let lin: f64 = x.row(i).iter().zip(&beta).map(|(a, b)| a * b).sum();
            eta[i] = (lin + offset[i]).clamp(-ETA_CLAMP, ETA_CLAMP);
        }

        let new_dev: f64 = y
            .iter()
            .zip(eta.iter().map(|&e| e.exp()))
            .map(|(&yi, mui)| family.deviance_term(yi, mui))
            .sum();
        if (deviance - new_dev).abs() < DEVIANCE_TOL * (new_dev.abs() + 0.1) {
            deviance = new_dev;
            break;
        }
        deviance = new_dev;
        if iter == MAX_IRLS_ITER {
            return Err(GlmError::NoConvergence { iterations: iter });
        }
    }

    let mu: Vec<f64> = eta.iter().map(|&e| e.exp()).collect();

    // Fisher information and standard errors.
    let mut xtwx = Matrix::zeros(p, p);
    for (i, &m) in mu.iter().enumerate() {
        let w = family.weight(m).max(1e-12);
        let row = x.row(i);
        for a in 0..p {
            for b in a..p {
                xtwx[(a, b)] += w * row[a] * row[b];
            }
        }
    }
    for a in 0..p {
        for b in 0..a {
            xtwx[(a, b)] = xtwx[(b, a)];
        }
    }
    let cov = xtwx.inverse_spd().map_err(|_| GlmError::Singular)?;

    let coefficients: Vec<Coefficient> = (0..p)
        .map(|j| {
            let estimate = beta[j];
            let std_error = cov[(j, j)].max(0.0).sqrt();
            let z_value = if std_error > 0.0 {
                estimate / std_error
            } else {
                0.0
            };
            let p_value = (2.0 * standard_normal_cdf(-z_value.abs())).min(1.0);
            Coefficient {
                name: names[j].clone(),
                estimate,
                std_error,
                z_value,
                p_value,
            }
        })
        .collect();

    let log_likelihood: f64 = y
        .iter()
        .zip(&mu)
        .map(|(&yi, &mui)| family.ll_term(yi, mui))
        .sum();
    let aic = -2.0 * log_likelihood + 2.0 * (p + family.extra_params()) as f64;

    // Null deviance: intercept-only model with the same offset.
    let null_deviance = null_deviance(family, y, offset);

    Ok((
        GlmFit {
            family,
            coefficients,
            deviance,
            null_deviance,
            log_likelihood,
            aic,
            iterations,
            n,
            fitted: mu,
        },
        beta,
    ))
}

/// Deviance of the intercept-only model, solved by a 1-parameter IRLS.
fn null_deviance(family: Family, y: &[f64], offset: &[f64]) -> f64 {
    let n = y.len();
    // With a log link and offset, the intercept-only MLE satisfies
    // sum(y) = sum(exp(b0 + o_i)); solve for b0 by Newton.
    let sum_y: f64 = y.iter().sum();
    if sum_y == 0.0 {
        return y
            .iter()
            .zip(offset)
            .map(|(&yi, &o)| family.deviance_term(yi, (o - ETA_CLAMP).exp()))
            .sum();
    }
    let mut b0 = (sum_y / offset.iter().map(|&o| o.exp()).sum::<f64>()).ln();
    for _ in 0..50 {
        let s: f64 = offset.iter().map(|&o| (b0 + o).exp()).sum();
        let step = (sum_y / s).ln();
        b0 += step;
        if step.abs() < 1e-12 {
            break;
        }
    }
    let _ = n;
    y.iter()
        .zip(offset)
        .map(|(&yi, &o)| family.deviance_term(yi, (b0 + o).exp()))
        .sum()
}

/// Fits a negative-binomial GLM with `theta` estimated by maximum
/// likelihood (alternating IRLS and Newton steps on the profile
/// likelihood), like R's `MASS::glm.nb`.
///
/// The returned fit's [`GlmFit::family`] carries the estimated theta.
///
/// # Errors
///
/// Propagates [`GlmError`] from the inner IRLS fits; also fails with
/// [`GlmError::NoConvergence`] if theta does not stabilize.
///
/// # Examples
///
/// ```
/// use hpcfail_stats::glm::{fit_negative_binomial, Family, GlmModel};
///
/// let y = [0.0, 2.0, 1.0, 4.0, 9.0, 3.0, 0.0, 7.0, 2.0, 5.0];
/// let x: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
/// let mut model = GlmModel::new(Family::Poisson); // family is replaced
/// model.term("x", &x);
/// let fit = fit_negative_binomial(&model, &y)?;
/// assert!(matches!(fit.family, Family::NegativeBinomial { .. }));
/// # Ok::<(), hpcfail_stats::glm::GlmError>(())
/// ```
pub fn fit_negative_binomial(model: &GlmModel, y: &[f64]) -> Result<GlmFit, GlmError> {
    validate_response(y)?;
    let n = y.len();
    let (x, names) = model.design(n)?;
    let offset = model.effective_offset(n)?;

    // Moment-based initial theta from a Poisson fit's residuals.
    let (poisson_fit, _) = irls(Family::Poisson, &x, &names, y, &offset)?;
    let mut theta = initial_theta(y, &poisson_fit.fitted);

    for _ in 0..MAX_THETA_ITER {
        let family = Family::NegativeBinomial { theta };
        let (fit, _) = irls(family, &x, &names, y, &offset)?;
        let new_theta = newton_theta(y, &fit.fitted, theta);
        let done = (new_theta - theta).abs() < 1e-8 * (theta + 1.0);
        theta = new_theta;
        if done {
            break;
        }
    }
    // Re-fit once at the final theta so coefficients and theta agree.
    let family = Family::NegativeBinomial { theta };
    let (fit, _) = irls(family, &x, &names, y, &offset)?;
    Ok(fit)
}

/// Moment estimator of theta: `mean^2 / (var - mean)`, clamped to a
/// sane range.
fn initial_theta(y: &[f64], mu: &[f64]) -> f64 {
    let n = y.len() as f64;
    // Pearson-style moment estimate using fitted means.
    let mut num = 0.0;
    for (yi, mi) in y.iter().zip(mu) {
        num += (yi - mi) * (yi - mi) / mi.max(1e-12) - 1.0;
    }
    let disp = (num / n).max(1e-4);
    let mean = y.iter().sum::<f64>() / n;
    (mean / disp).clamp(1e-3, 1e7)
}

/// One-dimensional Newton iteration on the profile log-likelihood in
/// theta, holding the fitted means fixed.
fn newton_theta(y: &[f64], mu: &[f64], mut theta: f64) -> f64 {
    for _ in 0..50 {
        let mut score = 0.0;
        let mut info = 0.0;
        for (&yi, &mi) in y.iter().zip(mu) {
            score += digamma(yi + theta) - digamma(theta) + (theta / (theta + mi)).ln() + 1.0
                - (yi + theta) / (theta + mi);
            info += trigamma(yi + theta) - trigamma(theta) + 1.0 / theta - 2.0 / (theta + mi)
                + (yi + theta) / ((theta + mi) * (theta + mi));
        }
        if info.abs() < 1e-300 {
            break;
        }
        let step = score / info;
        let new_theta = (theta - step)
            .clamp(theta / 10.0, theta * 10.0)
            .clamp(1e-3, 1e7);
        if (new_theta - theta).abs() < 1e-10 * (theta + 1.0) {
            return new_theta;
        }
        theta = new_theta;
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, NegativeBinomial, Poisson as PoissonDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn intercept_only_poisson_recovers_log_mean() {
        let y = [2.0, 4.0, 3.0, 5.0, 6.0];
        let fit = GlmModel::new(Family::Poisson).fit(&y).unwrap();
        let b0 = fit.coefficient("(Intercept)").unwrap();
        close(b0.estimate, 4.0f64.ln(), 1e-8);
        // SE of intercept-only Poisson = 1/sqrt(sum y).
        close(b0.std_error, 1.0 / 20.0f64.sqrt(), 1e-8);
    }

    #[test]
    fn binary_covariate_recovers_log_rate_ratio() {
        let y = [10.0, 12.0, 8.0, 30.0, 33.0, 27.0];
        let g = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let fit = GlmModel::new(Family::Poisson)
            .term("g", &g)
            .fit(&y)
            .unwrap();
        close(
            fit.coefficient("(Intercept)").unwrap().estimate,
            10.0f64.ln(),
            1e-8,
        );
        close(
            fit.coefficient("g").unwrap().estimate,
            (30.0f64 / 10.0).ln(),
            1e-8,
        );
        assert!(fit.coefficient("g").unwrap().significant_at(0.01));
    }

    #[test]
    fn offset_rate_model() {
        // Same underlying rate 2.0 per unit exposure everywhere.
        let exposure = [1.0, 2.0, 5.0, 10.0];
        let y = [2.0, 4.0, 10.0, 20.0];
        let offset: Vec<f64> = exposure.iter().map(|t: &f64| t.ln()).collect();
        let fit = GlmModel::new(Family::Poisson)
            .offset(&offset)
            .fit(&y)
            .unwrap();
        close(
            fit.coefficient("(Intercept)").unwrap().estimate,
            2.0f64.ln(),
            1e-8,
        );
    }

    #[test]
    fn simulated_poisson_recovery() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let b0 = 0.5;
        let b1 = 0.8;
        let b2 = -0.4;
        let mut x1 = Vec::with_capacity(n);
        let mut x2 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let v1 = (i as f64 / n as f64) * 2.0 - 1.0;
            let v2 = ((i * 7919) % 1000) as f64 / 1000.0 - 0.5;
            let mu = (b0 + b1 * v1 + b2 * v2).exp();
            y.push(PoissonDist::new(mu).sample(&mut rng));
            x1.push(v1);
            x2.push(v2);
        }
        let fit = GlmModel::new(Family::Poisson)
            .term("x1", &x1)
            .term("x2", &x2)
            .fit(&y)
            .unwrap();
        close(fit.coefficient("(Intercept)").unwrap().estimate, b0, 0.1);
        close(fit.coefficient("x1").unwrap().estimate, b1, 0.1);
        close(fit.coefficient("x2").unwrap().estimate, b2, 0.2);
        assert!(fit.coefficient("x1").unwrap().significant_at(0.01));
    }

    #[test]
    fn deviance_decreases_with_informative_term() {
        let y = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let with_x = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .fit(&y)
            .unwrap();
        assert!(with_x.deviance < with_x.null_deviance);
        assert!(with_x.deviance < 1e-6); // exact exponential growth
    }

    #[test]
    fn lrt_between_nested_models() {
        let y = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let full = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .fit(&y)
            .unwrap();
        let reduced = GlmModel::new(Family::Poisson).fit(&y).unwrap();
        let (stat, df, p) = full.lrt_against(&reduced);
        assert_eq!(df, 1.0);
        assert!(stat > 10.0);
        assert!(p < 0.001);
    }

    #[test]
    fn nb_fixed_theta_matches_poisson_for_large_theta() {
        let y = [3.0, 5.0, 2.0, 8.0, 6.0, 4.0, 7.0, 3.0];
        let x: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        let pois = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .fit(&y)
            .unwrap();
        let nb = GlmModel::new(Family::NegativeBinomial { theta: 1e8 })
            .term("x", &x)
            .fit(&y)
            .unwrap();
        close(
            pois.coefficient("x").unwrap().estimate,
            nb.coefficient("x").unwrap().estimate,
            1e-5,
        );
    }

    #[test]
    fn nb_theta_estimation_recovers_dispersion() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 4000;
        let theta_true = 2.0;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let v = (i as f64 / n as f64) * 2.0 - 1.0;
            let mu = (1.0 + 0.5 * v).exp();
            y.push(NegativeBinomial::new(mu, theta_true).sample(&mut rng));
            x.push(v);
        }
        let mut model = GlmModel::new(Family::Poisson);
        model.term("x", &x);
        let fit = fit_negative_binomial(&model, &y).unwrap();
        let Family::NegativeBinomial { theta } = fit.family else {
            panic!("expected NB family");
        };
        close(theta, theta_true, 0.5);
        close(fit.coefficient("x").unwrap().estimate, 0.5, 0.1);
        // NB standard errors should exceed Poisson's on overdispersed data.
        let pois = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .fit(&y)
            .unwrap();
        assert!(fit.coefficient("x").unwrap().std_error > pois.coefficient("x").unwrap().std_error);
    }

    #[test]
    fn collinear_design_reports_singular() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let x = [1.0, 2.0, 3.0, 4.0];
        let x2 = [2.0, 4.0, 6.0, 8.0]; // exactly 2 * x
        let err = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .term("x2", &x2)
            .fit(&y)
            .unwrap_err();
        assert_eq!(err, GlmError::Singular);
    }

    #[test]
    fn dimension_errors() {
        let err = GlmModel::new(Family::Poisson)
            .term("x", &[1.0])
            .fit(&[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, GlmError::DimensionMismatch { .. }));
        let err = GlmModel::new(Family::Poisson).fit(&[]).unwrap_err();
        assert!(matches!(err, GlmError::DimensionMismatch { .. }));
        let err = GlmModel::new(Family::Poisson)
            .fit(&[1.0, -2.0])
            .unwrap_err();
        assert_eq!(err, GlmError::InvalidResponse { index: 1 });
    }

    #[test]
    fn underdetermined_detected() {
        let err = GlmModel::new(Family::Poisson)
            .term("a", &[1.0])
            .term("b", &[2.0])
            .fit(&[3.0])
            .unwrap_err();
        assert_eq!(err, GlmError::Underdetermined);
    }

    #[test]
    fn zero_counts_handled() {
        let y = [0.0, 0.0, 1.0, 2.0, 0.0, 3.0];
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let fit = GlmModel::new(Family::Poisson)
            .term("x", &x)
            .fit(&y)
            .unwrap();
        assert!(fit.coefficient("x").unwrap().estimate > 0.0);
        assert!(fit.log_likelihood.is_finite());
        assert!(fit.deviance.is_finite());
    }

    #[test]
    fn aic_penalizes_parameters() {
        let y = [3.0, 4.0, 3.0, 5.0, 4.0, 3.0, 4.0, 5.0];
        let noise: Vec<f64> = (0..8).map(|i| ((i * 31) % 7) as f64).collect();
        let base = GlmModel::new(Family::Poisson).fit(&y).unwrap();
        let with_noise = GlmModel::new(Family::Poisson)
            .term("noise", &noise)
            .fit(&y)
            .unwrap();
        // The useless term should not improve AIC by more than ~2.
        assert!(with_noise.aic > base.aic - 2.0);
    }

    #[test]
    fn dispersion_near_one_for_poisson_data() {
        let mut rng = StdRng::seed_from_u64(21);
        let y: Vec<f64> = (0..500)
            .map(|_| PoissonDist::new(4.0).sample(&mut rng))
            .collect();
        let fit = GlmModel::new(Family::Poisson).fit(&y).unwrap();
        let d = fit.pearson_dispersion(&y);
        assert!(d > 0.8 && d < 1.25, "dispersion {d}");
    }

    #[test]
    fn dispersion_flags_overdispersed_counts() {
        let mut rng = StdRng::seed_from_u64(22);
        let y: Vec<f64> = (0..500)
            .map(|_| NegativeBinomial::new(4.0, 0.7).sample(&mut rng))
            .collect();
        let pois = GlmModel::new(Family::Poisson).fit(&y).unwrap();
        assert!(pois.pearson_dispersion(&y) > 2.0);
        // Refit with ML theta: dispersion returns near 1.
        let nb = fit_negative_binomial(&GlmModel::new(Family::Poisson), &y).unwrap();
        let d = nb.pearson_dispersion(&y);
        assert!(d > 0.6 && d < 1.5, "NB dispersion {d}");
    }

    #[test]
    fn fitted_values_match_mean_structure() {
        let y = [10.0, 12.0, 8.0, 30.0, 33.0, 27.0];
        let g = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let fit = GlmModel::new(Family::Poisson)
            .term("g", &g)
            .fit(&y)
            .unwrap();
        close(fit.fitted[0], 10.0, 1e-6);
        close(fit.fitted[3], 30.0, 1e-6);
    }
}
