//! Plan execution: claim items off a shared cursor, observe outcomes.
//!
//! Workers race only for *position*: an atomic cursor hands each
//! worker the next plan item, so every item executes exactly once and
//! the per-kind query counts are independent of the thread count (the
//! determinism tests pin this down). Open-loop profiles pace claims
//! against the wall clock; a worker sleeps until its item's scheduled
//! release time, with concurrency still bounded by the worker count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use hpcfail_core::engine::AnalysisRequest;

use crate::mix::{Arrival, MixConfig};
use crate::plan::LoadPlan;
use crate::target::Target;

/// Executor knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads issuing requests.
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { threads: 4 }
    }
}

/// Per-phase observations.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Phase label ("hot-key", "cold-cache", ...).
    pub label: String,
    /// Plan items issued.
    pub items: u64,
    /// Queries issued (batches counted per query).
    pub queries: u64,
    /// Non-2xx, non-timeout responses plus transport errors (items
    /// that gave up retrying are counted under `gave_up` instead).
    pub errors: u64,
    /// Deadline expiries (HTTP 504).
    pub timeouts: u64,
    /// Shed answers (429/503) observed, retried ones included.
    pub sheds: u64,
    /// Retries performed beyond first attempts.
    pub retries: u64,
    /// Items whose retries were exhausted without a non-shed answer.
    pub gave_up: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Coalesced with an identical in-flight query.
    pub coalesced: u64,
    /// Queries with unknowable cache outcome (HTTP batch members).
    pub unknown: u64,
    /// Per-item latencies, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
}

impl PhaseStats {
    fn absorb(&mut self, other: PhaseStats) {
        self.items += other.items;
        self.queries += other.queries;
        self.errors += other.errors;
        self.timeouts += other.timeouts;
        self.sheds += other.sheds;
        self.retries += other.retries;
        self.gave_up += other.gave_up;
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.unknown += other.unknown;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Everything observed over one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Per-phase observations, in phase order.
    pub phases: Vec<PhaseStats>,
    /// Queries actually executed, per request kind.
    pub executed_per_kind: BTreeMap<String, u64>,
}

impl RunStats {
    /// Total queries issued.
    pub fn queries(&self) -> u64 {
        self.phases.iter().map(|p| p.queries).sum()
    }

    /// Total plan items issued.
    pub fn items(&self) -> u64 {
        self.phases.iter().map(|p| p.items).sum()
    }

    /// Total errors.
    pub fn errors(&self) -> u64 {
        self.phases.iter().map(|p| p.errors).sum()
    }

    /// Total timeouts.
    pub fn timeouts(&self) -> u64 {
        self.phases.iter().map(|p| p.timeouts).sum()
    }

    /// Total shed answers observed (retried ones included).
    pub fn sheds(&self) -> u64 {
        self.phases.iter().map(|p| p.sheds).sum()
    }

    /// Total retries performed.
    pub fn retries(&self) -> u64 {
        self.phases.iter().map(|p| p.retries).sum()
    }

    /// Total items that gave up retrying.
    pub fn gave_up(&self) -> u64 {
        self.phases.iter().map(|p| p.gave_up).sum()
    }

    /// Totals of (hits, misses, coalesced).
    pub fn cache_totals(&self) -> (u64, u64, u64) {
        self.phases.iter().fold((0, 0, 0), |(h, m, c), p| {
            (h + p.hits, m + p.misses, c + p.coalesced)
        })
    }

    /// Hit rate over lookups with a known outcome; 0 when none.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses, _) = self.cache_totals();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// All per-item latencies merged and sorted, microseconds.
    pub fn sorted_latencies_us(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .phases
            .iter()
            .flat_map(|p| p.latencies_us.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Nearest-rank quantile of an already-sorted slice; 0 when empty.
pub fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Executes `plan` against `target` with `options.threads` workers.
///
/// # Panics
///
/// If `options.threads` is 0 or a plan item references a corpus index
/// out of bounds (both are construction bugs, not runtime conditions).
pub fn execute(
    corpus: &[AnalysisRequest],
    plan: &LoadPlan,
    config: &MixConfig,
    target: &dyn Target,
    options: RunOptions,
) -> RunStats {
    assert!(options.threads > 0, "at least one worker thread");
    let _span = hpcfail_obs::span("load.execute");
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let latency_histogram = hpcfail_obs::histogram("load.latency_us");
    let request_counter = hpcfail_obs::counter("load.requests");
    let error_counter = hpcfail_obs::counter("load.errors");

    let worker = || {
        let mut phases: Vec<PhaseStats> = config
            .phases
            .iter()
            .map(|p| PhaseStats {
                label: p.kind.label().to_owned(),
                ..PhaseStats::default()
            })
            .collect();
        let mut per_kind: BTreeMap<String, u64> = BTreeMap::new();
        loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(item) = plan.items.get(index) else {
                break;
            };
            if let Arrival::Open { rate_per_sec } = config.arrival {
                let release = started + Duration::from_secs_f64(index as f64 / rate_per_sec);
                let now = Instant::now();
                if release > now {
                    std::thread::sleep(release - now);
                }
            }
            let requests: Vec<&AnalysisRequest> =
                item.requests.iter().map(|&i| &corpus[i]).collect();
            let issued = Instant::now();
            let outcome = target.call(&requests, item.deadline_ms);
            let latency_us = issued.elapsed().as_micros() as u64;
            latency_histogram.record(latency_us);
            request_counter.add(1);
            let stats = &mut phases[item.phase];
            stats.items += 1;
            stats.queries += requests.len() as u64;
            stats.hits += outcome.hits;
            stats.misses += outcome.misses;
            stats.coalesced += outcome.coalesced;
            stats.unknown += outcome.unknown;
            stats.latencies_us.push(latency_us);
            stats.sheds += outcome.sheds;
            stats.retries += outcome.retries;
            if outcome.timeout {
                stats.timeouts += 1;
            } else if outcome.gave_up {
                stats.gave_up += 1;
            } else if outcome.error.is_some() || !(200..300).contains(&outcome.status) {
                stats.errors += 1;
                error_counter.add(1);
            }
            for request in &requests {
                *per_kind.entry(request.kind().to_owned()).or_insert(0) += 1;
            }
        }
        (phases, per_kind)
    };

    let mut merged: Vec<PhaseStats> = config
        .phases
        .iter()
        .map(|p| PhaseStats {
            label: p.kind.label().to_owned(),
            ..PhaseStats::default()
        })
        .collect();
    let mut executed_per_kind: BTreeMap<String, u64> = BTreeMap::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.threads).map(|_| scope.spawn(worker)).collect();
        for handle in handles {
            let (phases, per_kind) = handle.join().expect("load worker panicked");
            for (slot, stats) in merged.iter_mut().zip(phases) {
                slot.absorb(stats);
            }
            for (kind, count) in per_kind {
                *executed_per_kind.entry(kind).or_insert(0) += count;
            }
        }
    });
    RunStats {
        wall: started.elapsed(),
        phases: merged,
        executed_per_kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&sorted, 0.50), 50);
        assert_eq!(quantile_us(&sorted, 0.90), 90);
        assert_eq!(quantile_us(&sorted, 0.99), 99);
        assert_eq!(quantile_us(&sorted, 1.0), 100);
        assert_eq!(quantile_us(&[], 0.5), 0);
        assert_eq!(quantile_us(&[7], 0.5), 7);
    }
}
