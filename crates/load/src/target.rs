//! Where planned requests go: a live server or an in-process engine.
//!
//! The in-process target is not a mock — it reuses the *server's own*
//! result cache ([`hpcfail_serve::cache::ResultCache`]) with the
//! server's cache key `(trace name, epoch fingerprint, canonical
//! request)` and renders bodies with the server's exact expression
//! (`engine.run(req).to_json().pretty()`), so harness bodies are
//! byte-identical to query responses and the differential tests can
//! hold both paths to the same answer.
//!
//! Both targets are trace-scoped: the HTTP target posts to
//! `/v1/traces/{name}/query` and `/v1/traces/{name}/batch`, and the
//! in-process target keys its cache under the same name, defaulting to
//! [`DEFAULT_TRACE`] on both sides.

use std::sync::Arc;
use std::time::Duration;

use hpcfail_core::engine::{AnalysisRequest, Engine};
use hpcfail_obs::json::Json;
use hpcfail_serve::cache::{CacheKey, ResultCache};
use hpcfail_serve::{Client, RetryPolicy, RetryingClient, DEFAULT_TRACE};
use hpcfail_store::trace::Trace;

/// What one call produced, as the harness saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// HTTP status (200 for in-process success); 0 = transport error.
    pub status: u16,
    /// Queries served from cache.
    pub hits: u64,
    /// Queries computed fresh.
    pub misses: u64,
    /// Queries that piggybacked on an identical in-flight query.
    pub coalesced: u64,
    /// Queries whose cache outcome is unknowable (HTTP batches carry
    /// no per-query cache header).
    pub unknown: u64,
    /// The call hit its deadline (HTTP 504).
    pub timeout: bool,
    /// Shed answers (429/503) observed across every attempt,
    /// including ones a later retry recovered from.
    pub sheds: u64,
    /// Retries performed beyond the first attempt.
    pub retries: u64,
    /// Retries were exhausted while the last answer was still a shed
    /// or transport failure.
    pub gave_up: bool,
    /// Transport-level failure, if any.
    pub error: Option<String>,
    /// The response body.
    pub body: String,
}

impl CallOutcome {
    fn transport_error(message: String) -> Self {
        CallOutcome {
            status: 0,
            hits: 0,
            misses: 0,
            coalesced: 0,
            unknown: 0,
            timeout: false,
            sheds: 0,
            retries: 0,
            gave_up: false,
            error: Some(message),
            body: String::new(),
        }
    }
}

/// A sink for planned requests.
pub trait Target: Sync {
    /// Issues one plan item: a single query (`requests.len() == 1`) or
    /// a batch. Returns what happened; implementations never panic on
    /// transport failures.
    fn call(&self, requests: &[&AnalysisRequest], deadline_ms: Option<u64>) -> CallOutcome;

    /// Stable label recorded in the report ("in-process" / "http").
    fn label(&self) -> &'static str;
}

/// In-process target: the engine behind the server's own result cache.
pub struct InProcess {
    engine: Engine,
    trace_name: String,
    fingerprint: u64,
    cache: ResultCache,
}

impl InProcess {
    /// Builds the target from a trace, with a result cache of
    /// `cache_capacity` entries (0 disables caching, like the server).
    /// The cache is keyed under [`DEFAULT_TRACE`].
    pub fn new(trace: Trace, cache_capacity: usize) -> Self {
        let engine = Engine::new(trace);
        let fingerprint = engine.fingerprint();
        InProcess {
            engine,
            trace_name: DEFAULT_TRACE.to_owned(),
            fingerprint,
            cache: ResultCache::new(cache_capacity),
        }
    }

    /// Keys the cache under `name` instead of [`DEFAULT_TRACE`],
    /// mirroring the server's `(trace, epoch fingerprint, request)`
    /// cache key for that trace.
    #[must_use]
    pub fn with_trace_name(mut self, name: impl Into<String>) -> Self {
        self.trace_name = name.into();
        self
    }

    /// The engine, for differential comparison against direct calls.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Renders one query body exactly as the server would, returning
    /// `(body, was_cache_hit)`.
    fn render(&self, request: &AnalysisRequest) -> (Arc<String>, bool) {
        let key: CacheKey = (
            self.trace_name.clone(),
            self.fingerprint,
            request.canonical(),
        );
        if let Some(body) = self.cache.get(&key) {
            return (body, true);
        }
        let body = Arc::new(self.engine.run(request).to_json().pretty());
        self.cache.put(key, Arc::clone(&body));
        (body, false)
    }
}

impl Target for InProcess {
    fn call(&self, requests: &[&AnalysisRequest], _deadline_ms: Option<u64>) -> CallOutcome {
        let mut hits = 0;
        let mut misses = 0;
        if requests.len() == 1 {
            let (body, hit) = self.render(requests[0]);
            if hit {
                hits = 1;
            } else {
                misses = 1;
            }
            return CallOutcome {
                status: 200,
                hits,
                misses,
                coalesced: 0,
                unknown: 0,
                timeout: false,
                sheds: 0,
                retries: 0,
                gave_up: false,
                error: None,
                body: (*body).clone(),
            };
        }
        // Mirror handle_batch: each element is the exact /query body,
        // embedded as a JSON string.
        let mut bodies = Vec::with_capacity(requests.len());
        for request in requests {
            let (body, hit) = self.render(request);
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
            bodies.push(Json::Str((*body).clone()));
        }
        CallOutcome {
            status: 200,
            hits,
            misses,
            coalesced: 0,
            unknown: 0,
            timeout: false,
            sheds: 0,
            retries: 0,
            gave_up: false,
            error: None,
            body: Json::obj([("results", Json::Arr(bodies))]).pretty(),
        }
    }

    fn label(&self) -> &'static str {
        "in-process"
    }
}

/// HTTP target: a live `hpcfail-serve` instance, reached through a
/// [`RetryingClient`] so shed answers (429/503) and transport blips
/// are retried under the target's [`RetryPolicy`]. The default policy
/// is [`RetryPolicy::none`], which preserves single-attempt semantics.
pub struct Http {
    client: RetryingClient,
    query_path: String,
    batch_path: String,
}

impl Http {
    /// A single-attempt target for the server at `addr` (`host:port`),
    /// aimed at [`DEFAULT_TRACE`].
    pub fn new(addr: &str) -> Self {
        Http::with_retry(addr, RetryPolicy::none())
    }

    /// A target that retries sheds and transport failures per `policy`.
    pub fn with_retry(addr: &str, policy: RetryPolicy) -> Self {
        let mut target = Http {
            client: RetryingClient::new(
                Client::new(addr).with_timeout(Duration::from_secs(60)),
                policy,
            ),
            query_path: String::new(),
            batch_path: String::new(),
        };
        target.set_trace(DEFAULT_TRACE);
        target
    }

    /// Aims the target at the named trace's `/v1` endpoints instead of
    /// [`DEFAULT_TRACE`].
    #[must_use]
    pub fn with_trace(mut self, name: &str) -> Self {
        self.set_trace(name);
        self
    }

    fn set_trace(&mut self, name: &str) {
        self.query_path = format!("/v1/traces/{name}/query");
        self.batch_path = format!("/v1/traces/{name}/batch");
    }

    /// The underlying retrying client (for `/shutdown` etc.).
    pub fn client(&self) -> &RetryingClient {
        &self.client
    }
}

impl Target for Http {
    fn call(&self, requests: &[&AnalysisRequest], deadline_ms: Option<u64>) -> CallOutcome {
        let deadline_value = deadline_ms.map(|d| d.to_string());
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(value) = &deadline_value {
            headers.push(("x-deadline-ms", value));
        }
        let (path, body) = if requests.len() == 1 {
            (self.query_path.as_str(), requests[0].canonical())
        } else {
            let items: Vec<Json> = requests.iter().map(|r| r.to_json()).collect();
            (self.batch_path.as_str(), Json::Arr(items).pretty())
        };
        let detailed = self.client.post_detailed(path, &body, &headers);
        let retries = u64::from(detailed.attempts.saturating_sub(1));
        let response = match detailed.result {
            Ok(response) => response,
            Err(err) => {
                let mut outcome = CallOutcome::transport_error(err.to_string());
                outcome.sheds = detailed.sheds;
                outcome.retries = retries;
                outcome.gave_up = detailed.gave_up;
                return outcome;
            }
        };
        let mut outcome = CallOutcome {
            status: response.status,
            hits: 0,
            misses: 0,
            coalesced: 0,
            unknown: 0,
            timeout: response.status == 504,
            sheds: detailed.sheds,
            retries,
            gave_up: detailed.gave_up,
            error: None,
            body: response.body,
        };
        if requests.len() == 1 {
            match response.headers.iter().find(|(n, _)| n == "x-cache") {
                Some((_, v)) if v == "hit" => outcome.hits = 1,
                Some((_, v)) if v == "miss" => outcome.misses = 1,
                Some((_, v)) if v == "coalesced" => outcome.coalesced = 1,
                _ => outcome.unknown = 1,
            }
        } else {
            outcome.unknown = requests.len() as u64;
        }
        outcome
    }

    fn label(&self) -> &'static str {
        "http"
    }
}
