//! Named traffic profiles: phases, key-popularity, arrival discipline.
//!
//! A [`MixConfig`] is everything the planner needs besides the corpus:
//! the seed, the corpus size, how much of the corpus is *reserved* for
//! cold-cache traffic, and an ordered list of phases. Hot phases draw
//! zipfian keys from the front (hot) region of the corpus; cold-cache
//! phases walk the reserved tail sequentially so every cold request is
//! a guaranteed first sight for the cache.

use std::fmt;

/// How requests are released to workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Each worker issues its next request as soon as the previous one
    /// finishes; concurrency equals the thread count.
    Closed,
    /// Requests are paced to a target rate; a worker sleeps until its
    /// claimed slot's scheduled time. Concurrency stays bounded by the
    /// thread count, so a slow server degrades to closed-loop instead
    /// of building an unbounded backlog.
    Open {
        /// Target arrival rate, plan items per second.
        rate_per_sec: f64,
    },
}

/// One phase of traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// Single queries, zipfian over `hot_keys` distinct corpus entries.
    HotKey {
        /// Zipf exponent; larger = more skew toward the top keys.
        zipf_s: f64,
        /// Number of distinct keys drawn from the hot region.
        hot_keys: usize,
    },
    /// `/batch` requests of `batch` zipfian queries each.
    BatchHeavy {
        /// Zipf exponent for the per-query draw.
        zipf_s: f64,
        /// Number of distinct keys drawn from the hot region.
        hot_keys: usize,
        /// Queries per batch item.
        batch: usize,
    },
    /// Single zipfian queries carrying an `x-deadline-ms` header.
    DeadlineLaden {
        /// Zipf exponent.
        zipf_s: f64,
        /// Number of distinct keys drawn from the hot region.
        hot_keys: usize,
        /// Deadline sent with each query, milliseconds.
        deadline_ms: u64,
    },
    /// Sequential never-seen-before requests from the reserved tail.
    ColdCache,
}

impl PhaseKind {
    /// Stable label used in reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::HotKey { .. } => "hot-key",
            PhaseKind::BatchHeavy { .. } => "batch-heavy",
            PhaseKind::DeadlineLaden { .. } => "deadline-laden",
            PhaseKind::ColdCache => "cold-cache",
        }
    }
}

/// A phase and how many plan items it contributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// The traffic shape.
    pub kind: PhaseKind,
    /// Plan items (for batch phases, each item is `batch` queries).
    pub requests: usize,
}

/// A complete profile: what the planner expands into a [`LoadPlan`].
///
/// [`LoadPlan`]: crate::plan::LoadPlan
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// Profile name, recorded in the report.
    pub profile: String,
    /// Seed for the plan RNG.
    pub seed: u64,
    /// Total corpus entries to enumerate.
    pub corpus_size: usize,
    /// Tail entries reserved for cold-cache phases.
    pub cold_reserve: usize,
    /// Arrival discipline.
    pub arrival: Arrival,
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

/// Why a profile cannot be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// The hot region (corpus minus reserve) is empty.
    EmptyHotRegion,
    /// A phase asks for more hot keys than the hot region holds.
    HotKeysExceedRegion {
        /// Keys requested.
        hot_keys: usize,
        /// Hot-region size.
        region: usize,
    },
    /// Cold-cache phases together need more requests than the reserve.
    ColdReserveExhausted {
        /// Cold requests across all phases.
        needed: usize,
        /// Reserved tail size.
        reserve: usize,
    },
    /// A numeric parameter is out of range.
    BadParameter(String),
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::EmptyHotRegion => {
                write!(f, "corpus_size must exceed cold_reserve")
            }
            MixError::HotKeysExceedRegion { hot_keys, region } => {
                write!(
                    f,
                    "phase wants {hot_keys} hot keys but the hot region has {region}"
                )
            }
            MixError::ColdReserveExhausted { needed, reserve } => {
                write!(
                    f,
                    "cold-cache phases need {needed} requests but only {reserve} are reserved"
                )
            }
            MixError::BadParameter(message) => write!(f, "bad mix parameter: {message}"),
        }
    }
}

impl std::error::Error for MixError {}

impl MixConfig {
    /// Profile names accepted by [`MixConfig::named`].
    pub const PROFILES: [&'static str; 3] = ["ci", "smoke", "soak"];

    /// The pinned CI profile behind the committed `BENCH_serve.json`.
    ///
    /// Small enough to finish in seconds against a debug server, big
    /// enough that the cache, batch, and deadline paths all light up.
    pub fn ci() -> Self {
        MixConfig {
            profile: "ci".to_owned(),
            seed: 2026,
            corpus_size: 512,
            cold_reserve: 192,
            arrival: Arrival::Closed,
            phases: vec![
                Phase {
                    kind: PhaseKind::ColdCache,
                    requests: 64,
                },
                Phase {
                    kind: PhaseKind::HotKey {
                        zipf_s: 1.1,
                        hot_keys: 32,
                    },
                    requests: 256,
                },
                Phase {
                    kind: PhaseKind::BatchHeavy {
                        zipf_s: 1.1,
                        hot_keys: 48,
                        batch: 8,
                    },
                    requests: 32,
                },
                Phase {
                    kind: PhaseKind::DeadlineLaden {
                        zipf_s: 0.9,
                        hot_keys: 64,
                        deadline_ms: 5000,
                    },
                    requests: 64,
                },
                Phase {
                    kind: PhaseKind::ColdCache,
                    requests: 128,
                },
            ],
        }
    }

    /// A tiny profile for unit and integration tests.
    pub fn smoke() -> Self {
        MixConfig {
            profile: "smoke".to_owned(),
            seed: 7,
            corpus_size: 96,
            cold_reserve: 48,
            arrival: Arrival::Closed,
            phases: vec![
                Phase {
                    kind: PhaseKind::HotKey {
                        zipf_s: 1.2,
                        hot_keys: 8,
                    },
                    requests: 120,
                },
                Phase {
                    kind: PhaseKind::BatchHeavy {
                        zipf_s: 1.0,
                        hot_keys: 16,
                        batch: 4,
                    },
                    requests: 10,
                },
                Phase {
                    kind: PhaseKind::ColdCache,
                    requests: 40,
                },
            ],
        }
    }

    /// A longer open-loop profile for local soak runs.
    pub fn soak() -> Self {
        MixConfig {
            profile: "soak".to_owned(),
            seed: 2026,
            corpus_size: 2048,
            cold_reserve: 512,
            arrival: Arrival::Open {
                rate_per_sec: 400.0,
            },
            phases: vec![
                Phase {
                    kind: PhaseKind::ColdCache,
                    requests: 256,
                },
                Phase {
                    kind: PhaseKind::HotKey {
                        zipf_s: 1.1,
                        hot_keys: 128,
                    },
                    requests: 4096,
                },
                Phase {
                    kind: PhaseKind::BatchHeavy {
                        zipf_s: 1.1,
                        hot_keys: 192,
                        batch: 16,
                    },
                    requests: 128,
                },
                Phase {
                    kind: PhaseKind::DeadlineLaden {
                        zipf_s: 0.9,
                        hot_keys: 256,
                        deadline_ms: 2000,
                    },
                    requests: 512,
                },
                Phase {
                    kind: PhaseKind::ColdCache,
                    requests: 256,
                },
            ],
        }
    }

    /// Looks up a profile by name.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "ci" => Some(MixConfig::ci()),
            "smoke" => Some(MixConfig::smoke()),
            "soak" => Some(MixConfig::soak()),
            _ => None,
        }
    }

    /// The hot-region size (corpus entries not reserved for cold use).
    pub fn hot_region(&self) -> usize {
        self.corpus_size.saturating_sub(self.cold_reserve)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// A [`MixError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), MixError> {
        let region = self.hot_region();
        if region == 0 {
            return Err(MixError::EmptyHotRegion);
        }
        let mut cold_needed = 0usize;
        for phase in &self.phases {
            if phase.requests == 0 {
                return Err(MixError::BadParameter("phase with zero requests".into()));
            }
            match phase.kind {
                PhaseKind::HotKey { zipf_s, hot_keys }
                | PhaseKind::DeadlineLaden {
                    zipf_s, hot_keys, ..
                } => {
                    check_zipf(zipf_s, hot_keys, region)?;
                }
                PhaseKind::BatchHeavy {
                    zipf_s,
                    hot_keys,
                    batch,
                } => {
                    check_zipf(zipf_s, hot_keys, region)?;
                    if batch == 0 {
                        return Err(MixError::BadParameter("batch of zero queries".into()));
                    }
                }
                PhaseKind::ColdCache => cold_needed += phase.requests,
            }
        }
        if cold_needed > self.cold_reserve {
            return Err(MixError::ColdReserveExhausted {
                needed: cold_needed,
                reserve: self.cold_reserve,
            });
        }
        if let Arrival::Open { rate_per_sec } = self.arrival {
            if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
                return Err(MixError::BadParameter(format!(
                    "open-loop rate {rate_per_sec} must be finite and positive"
                )));
            }
        }
        Ok(())
    }
}

fn check_zipf(zipf_s: f64, hot_keys: usize, region: usize) -> Result<(), MixError> {
    if !zipf_s.is_finite() || zipf_s < 0.0 {
        return Err(MixError::BadParameter(format!(
            "zipf exponent {zipf_s} must be finite and non-negative"
        )));
    }
    if hot_keys == 0 {
        return Err(MixError::BadParameter("hot_keys must be positive".into()));
    }
    if hot_keys > region {
        return Err(MixError::HotKeysExceedRegion { hot_keys, region });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_validate() {
        for name in MixConfig::PROFILES {
            let config = MixConfig::named(name).expect("profile exists");
            assert_eq!(config.profile, name);
            config.validate().expect("profile is internally consistent");
        }
        assert!(MixConfig::named("nope").is_none());
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut config = MixConfig::smoke();
        config.cold_reserve = config.corpus_size;
        assert_eq!(config.validate(), Err(MixError::EmptyHotRegion));

        let mut config = MixConfig::smoke();
        config.phases[0].kind = PhaseKind::HotKey {
            zipf_s: 1.0,
            hot_keys: 10_000,
        };
        assert!(matches!(
            config.validate(),
            Err(MixError::HotKeysExceedRegion { .. })
        ));

        let mut config = MixConfig::smoke();
        config.phases.push(Phase {
            kind: PhaseKind::ColdCache,
            requests: 10_000,
        });
        assert!(matches!(
            config.validate(),
            Err(MixError::ColdReserveExhausted { .. })
        ));
    }
}
