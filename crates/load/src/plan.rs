//! Plan expansion: profile × corpus × seed → concrete request sequence.
//!
//! The plan is generated up front by one seeded RNG walking the phases
//! in order, so it is a pure function of `(MixConfig, corpus size)`.
//! Executors only *consume* the plan; however many threads they use,
//! the sequence of requests — and therefore the cache-key stream the
//! server sees — is byte-identical. [`canonical_bytes`] materializes
//! that claim so tests can compare entire plans with one `assert_eq!`.

use std::collections::BTreeMap;

use hpcfail_core::engine::AnalysisRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mix::{MixConfig, MixError, PhaseKind};

/// One executable unit: a single query or a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanItem {
    /// Index of the originating phase in `MixConfig::phases`.
    pub phase: usize,
    /// Corpus indices; length 1 for single queries, `batch` for batches.
    pub requests: Vec<usize>,
    /// `x-deadline-ms` to send, for deadline-laden traffic.
    pub deadline_ms: Option<u64>,
}

/// The fully expanded request sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPlan {
    /// Items in issue order.
    pub items: Vec<PlanItem>,
    /// Total queries across all items (batches counted per query).
    pub queries: usize,
}

/// Zipfian sampler over ranks `0..n` with exponent `s`.
///
/// Rank `r` has weight `1 / (r + 1)^s`; sampling is a uniform draw on
/// the cumulative weights plus a binary search.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("n >= 1 validated");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Spreads hot-key ranks across the hot region so the hot set is not
/// just the first few corpus entries (which would skew toward a single
/// request kind). Stride mapping is collision-free because
/// `rank < hot_keys` and `stride = region / hot_keys >= 1`.
fn rank_to_index(rank: usize, hot_keys: usize, region: usize) -> usize {
    let stride = (region / hot_keys).max(1);
    rank * stride % region
}

/// Expands `config` into a plan over a corpus of `corpus_size` entries.
///
/// # Errors
///
/// [`MixError`] when the profile fails validation or the corpus is
/// smaller than `config.corpus_size`.
pub fn build(config: &MixConfig, corpus_size: usize) -> Result<LoadPlan, MixError> {
    config.validate()?;
    if corpus_size < config.corpus_size {
        return Err(MixError::BadParameter(format!(
            "corpus has {corpus_size} entries, profile needs {}",
            config.corpus_size
        )));
    }
    let region = config.hot_region();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut items = Vec::new();
    let mut queries = 0usize;
    let mut cold_cursor = 0usize;
    for (phase_index, phase) in config.phases.iter().enumerate() {
        match phase.kind {
            PhaseKind::HotKey { zipf_s, hot_keys } => {
                let zipf = Zipf::new(hot_keys, zipf_s);
                for _ in 0..phase.requests {
                    let rank = zipf.sample(&mut rng);
                    items.push(PlanItem {
                        phase: phase_index,
                        requests: vec![rank_to_index(rank, hot_keys, region)],
                        deadline_ms: None,
                    });
                    queries += 1;
                }
            }
            PhaseKind::BatchHeavy {
                zipf_s,
                hot_keys,
                batch,
            } => {
                let zipf = Zipf::new(hot_keys, zipf_s);
                for _ in 0..phase.requests {
                    let indices: Vec<usize> = (0..batch)
                        .map(|_| rank_to_index(zipf.sample(&mut rng), hot_keys, region))
                        .collect();
                    queries += indices.len();
                    items.push(PlanItem {
                        phase: phase_index,
                        requests: indices,
                        deadline_ms: None,
                    });
                }
            }
            PhaseKind::DeadlineLaden {
                zipf_s,
                hot_keys,
                deadline_ms,
            } => {
                let zipf = Zipf::new(hot_keys, zipf_s);
                for _ in 0..phase.requests {
                    let rank = zipf.sample(&mut rng);
                    items.push(PlanItem {
                        phase: phase_index,
                        requests: vec![rank_to_index(rank, hot_keys, region)],
                        deadline_ms: Some(deadline_ms),
                    });
                    queries += 1;
                }
            }
            PhaseKind::ColdCache => {
                for _ in 0..phase.requests {
                    items.push(PlanItem {
                        phase: phase_index,
                        requests: vec![region + cold_cursor],
                        deadline_ms: None,
                    });
                    cold_cursor += 1;
                    queries += 1;
                }
            }
        }
    }
    Ok(LoadPlan { items, queries })
}

/// Serializes the entire planned request stream, in issue order, to a
/// byte string: the determinism tests' ground truth.
pub fn canonical_bytes(plan: &LoadPlan, corpus: &[AnalysisRequest]) -> Vec<u8> {
    let mut out = String::new();
    for item in &plan.items {
        out.push_str("item phase=");
        out.push_str(&item.phase.to_string());
        if let Some(deadline) = item.deadline_ms {
            out.push_str(" deadline_ms=");
            out.push_str(&deadline.to_string());
        }
        out.push('\n');
        for &index in &item.requests {
            out.push_str(&corpus[index].canonical());
            out.push('\n');
        }
    }
    out.into_bytes()
}

/// How many queries the plan issues per request kind.
pub fn per_kind_counts(plan: &LoadPlan, corpus: &[AnalysisRequest]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for item in &plan.items {
        for &index in &item.requests {
            *counts
                .entry(corpus[index].kind().to_owned())
                .or_insert(0u64) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusSystem};
    use hpcfail_types::ids::SystemId;

    fn corpus() -> Vec<AnalysisRequest> {
        build_corpus(
            &[CorpusSystem {
                id: SystemId::new(2),
                nodes: 49,
            }],
            96,
        )
    }

    #[test]
    fn plan_respects_phase_structure() {
        let config = MixConfig::smoke();
        let corpus = corpus();
        let plan = build(&config, corpus.len()).expect("smoke profile plans");
        assert_eq!(
            plan.items.len(),
            config.phases.iter().map(|p| p.requests).sum::<usize>()
        );
        assert_eq!(plan.queries, 120 + 10 * 4 + 40);
        let region = config.hot_region();
        // Cold items walk the reserved tail exactly once, in order.
        let cold: Vec<usize> = plan
            .items
            .iter()
            .filter(|i| i.phase == 2)
            .map(|i| i.requests[0])
            .collect();
        assert_eq!(cold, (region..region + 40).collect::<Vec<_>>());
        // Hot items never touch the reserve.
        assert!(plan
            .items
            .iter()
            .filter(|i| i.phase != 2)
            .all(|i| i.requests.iter().all(|&r| r < region)));
    }

    #[test]
    fn same_seed_same_plan() {
        let corpus = corpus();
        let a = build(&MixConfig::smoke(), corpus.len()).unwrap();
        let b = build(&MixConfig::smoke(), corpus.len()).unwrap();
        assert_eq!(canonical_bytes(&a, &corpus), canonical_bytes(&b, &corpus));
        let mut other = MixConfig::smoke();
        other.seed ^= 1;
        let c = build(&other, corpus.len()).unwrap();
        assert_ne!(canonical_bytes(&a, &corpus), canonical_bytes(&c, &corpus));
    }
}
