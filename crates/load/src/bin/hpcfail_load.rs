//! The `hpcfail-load` command: drive a query target with a named
//! traffic profile and write/check `BENCH_serve.json`.
//!
//! ```text
//! hpcfail-load run [--profile ci] [--addr HOST:PORT | --in-process]
//!                  [--trace NAME]
//!                  [--scale 0.05] [--seed 42 | --scenario NAME|PATH]
//!                  [--threads 4] [--cache 1024] [--out PATH]
//!                  [--retries N] [--retry-base-ms MS] [--retry-seed S]
//!                  [--shutdown] [--quiet]
//! hpcfail-load check PATH
//! hpcfail-load profiles
//! ```
//!
//! `--trace NAME` aims the run at a named trace in the server's
//! registry (HTTP targets post to `/v1/traces/NAME/query` and
//! `.../batch`; the in-process target keys its cache under the name).
//! Defaults to `default`, which is where `hpcfail-serve serve` boots
//! its trace unless told otherwise.
//!
//! `--retries N` makes the HTTP target retry shed answers (429/503)
//! and transport failures up to N times per item, with seeded jittered
//! exponential backoff honoring the server's `Retry-After` hints; the
//! report's `sheds` / `retries` / `gave_up` counts come from this
//! path. Retry flags are rejected with `--in-process` (nothing to
//! retry against).
//!
//! `run` plans the profile's request sequence from its seed, executes
//! it against the target (a live server via `--addr`, or an engine
//! behind the server's result cache via `--in-process`), writes the
//! report, and exits 1 if any budget line is violated. `check` parses
//! and budget-checks an existing report — CI runs it on the committed
//! copy so schema drift cannot land silently.
//!
//! Exit codes: 0 success, 1 budget/schema violation or runtime error,
//! 2 usage error.

use std::process::ExitCode;

use hpcfail_load::report::SCHEMA_VERSION;
use hpcfail_load::{
    build_corpus, execute, plan, systems_from_fleet, BenchReport, Budget, Http, InProcess,
    MixConfig, RunOptions, Target,
};
use hpcfail_serve::RetryPolicy;
use hpcfail_synth::FleetSpec;

const USAGE: &str = "usage:
  hpcfail-load run [--profile ci] [--addr HOST:PORT | --in-process]
                   [--trace NAME]
                   [--scale 0.05] [--seed 42 | --scenario NAME|PATH]
                   [--threads 4] [--cache 1024] [--out PATH]
                   [--retries N] [--retry-base-ms MS] [--retry-seed S]
                   [--shutdown] [--quiet]
  hpcfail-load check PATH
  hpcfail-load profiles";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("profiles") => {
            for name in MixConfig::PROFILES {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{USAGE}");
    ExitCode::from(2)
}

/// Parses `--flag value` pairs; returns the value or an error message.
fn take_value<'a>(flag: &str, iter: &mut std::slice::Iter<'a, String>) -> Result<&'a str, String> {
    iter.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

struct RunArgs {
    profile: String,
    addr: Option<String>,
    in_process: bool,
    trace: String,
    scale: f64,
    seed: u64,
    scenario: Option<String>,
    threads: usize,
    cache: usize,
    out: String,
    retries: Option<u32>,
    retry_base_ms: Option<u64>,
    retry_seed: Option<u64>,
    shutdown: bool,
    quiet: bool,
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut parsed = RunArgs {
        profile: "ci".to_owned(),
        addr: None,
        in_process: false,
        trace: hpcfail_serve::DEFAULT_TRACE.to_owned(),
        scale: 0.05,
        seed: 42,
        scenario: None,
        threads: 4,
        cache: 1024,
        out: "BENCH_serve.json".to_owned(),
        retries: None,
        retry_base_ms: None,
        retry_seed: None,
        shutdown: false,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--profile" => {
                take_value("--profile", &mut iter).map(|v| parsed.profile = v.to_owned())
            }
            "--addr" => take_value("--addr", &mut iter).map(|v| parsed.addr = Some(v.to_owned())),
            "--in-process" => {
                parsed.in_process = true;
                Ok(())
            }
            "--trace" => take_value("--trace", &mut iter).and_then(|v| {
                if hpcfail_serve::registry::valid_name(v) {
                    parsed.trace = v.to_owned();
                    Ok(())
                } else {
                    Err(format!("invalid --trace name {v:?}"))
                }
            }),
            "--scale" => take_value("--scale", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.scale = n)
                    .map_err(|_| format!("invalid --scale {v:?}"))
            }),
            "--seed" => take_value("--seed", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.seed = n)
                    .map_err(|_| format!("invalid --seed {v:?}"))
            }),
            "--scenario" => {
                take_value("--scenario", &mut iter).map(|v| parsed.scenario = Some(v.to_owned()))
            }
            "--threads" => take_value("--threads", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.threads = n)
                    .map_err(|_| format!("invalid --threads {v:?}"))
            }),
            "--cache" => take_value("--cache", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.cache = n)
                    .map_err(|_| format!("invalid --cache {v:?}"))
            }),
            "--out" => take_value("--out", &mut iter).map(|v| parsed.out = v.to_owned()),
            "--retries" => take_value("--retries", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.retries = Some(n))
                    .map_err(|_| format!("invalid --retries {v:?}"))
            }),
            "--retry-base-ms" => take_value("--retry-base-ms", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.retry_base_ms = Some(n))
                    .map_err(|_| format!("invalid --retry-base-ms {v:?}"))
            }),
            "--retry-seed" => take_value("--retry-seed", &mut iter).and_then(|v| {
                v.parse()
                    .map(|n| parsed.retry_seed = Some(n))
                    .map_err(|_| format!("invalid --retry-seed {v:?}"))
            }),
            "--shutdown" => {
                parsed.shutdown = true;
                Ok(())
            }
            "--quiet" => {
                parsed.quiet = true;
                Ok(())
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }
    if parsed.in_process == parsed.addr.is_some() {
        return usage_error("pick exactly one target: --addr HOST:PORT or --in-process");
    }
    let retry_flags =
        parsed.retries.is_some() || parsed.retry_base_ms.is_some() || parsed.retry_seed.is_some();
    if retry_flags && parsed.in_process {
        return usage_error("retry flags need an HTTP target (--addr)");
    }
    if parsed.threads == 0 {
        return usage_error("--threads must be positive");
    }
    if parsed.scale <= 0.0 {
        return usage_error("--scale must be positive");
    }
    let Some(config) = MixConfig::named(&parsed.profile) else {
        return usage_error(&format!(
            "unknown profile {:?}; try: {}",
            parsed.profile,
            MixConfig::PROFILES.join(", ")
        ));
    };

    // The fleet description parameterizes the corpus; only the
    // in-process target additionally pays for trace generation.
    let scenario = match &parsed.scenario {
        Some(name) => match hpcfail_synth::scenario::load(name) {
            Ok(scenario) => Some(scenario),
            Err(err) => {
                eprintln!("cannot load scenario {name:?}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let (fleet, corpus_label) = match &scenario {
        Some(scenario) => (scenario.fleet(), format!("scenario={}", scenario.name)),
        None => {
            let spec = if parsed.scale >= 1.0 {
                FleetSpec::lanl()
            } else {
                FleetSpec::lanl_scaled(parsed.scale)
            };
            (spec, format!("scale={} seed={}", parsed.scale, parsed.seed))
        }
    };
    let systems = systems_from_fleet(&fleet);
    let corpus = build_corpus(&systems, config.corpus_size);
    let load_plan = match plan::build(&config, corpus.len()) {
        Ok(load_plan) => load_plan,
        Err(err) => {
            eprintln!("cannot plan profile {:?}: {err}", parsed.profile);
            return ExitCode::FAILURE;
        }
    };
    if !parsed.quiet {
        eprintln!(
            "profile {}: {} items / {} queries over a {}-entry corpus",
            parsed.profile,
            load_plan.items.len(),
            load_plan.queries,
            corpus.len()
        );
    }

    let target: Box<dyn Target> = if let Some(addr) = &parsed.addr {
        if retry_flags {
            let default = RetryPolicy::default();
            let policy = RetryPolicy {
                // `--retries N` allows N retries: N + 1 total attempts.
                max_attempts: parsed
                    .retries
                    .map_or(default.max_attempts, |n| n.saturating_add(1)),
                base_delay_ms: parsed.retry_base_ms.unwrap_or(default.base_delay_ms),
                seed: parsed.retry_seed.unwrap_or(default.seed),
                ..default
            };
            Box::new(Http::with_retry(addr, policy).with_trace(&parsed.trace))
        } else {
            Box::new(Http::new(addr).with_trace(&parsed.trace))
        }
    } else {
        if !parsed.quiet {
            eprintln!("generating trace ({corpus_label})...");
        }
        let trace = match &scenario {
            // The scenario bakes in its own seed.
            Some(scenario) => scenario.generate().into_store(),
            None => fleet.generate(parsed.seed).into_store(),
        };
        Box::new(InProcess::new(trace, parsed.cache).with_trace_name(&parsed.trace))
    };

    let stats = execute(
        &corpus,
        &load_plan,
        &config,
        target.as_ref(),
        RunOptions {
            threads: parsed.threads,
        },
    );
    let report = BenchReport::build(
        &config,
        &stats,
        target.label(),
        &corpus_label,
        parsed.threads,
        Budget::ci(),
    );
    if let Err(err) = std::fs::write(&parsed.out, report.pretty()) {
        eprintln!("cannot write {}: {err}", parsed.out);
        return ExitCode::FAILURE;
    }
    if !parsed.quiet {
        eprintln!(
            "{}: {} queries in {} ms ({:.0} qps), p50 {} us, p99 {} us, hit rate {:.2}, {} errors, {} timeouts, {} sheds / {} retries / {} gave up",
            parsed.out,
            report.queries,
            report.wall_ms,
            report.throughput_qps,
            report.latency.p50_us,
            report.latency.p99_us,
            report.hit_rate,
            report.errors,
            report.timeouts,
            report.sheds,
            report.retries,
            report.gave_up,
        );
    }

    if parsed.shutdown {
        if let Some(addr) = &parsed.addr {
            let client = hpcfail_serve::Client::new(addr.clone());
            if let Err(err) = client.post("/v1/shutdown", "", &[]) {
                eprintln!("shutdown request failed: {err}");
            }
        }
    }

    let violations = report.check();
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("budget violation: {violation}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage_error("check takes exactly one report path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let report = match BenchReport::parse(&text) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let violations = report.check();
    if violations.is_empty() {
        println!(
            "{path}: schema {SCHEMA_VERSION} ok, profile {}, {} queries, p50 {} us, within budget",
            report.profile, report.queries, report.latency.p50_us
        );
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("{path}: budget violation: {violation}");
        }
        ExitCode::FAILURE
    }
}
