//! Deterministic request-corpus enumeration.
//!
//! A corpus is a pool of *distinct* [`AnalysisRequest`]s covering all
//! twenty analysis kinds, parameterized by the systems of the fleet
//! under test. Enumeration is purely index-driven — no RNG — so the
//! same fleet description always yields the same corpus, and two
//! corpus entries never share a cache key (distinctness is enforced on
//! the canonical serialization, which *is* the server's cache key).
//!
//! Requests may name nodes or subsets that do not exist in the trace;
//! the engine answers those with empty results, which is exactly the
//! long-tail traffic a real service sees.

use std::collections::BTreeSet;

use hpcfail_core::checkpoint::CheckpointPolicy;
use hpcfail_core::correlation::Scope;
use hpcfail_core::engine::AnalysisRequest;
use hpcfail_core::power::PowerProblem;
use hpcfail_core::predict::AlarmRule;
use hpcfail_core::regression_study::StudyFamily;
use hpcfail_core::temperature::TempPredictor;
use hpcfail_synth::spec::FleetSpec;
use hpcfail_types::failure::{FailureClass, RootCause};
use hpcfail_types::ids::{NodeId, SystemId};
use hpcfail_types::system::SystemGroup;
use hpcfail_types::time::Window;

/// What the corpus builder needs to know about one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSystem {
    /// LANL-style system id.
    pub id: SystemId,
    /// Node count, used to spread node-addressed queries.
    pub nodes: u32,
}

/// Extracts corpus systems from a fleet description.
///
/// Works on the *spec*, not a generated trace, so HTTP-target runs
/// never pay for simulation.
pub fn systems_from_fleet(fleet: &FleetSpec) -> Vec<CorpusSystem> {
    fleet
        .systems
        .iter()
        .map(|s| CorpusSystem {
            id: SystemId::new(s.id),
            nodes: s.nodes,
        })
        .collect()
}

const CLASSES: [FailureClass; 6] = [
    FailureClass::Any,
    FailureClass::Root(RootCause::Hardware),
    FailureClass::Root(RootCause::Software),
    FailureClass::Root(RootCause::Network),
    FailureClass::Root(RootCause::HumanError),
    FailureClass::Root(RootCause::Environment),
];
const WINDOWS: [Window; 3] = Window::ALL;
const SCOPES: [Scope; 3] = [Scope::SameNode, Scope::SameRack, Scope::SameSystem];
const GROUPS: [SystemGroup; 2] = SystemGroup::ALL;
const PROBLEMS: [PowerProblem; 4] = [
    PowerProblem::Outage,
    PowerProblem::Spike,
    PowerProblem::PowerSupply,
    PowerProblem::Ups,
];
const PREDICTORS: [TempPredictor; 3] = [
    TempPredictor::Average,
    TempPredictor::Maximum,
    TempPredictor::Variance,
];
const FAMILIES: [StudyFamily; 2] = [StudyFamily::Poisson, StudyFamily::NegativeBinomial];

/// Number of request-kind generators cycled by [`build_corpus`].
const KINDS: usize = 20;

fn pick<T: Copy>(options: &[T], p: usize) -> T {
    options[p % options.len()]
}

/// The candidate request for enumeration index `i`.
///
/// Index `i` decomposes into a kind (`i % 20`) and a parameter counter
/// (`i / 20`); each kind maps the counter onto its parameter space.
/// Kinds with small spaces repeat quickly — the dedup set in
/// [`build_corpus`] drops the repeats — while kinds with unbounded
/// spaces (`heaviest-users`, `checkpoint-replay`, …) guarantee the
/// enumeration never runs dry.
fn candidate(systems: &[CorpusSystem], i: usize) -> AnalysisRequest {
    let p = i / KINDS;
    let sys = systems[p % systems.len()];
    let nodes = sys.nodes.max(1);
    match i % KINDS {
        0 => AnalysisRequest::TraceSummary,
        1 => AnalysisRequest::Conditional {
            group: pick(&GROUPS, p),
            trigger: pick(&CLASSES, p),
            target: pick(&CLASSES, p / 3),
            window: pick(&WINDOWS, p / 2),
            scope: pick(&SCOPES, p / 5),
        },
        2 => AnalysisRequest::FleetConditional {
            trigger: pick(&CLASSES, p),
            target: pick(&CLASSES, p / 2),
            window: pick(&WINDOWS, p / 4),
            scope: pick(&SCOPES, p / 7),
        },
        3 => AnalysisRequest::SameTypeSummaries {
            group: pick(&GROUPS, p),
            window: pick(&WINDOWS, p / 2),
            scope: pick(&SCOPES, p / 6),
        },
        4 => AnalysisRequest::NodeFailureCounts { system: sys.id },
        5 => AnalysisRequest::EqualRatesTest {
            system: sys.id,
            class: pick(&CLASSES, p),
            exclude_node0: p.is_multiple_of(2),
        },
        6 => AnalysisRequest::NodeVsRest {
            system: sys.id,
            node: NodeId::new(p as u32 % nodes),
            class: pick(&CLASSES, p / 3),
            window: pick(&WINDOWS, p / 11),
        },
        7 => {
            let width = 1 + p as u32 % 4;
            let start = p as u32 % nodes;
            AnalysisRequest::RootCauseShares {
                system: sys.id,
                nodes: (0..width)
                    .map(|k| NodeId::new((start + k) % nodes.max(width)))
                    .collect(),
            }
        }
        8 => AnalysisRequest::UsageCorrelations { system: sys.id },
        9 => AnalysisRequest::HeaviestUsers {
            system: sys.id,
            k: 1 + p,
        },
        10 => AnalysisRequest::EnvBreakdown,
        11 => AnalysisRequest::PowerConditional {
            problem: pick(&PROBLEMS, p),
            target: pick(&CLASSES, p / 4),
            window: pick(&WINDOWS, p / 9),
        },
        12 => AnalysisRequest::MaintenanceAfterPower {
            problem: pick(&PROBLEMS, p),
        },
        13 => AnalysisRequest::TemperatureRegression {
            system: sys.id,
            predictor: pick(&PREDICTORS, p),
            target: pick(&CLASSES, p / 3),
            family: pick(&FAMILIES, p / 5),
        },
        14 => AnalysisRequest::CosmicCorrelation {
            system: sys.id,
            class: pick(&CLASSES, p),
        },
        15 => AnalysisRequest::RegressionStudy {
            system: sys.id,
            family: pick(&FAMILIES, p),
            exclude_node0: p % 2 == 1,
        },
        16 => AnalysisRequest::ArrivalProfile {
            system: sys.id,
            class: pick(&CLASSES, p),
        },
        17 => AnalysisRequest::AlarmEvaluation {
            group: pick(&GROUPS, p),
            trigger: pick(&CLASSES, p / 2),
            window: pick(&WINDOWS, p / 3),
        },
        18 => {
            if p.is_multiple_of(2) {
                AnalysisRequest::CheckpointReplay {
                    group: pick(&GROUPS, p),
                    policy: CheckpointPolicy::Uniform {
                        interval_hours: 1.0 + p as f64 * 0.5,
                    },
                }
            } else {
                AnalysisRequest::CheckpointReplay {
                    group: pick(&GROUPS, p),
                    policy: CheckpointPolicy::Adaptive {
                        base_hours: 2.0 + p as f64,
                        flagged_hours: 0.5,
                        rule: AlarmRule {
                            trigger: pick(&CLASSES, p / 2),
                            window: pick(&WINDOWS, p),
                        },
                    },
                }
            }
        }
        _ => AnalysisRequest::Availability {
            system: if p.is_multiple_of(systems.len() + 1) {
                None
            } else {
                Some(sys.id)
            },
        },
    }
}

/// Enumerates `size` distinct requests over `systems`.
///
/// # Panics
///
/// If `systems` is empty, or if the enumeration stalls (which would
/// mean every unbounded generator above was broken by an edit).
pub fn build_corpus(systems: &[CorpusSystem], size: usize) -> Vec<AnalysisRequest> {
    assert!(
        !systems.is_empty(),
        "corpus needs at least one system to parameterize requests"
    );
    let mut seen = BTreeSet::new();
    let mut out = Vec::with_capacity(size);
    let mut i = 0usize;
    while out.len() < size {
        assert!(
            i < size.saturating_mul(64) + 4096,
            "corpus enumeration stalled at {} of {size} requests",
            out.len()
        );
        let request = candidate(systems, i);
        i += 1;
        if seen.insert(request.canonical()) {
            out.push(request);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_systems() -> Vec<CorpusSystem> {
        vec![
            CorpusSystem {
                id: SystemId::new(2),
                nodes: 49,
            },
            CorpusSystem {
                id: SystemId::new(20),
                nodes: 512,
            },
        ]
    }

    #[test]
    fn corpus_is_distinct_and_covers_every_kind() {
        let corpus = build_corpus(&demo_systems(), 300);
        assert_eq!(corpus.len(), 300);
        let canon: BTreeSet<String> = corpus.iter().map(|r| r.canonical()).collect();
        assert_eq!(canon.len(), 300, "cache keys must be distinct");
        let kinds: BTreeSet<&str> = corpus.iter().map(|r| r.kind()).collect();
        assert_eq!(kinds.len(), KINDS, "all request kinds represented");
    }

    #[test]
    fn corpus_is_reproducible() {
        let a = build_corpus(&demo_systems(), 128);
        let b = build_corpus(&demo_systems(), 128);
        assert_eq!(a, b);
    }
}
