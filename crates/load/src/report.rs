//! The versioned `BENCH_serve.json` report and its budget.
//!
//! The report is the harness's single artifact: a schema-versioned
//! JSON document with the profile, the measured latency quantiles,
//! throughput, error/timeout counts, cache outcomes, and the budget it
//! was checked against. CI regenerates it against a live server and
//! fails the build when a budget line is violated; the committed copy
//! documents the last known-good measurement.
//!
//! Budgets are deliberately loose. They are tripwires for collapse —
//! a p50 that jumps 100x, a cache that stops hitting, errors where
//! there were none — not performance regressions measured in percent;
//! shared CI runners are far too noisy for that. Anything subtler
//! belongs in criterion benches on quiet hardware.

use std::collections::BTreeMap;
use std::fmt;

use hpcfail_obs::json::{self, Json};

use crate::mix::MixConfig;
use crate::run::{quantile_us, RunStats};

/// Schema version of `BENCH_serve.json`. Version 2 added the
/// shed/retried/gave-up accounting (per phase and top-level) and the
/// `max_gave_up_fraction` budget line.
pub const SCHEMA_VERSION: u64 = 2;

/// Latency quantiles, microseconds, nearest-rank over per-item wall
/// times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl Quantiles {
    fn of(sorted: &[u64]) -> Self {
        Quantiles {
            p50_us: quantile_us(sorted, 0.50),
            p90_us: quantile_us(sorted, 0.90),
            p99_us: quantile_us(sorted, 0.99),
            max_us: sorted.last().copied().unwrap_or(0),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p90_us", Json::Num(self.p90_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
            ("max_us", Json::Num(self.max_us as f64)),
        ])
    }
}

/// Per-phase slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label.
    pub phase: String,
    /// Plan items issued.
    pub items: u64,
    /// Queries issued.
    pub queries: u64,
    /// Errors.
    pub errors: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Shed answers (429/503) observed, retried ones included.
    pub sheds: u64,
    /// Retries performed beyond first attempts.
    pub retries: u64,
    /// Items that gave up retrying without a non-shed answer.
    pub gave_up: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Coalesced queries.
    pub coalesced: u64,
    /// Latency quantiles for this phase.
    pub latency: Quantiles,
}

/// Pass/fail thresholds the report is checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Ceiling on overall median item latency.
    pub max_p50_us: u64,
    /// Ceiling on overall p99 item latency.
    pub max_p99_us: u64,
    /// Floor on overall throughput, queries per second.
    pub min_throughput_qps: f64,
    /// Floor on the cache hit rate over known-outcome lookups.
    pub min_hit_rate: f64,
    /// Ceiling on errors as a fraction of items (0 = any error fails).
    pub max_error_fraction: f64,
    /// Ceiling on timeouts as a fraction of items.
    pub max_timeout_fraction: f64,
    /// Ceiling on gave-up items as a fraction of items (0 = the
    /// retrying client must recover every shed answer).
    pub max_gave_up_fraction: f64,
}

impl Budget {
    /// The pinned CI budget: collapse tripwires, not perf gates.
    pub fn ci() -> Self {
        Budget {
            max_p50_us: 200_000,
            max_p99_us: 5_000_000,
            min_throughput_qps: 10.0,
            min_hit_rate: 0.2,
            max_error_fraction: 0.0,
            max_timeout_fraction: 0.02,
            max_gave_up_fraction: 0.0,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("max_p50_us", Json::Num(self.max_p50_us as f64)),
            ("max_p99_us", Json::Num(self.max_p99_us as f64)),
            ("min_throughput_qps", Json::Num(self.min_throughput_qps)),
            ("min_hit_rate", Json::Num(self.min_hit_rate)),
            ("max_error_fraction", Json::Num(self.max_error_fraction)),
            ("max_timeout_fraction", Json::Num(self.max_timeout_fraction)),
            ("max_gave_up_fraction", Json::Num(self.max_gave_up_fraction)),
        ])
    }
}

/// The complete `BENCH_serve.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version; always [`SCHEMA_VERSION`] for freshly built
    /// reports.
    pub schema: u64,
    /// Profile name ("ci", ...).
    pub profile: String,
    /// Plan seed.
    pub seed: u64,
    /// Target label ("http" / "in-process").
    pub target: String,
    /// Corpus description ("scale=0.05 seed=42" / "scenario=...").
    pub corpus: String,
    /// Worker threads.
    pub threads: u64,
    /// Plan items issued.
    pub items: u64,
    /// Queries issued.
    pub queries: u64,
    /// Errors.
    pub errors: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Shed answers (429/503) observed, retried ones included.
    pub sheds: u64,
    /// Retries performed beyond first attempts.
    pub retries: u64,
    /// Items that gave up retrying without a non-shed answer.
    pub gave_up: u64,
    /// Wall-clock, milliseconds.
    pub wall_ms: u64,
    /// Queries per second over the wall clock.
    pub throughput_qps: f64,
    /// Overall latency quantiles.
    pub latency: Quantiles,
    /// Total cache hits.
    pub hits: u64,
    /// Total cache misses.
    pub misses: u64,
    /// Total coalesced queries.
    pub coalesced: u64,
    /// Hits over known-outcome lookups.
    pub hit_rate: f64,
    /// Queries executed per request kind.
    pub per_kind: BTreeMap<String, u64>,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// The budget this report was checked against.
    pub budget: Budget,
}

/// Why a report failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The text is not valid JSON.
    Json(String),
    /// The JSON does not match the schema.
    Schema(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(message) => write!(f, "malformed JSON: {message}"),
            ReportError::Schema(message) => write!(f, "schema violation: {message}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl BenchReport {
    /// Folds run observations into a report.
    pub fn build(
        config: &MixConfig,
        stats: &RunStats,
        target: &str,
        corpus: &str,
        threads: usize,
        budget: Budget,
    ) -> Self {
        let sorted = stats.sorted_latencies_us();
        let (hits, misses, coalesced) = stats.cache_totals();
        let wall_ms = stats.wall.as_millis().max(1) as u64;
        let phases = stats
            .phases
            .iter()
            .filter(|p| p.items > 0)
            .map(|p| {
                let mut latencies = p.latencies_us.clone();
                latencies.sort_unstable();
                PhaseReport {
                    phase: p.label.clone(),
                    items: p.items,
                    queries: p.queries,
                    errors: p.errors,
                    timeouts: p.timeouts,
                    sheds: p.sheds,
                    retries: p.retries,
                    gave_up: p.gave_up,
                    hits: p.hits,
                    misses: p.misses,
                    coalesced: p.coalesced,
                    latency: Quantiles::of(&latencies),
                }
            })
            .collect();
        BenchReport {
            schema: SCHEMA_VERSION,
            profile: config.profile.clone(),
            seed: config.seed,
            target: target.to_owned(),
            corpus: corpus.to_owned(),
            threads: threads as u64,
            items: stats.items(),
            queries: stats.queries(),
            errors: stats.errors(),
            timeouts: stats.timeouts(),
            sheds: stats.sheds(),
            retries: stats.retries(),
            gave_up: stats.gave_up(),
            wall_ms,
            throughput_qps: stats.queries() as f64 / (wall_ms as f64 / 1000.0),
            latency: Quantiles::of(&sorted),
            hits,
            misses,
            coalesced,
            hit_rate: stats.hit_rate(),
            per_kind: stats.executed_per_kind.clone(),
            phases,
            budget,
        }
    }

    /// Serializes to the canonical JSON document.
    pub fn to_json(&self) -> Json {
        let per_kind = Json::Obj(
            self.per_kind
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj([
                        ("phase", Json::Str(p.phase.clone())),
                        ("items", Json::Num(p.items as f64)),
                        ("queries", Json::Num(p.queries as f64)),
                        ("errors", Json::Num(p.errors as f64)),
                        ("timeouts", Json::Num(p.timeouts as f64)),
                        ("sheds", Json::Num(p.sheds as f64)),
                        ("retries", Json::Num(p.retries as f64)),
                        ("gave_up", Json::Num(p.gave_up as f64)),
                        ("hits", Json::Num(p.hits as f64)),
                        ("misses", Json::Num(p.misses as f64)),
                        ("coalesced", Json::Num(p.coalesced as f64)),
                        ("latency", p.latency.to_json()),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("schema", Json::Num(self.schema as f64)),
            ("profile", Json::Str(self.profile.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("target", Json::Str(self.target.clone())),
            ("corpus", Json::Str(self.corpus.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("items", Json::Num(self.items as f64)),
            ("queries", Json::Num(self.queries as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("timeouts", Json::Num(self.timeouts as f64)),
            ("sheds", Json::Num(self.sheds as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("gave_up", Json::Num(self.gave_up as f64)),
            ("wall_ms", Json::Num(self.wall_ms as f64)),
            ("throughput_qps", Json::Num(self.throughput_qps)),
            ("latency", self.latency.to_json()),
            ("hits", Json::Num(self.hits as f64)),
            ("misses", Json::Num(self.misses as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            ("hit_rate", Json::Num(self.hit_rate)),
            ("per_kind", per_kind),
            ("phases", phases),
            ("budget", self.budget.to_json()),
        ])
    }

    /// The pretty-printed document, trailing newline included.
    pub fn pretty(&self) -> String {
        let mut text = self.to_json().pretty();
        text.push('\n');
        text
    }

    /// Parses and validates a report document.
    ///
    /// Strict: unknown top-level, latency, or budget keys are schema
    /// violations, so a drifted writer cannot silently pass CI.
    ///
    /// # Errors
    ///
    /// [`ReportError`] on malformed JSON or schema drift.
    pub fn parse(text: &str) -> Result<Self, ReportError> {
        let json = json::parse(text).map_err(|e| ReportError::Json(e.to_string()))?;
        let Json::Obj(map) = &json else {
            return Err(ReportError::Schema("top level must be an object".into()));
        };
        const TOP_KEYS: [&str; 23] = [
            "schema",
            "profile",
            "seed",
            "target",
            "corpus",
            "threads",
            "items",
            "queries",
            "errors",
            "timeouts",
            "sheds",
            "retries",
            "gave_up",
            "wall_ms",
            "throughput_qps",
            "latency",
            "hits",
            "misses",
            "coalesced",
            "hit_rate",
            "per_kind",
            "phases",
            "budget",
        ];
        for key in map.keys() {
            if !TOP_KEYS.contains(&key.as_str()) {
                return Err(ReportError::Schema(format!("unknown key {key:?}")));
            }
        }
        let schema = get_u64(&json, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(ReportError::Schema(format!(
                "schema {schema} unsupported, expected {SCHEMA_VERSION}"
            )));
        }
        let per_kind_json = json
            .get("per_kind")
            .ok_or_else(|| ReportError::Schema("missing per_kind".into()))?;
        let Json::Obj(per_kind_map) = per_kind_json else {
            return Err(ReportError::Schema("per_kind must be an object".into()));
        };
        let mut per_kind = BTreeMap::new();
        for (kind, count) in per_kind_map {
            per_kind.insert(
                kind.clone(),
                count.as_u64().ok_or_else(|| {
                    ReportError::Schema(format!("per_kind[{kind:?}] must be a count"))
                })?,
            );
        }
        let phases_json = json
            .get("phases")
            .and_then(|p| p.as_arr())
            .ok_or_else(|| ReportError::Schema("missing phases array".into()))?;
        let mut phases = Vec::with_capacity(phases_json.len());
        for (i, phase) in phases_json.iter().enumerate() {
            let context = format!("phases[{i}]");
            phases.push(PhaseReport {
                phase: get_str(phase, "phase")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                items: get_u64(phase, "items")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                queries: get_u64(phase, "queries")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                errors: get_u64(phase, "errors")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                timeouts: get_u64(phase, "timeouts")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                sheds: get_u64(phase, "sheds")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                retries: get_u64(phase, "retries")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                gave_up: get_u64(phase, "gave_up")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                hits: get_u64(phase, "hits")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                misses: get_u64(phase, "misses")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                coalesced: get_u64(phase, "coalesced")
                    .map_err(|e| ReportError::Schema(format!("{context}: {e}")))?,
                latency: parse_quantiles(
                    phase.get("latency").ok_or_else(|| {
                        ReportError::Schema(format!("{context}: missing latency"))
                    })?,
                )?,
            });
        }
        Ok(BenchReport {
            schema,
            profile: get_str(&json, "profile")?,
            seed: get_u64(&json, "seed")?,
            target: get_str(&json, "target")?,
            corpus: get_str(&json, "corpus")?,
            threads: get_u64(&json, "threads")?,
            items: get_u64(&json, "items")?,
            queries: get_u64(&json, "queries")?,
            errors: get_u64(&json, "errors")?,
            timeouts: get_u64(&json, "timeouts")?,
            sheds: get_u64(&json, "sheds")?,
            retries: get_u64(&json, "retries")?,
            gave_up: get_u64(&json, "gave_up")?,
            wall_ms: get_u64(&json, "wall_ms")?,
            throughput_qps: get_f64(&json, "throughput_qps")?,
            latency: parse_quantiles(
                json.get("latency")
                    .ok_or_else(|| ReportError::Schema("missing latency".into()))?,
            )?,
            hits: get_u64(&json, "hits")?,
            misses: get_u64(&json, "misses")?,
            coalesced: get_u64(&json, "coalesced")?,
            hit_rate: get_f64(&json, "hit_rate")?,
            per_kind,
            phases,
            budget: parse_budget(
                json.get("budget")
                    .ok_or_else(|| ReportError::Schema("missing budget".into()))?,
            )?,
        })
    }

    /// Budget violations, empty when the report is within budget.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let budget = &self.budget;
        if self.latency.p50_us > budget.max_p50_us {
            violations.push(format!(
                "p50 {}us exceeds budget {}us",
                self.latency.p50_us, budget.max_p50_us
            ));
        }
        if self.latency.p99_us > budget.max_p99_us {
            violations.push(format!(
                "p99 {}us exceeds budget {}us",
                self.latency.p99_us, budget.max_p99_us
            ));
        }
        if self.throughput_qps < budget.min_throughput_qps {
            violations.push(format!(
                "throughput {:.1} qps below budget {:.1}",
                self.throughput_qps, budget.min_throughput_qps
            ));
        }
        if self.hit_rate < budget.min_hit_rate {
            violations.push(format!(
                "cache hit rate {:.3} below budget {:.3}",
                self.hit_rate, budget.min_hit_rate
            ));
        }
        let items = self.items.max(1) as f64;
        if self.errors as f64 / items > budget.max_error_fraction {
            violations.push(format!(
                "{} errors exceed budgeted fraction {:.3}",
                self.errors, budget.max_error_fraction
            ));
        }
        if self.timeouts as f64 / items > budget.max_timeout_fraction {
            violations.push(format!(
                "{} timeouts exceed budgeted fraction {:.3}",
                self.timeouts, budget.max_timeout_fraction
            ));
        }
        if self.gave_up as f64 / items > budget.max_gave_up_fraction {
            violations.push(format!(
                "{} gave-up items exceed budgeted fraction {:.3}",
                self.gave_up, budget.max_gave_up_fraction
            ));
        }
        violations
    }
}

fn get_u64(json: &Json, key: &str) -> Result<u64, ReportError> {
    json.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| ReportError::Schema(format!("missing or non-integer {key:?}")))
}

fn get_f64(json: &Json, key: &str) -> Result<f64, ReportError> {
    json.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| ReportError::Schema(format!("missing or non-numeric {key:?}")))
}

fn get_str(json: &Json, key: &str) -> Result<String, ReportError> {
    json.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| ReportError::Schema(format!("missing or non-string {key:?}")))
}

fn parse_quantiles(json: &Json) -> Result<Quantiles, ReportError> {
    let Json::Obj(map) = json else {
        return Err(ReportError::Schema("latency must be an object".into()));
    };
    for key in map.keys() {
        if !["p50_us", "p90_us", "p99_us", "max_us"].contains(&key.as_str()) {
            return Err(ReportError::Schema(format!("unknown latency key {key:?}")));
        }
    }
    Ok(Quantiles {
        p50_us: get_u64(json, "p50_us")?,
        p90_us: get_u64(json, "p90_us")?,
        p99_us: get_u64(json, "p99_us")?,
        max_us: get_u64(json, "max_us")?,
    })
}

fn parse_budget(json: &Json) -> Result<Budget, ReportError> {
    let Json::Obj(map) = json else {
        return Err(ReportError::Schema("budget must be an object".into()));
    };
    for key in map.keys() {
        if ![
            "max_p50_us",
            "max_p99_us",
            "min_throughput_qps",
            "min_hit_rate",
            "max_error_fraction",
            "max_timeout_fraction",
            "max_gave_up_fraction",
        ]
        .contains(&key.as_str())
        {
            return Err(ReportError::Schema(format!("unknown budget key {key:?}")));
        }
    }
    Ok(Budget {
        max_p50_us: get_u64(json, "max_p50_us")?,
        max_p99_us: get_u64(json, "max_p99_us")?,
        min_throughput_qps: get_f64(json, "min_throughput_qps")?,
        min_hit_rate: get_f64(json, "min_hit_rate")?,
        max_error_fraction: get_f64(json, "max_error_fraction")?,
        max_timeout_fraction: get_f64(json, "max_timeout_fraction")?,
        max_gave_up_fraction: get_f64(json, "max_gave_up_fraction")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            profile: "ci".into(),
            seed: 2026,
            target: "http".into(),
            corpus: "scale=0.05 seed=42".into(),
            threads: 4,
            items: 544,
            queries: 768,
            errors: 0,
            timeouts: 0,
            sheds: 5,
            retries: 5,
            gave_up: 0,
            wall_ms: 1234,
            throughput_qps: 622.4,
            latency: Quantiles {
                p50_us: 850,
                p90_us: 4200,
                p99_us: 21_000,
                max_us: 80_000,
            },
            hits: 400,
            misses: 250,
            coalesced: 3,
            hit_rate: 400.0 / 650.0,
            per_kind: BTreeMap::from([("trace-summary".to_owned(), 12u64)]),
            phases: vec![PhaseReport {
                phase: "hot-key".into(),
                items: 256,
                queries: 256,
                errors: 0,
                timeouts: 0,
                sheds: 5,
                retries: 5,
                gave_up: 0,
                hits: 230,
                misses: 26,
                coalesced: 0,
                latency: Quantiles::default(),
            }],
            budget: Budget::ci(),
        }
    }

    #[test]
    fn report_round_trips() {
        let report = sample();
        let parsed = BenchReport::parse(&report.pretty()).expect("own output parses");
        assert_eq!(parsed, report);
        // Canonical: re-serialization is byte-stable.
        assert_eq!(parsed.pretty(), report.pretty());
    }

    #[test]
    fn parse_rejects_drift() {
        let report = sample();
        let text = report.pretty().replace("\"schema\": 2", "\"schema\": 99");
        assert!(matches!(
            BenchReport::parse(&text),
            Err(ReportError::Schema(_))
        ));
        let text = report
            .pretty()
            .replace("\"seed\": 2026", "\"seed\": 2026,\n  \"surprise\": true");
        assert!(matches!(
            BenchReport::parse(&text),
            Err(ReportError::Schema(_))
        ));
        assert!(matches!(
            BenchReport::parse("not json"),
            Err(ReportError::Json(_))
        ));
    }

    #[test]
    fn budget_violations_are_reported() {
        let mut report = sample();
        assert!(report.check().is_empty());
        report.latency.p50_us = 10_000_000;
        report.errors = 3;
        report.hit_rate = 0.01;
        report.gave_up = 2;
        let violations = report.check();
        assert_eq!(violations.len(), 4);
    }
}
