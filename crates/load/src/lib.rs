//! Deterministic load harness for the hpcfail query service.
//!
//! The harness turns a seed and a named traffic profile into a fully
//! determined sequence of [`AnalysisRequest`]s — the *plan* — and then
//! drives that plan against a target: either a real `hpcfail-serve`
//! instance over HTTP or an in-process [`Engine`] fronted by the same
//! result cache the server uses. Because the plan is generated up
//! front by a single seeded RNG, the request sequence is byte-identical
//! no matter how many worker threads later execute it; threads only
//! race for *position* in the plan, never for its contents.
//!
//! The pipeline:
//!
//! 1. [`corpus`] — enumerate a deduplicated pool of distinct requests
//!    covering all twenty analysis kinds, parameterized by the fleet
//!    under test (a `--scale` LANL fleet or a scenario pack).
//! 2. [`mix`] — a named profile: phases (zipfian hot-key, batch-heavy,
//!    deadline-laden, cold-cache) with request counts and the arrival
//!    discipline (closed-loop or bounded open-loop).
//! 3. [`plan`] — expand profile × corpus × seed into the concrete
//!    request sequence.
//! 4. [`target`] + [`run`] — execute the plan and collect latency,
//!    status, and cache-outcome observations.
//! 5. [`report`] — fold observations into a versioned
//!    `BENCH_serve.json` and check it against a budget.
//!
//! [`AnalysisRequest`]: hpcfail_core::engine::AnalysisRequest
//! [`Engine`]: hpcfail_core::engine::Engine

pub mod corpus;
pub mod mix;
pub mod plan;
pub mod report;
pub mod run;
pub mod target;

pub use corpus::{build_corpus, systems_from_fleet, CorpusSystem};
pub use mix::{Arrival, MixConfig, MixError, Phase, PhaseKind};
pub use plan::LoadPlan;
pub use report::{BenchReport, Budget, ReportError};
pub use run::{execute, RunOptions, RunStats};
pub use target::{CallOutcome, Http, InProcess, Target};
