//! Satellite guarantee: the harness is deterministic.
//!
//! Same seed and mix ⇒ byte-identical planned request sequence and
//! identical per-kind counts — and because the plan is generated
//! before execution, the executed counts cannot depend on how many
//! worker threads later drain it. Both halves are pinned here: the
//! proptest covers the planner across random seeds and mix tweaks,
//! the executor test runs the same plan on 1, 2, and 8 threads.

use std::collections::BTreeMap;

use hpcfail_load::{build_corpus, execute, plan, CorpusSystem, InProcess, MixConfig, RunOptions};
use hpcfail_synth::Scenario;
use hpcfail_types::ids::SystemId;
use proptest::prelude::*;

fn corpus_systems() -> Vec<CorpusSystem> {
    vec![
        CorpusSystem {
            id: SystemId::new(2),
            nodes: 49,
        },
        CorpusSystem {
            id: SystemId::new(20),
            nodes: 512,
        },
    ]
}

proptest! {
    /// Planning is a pure function of (profile, seed): two expansions
    /// agree byte-for-byte, and per-kind counts follow.
    #[test]
    fn same_seed_and_mix_is_byte_identical(
        seed in 0u64..u64::MAX,
        profile_index in 0usize..MixConfig::PROFILES.len(),
    ) {
        let mut config = MixConfig::named(MixConfig::PROFILES[profile_index]).unwrap();
        config.seed = seed;
        let corpus = build_corpus(&corpus_systems(), config.corpus_size);
        let a = plan::build(&config, corpus.len()).unwrap();
        let b = plan::build(&config, corpus.len()).unwrap();
        prop_assert_eq!(
            plan::canonical_bytes(&a, &corpus),
            plan::canonical_bytes(&b, &corpus)
        );
        prop_assert_eq!(
            plan::per_kind_counts(&a, &corpus),
            plan::per_kind_counts(&b, &corpus)
        );
    }

    /// A different seed must actually change hot-key traffic (guards
    /// against the RNG being silently ignored).
    #[test]
    fn seed_reaches_the_plan(seed in 0u64..u64::MAX) {
        let config = {
            let mut c = MixConfig::smoke();
            c.seed = seed;
            c
        };
        let other = {
            let mut c = MixConfig::smoke();
            c.seed = seed.wrapping_add(1);
            c
        };
        let corpus = build_corpus(&corpus_systems(), config.corpus_size);
        let a = plan::build(&config, corpus.len()).unwrap();
        let b = plan::build(&other, corpus.len()).unwrap();
        prop_assert!(
            plan::canonical_bytes(&a, &corpus) != plan::canonical_bytes(&b, &corpus),
            "seed change must reach the plan"
        );
    }
}

/// Executing the same plan with 1, 2, or 8 workers issues exactly the
/// planned queries: per-kind counts match the plan on every thread
/// count, with no drops and no duplicates.
#[test]
fn thread_count_does_not_change_executed_traffic() {
    let scenario = Scenario::parse(
        r#"{
            "scenario": "determinism-fixture",
            "version": 1,
            "seed": 11,
            "systems": [
                {"id": 2, "template": "numa", "nodes": 12, "days": 90},
                {"id": 20, "template": "smp", "nodes": 24, "days": 90}
            ]
        }"#,
    )
    .expect("fixture parses");
    let config = MixConfig::smoke();
    let systems = hpcfail_load::systems_from_fleet(&scenario.fleet());
    let corpus = build_corpus(&systems, config.corpus_size);
    let load_plan = plan::build(&config, corpus.len()).expect("smoke profile plans");
    let planned = plan::per_kind_counts(&load_plan, &corpus);

    let mut executed: Vec<BTreeMap<String, u64>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let target = InProcess::new(scenario.generate().into_store(), 1024);
        let stats = execute(
            &corpus,
            &load_plan,
            &config,
            &target,
            RunOptions { threads },
        );
        assert_eq!(
            stats.items(),
            load_plan.items.len() as u64,
            "{threads} threads"
        );
        assert_eq!(
            stats.queries(),
            load_plan.queries as u64,
            "{threads} threads"
        );
        assert_eq!(stats.errors(), 0, "{threads} threads");
        executed.push(stats.executed_per_kind);
    }
    for counts in &executed {
        assert_eq!(counts, &planned, "executed counts must match the plan");
    }
}
