//! Satellite guarantee: harness answers are the server's answers.
//!
//! For every query the harness can issue against a scenario-pack
//! trace, the in-process target must return bytes identical to calling
//! `Engine::run` directly and rendering the result the way `/query`
//! does (`to_json().pretty()`). Batches must be the `/batch` wrapping
//! of those same bytes. The in-process target reuses the server's
//! result cache, so this also proves the cache returns the body it was
//! handed, verbatim, on every hit.

use hpcfail_core::engine::AnalysisRequest;
use hpcfail_load::{build_corpus, systems_from_fleet, InProcess, Target};
use hpcfail_obs::json::Json;
use hpcfail_synth::scenario;

fn assert_pack_differential(pack: &str, corpus_size: usize) {
    let scenario = scenario::load(pack).expect("builtin pack loads");
    let systems = systems_from_fleet(&scenario.fleet());
    let corpus = build_corpus(&systems, corpus_size);
    let target = InProcess::new(scenario.generate().into_store(), 256);

    // Two passes: the first exercises the miss path, the second the
    // hit path (capacity 256 holds the whole corpus). Both must be
    // byte-identical to the direct engine render.
    for pass in 0..2 {
        for request in &corpus {
            let expected = target.engine().run(request).to_json().pretty();
            let outcome = target.call(&[request], None);
            assert_eq!(outcome.status, 200);
            assert_eq!(
                outcome.body,
                expected,
                "pack {pack}, pass {pass}, kind {}",
                request.kind()
            );
        }
    }

    // Batch calls wrap the exact per-query bodies as JSON strings.
    let batch: Vec<&AnalysisRequest> = corpus.iter().take(5).collect();
    let expected_bodies: Vec<Json> = batch
        .iter()
        .map(|r| Json::Str(target.engine().run(r).to_json().pretty()))
        .collect();
    let expected = Json::obj([("results", Json::Arr(expected_bodies))]).pretty();
    let outcome = target.call(&batch, None);
    assert_eq!(outcome.body, expected, "pack {pack} batch wrapping");
}

#[test]
fn cascading_power_pack_is_byte_identical() {
    assert_pack_differential("cascading-power", 48);
}

#[test]
fn firmware_wave_pack_is_byte_identical() {
    assert_pack_differential("firmware-wave", 48);
}

#[test]
fn network_partition_pack_is_byte_identical() {
    assert_pack_differential("network-partition", 48);
}

#[test]
fn fleet_100k_pack_is_byte_identical() {
    // The big fleet: generation is the cost, so keep the corpus lean.
    assert_pack_differential("fleet-100k", 24);
}
