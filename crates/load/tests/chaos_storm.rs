//! Deterministic chaos storms: drive the load harness through a live
//! server whose seeded chaos spec sheds and delays traffic, and pin
//! down the overload-protection contract:
//!
//! - the same chaos seed + load seed produce the *identical* fault
//!   schedule, so shed/retry counts match exactly across reruns;
//! - every rejection is typed (429/503 recovered by the retrying
//!   client) — zero transport errors, zero silently dropped requests;
//! - admitted-request p99 stays bounded through the storm;
//! - once the storm dries up, `/healthz` reports a healthy SLO again.

use hpcfail_core::engine::Engine;
use hpcfail_load::run::quantile_us;
use hpcfail_load::{
    build_corpus, execute, plan, systems_from_fleet, Http, MixConfig, RunOptions, RunStats,
};
use hpcfail_serve::admission::{AdmissionConfig, ShedPolicy};
use hpcfail_serve::chaos::ChaosConfig;
use hpcfail_serve::client::Client;
use hpcfail_serve::retry::RetryPolicy;
use hpcfail_serve::server::{spawn, ServerConfig, ServerHandle};
use hpcfail_serve::slo::SloPolicy;
use hpcfail_synth::Scenario;
use std::time::Duration;

fn fixture() -> Scenario {
    Scenario::parse(
        r#"{
            "scenario": "chaos-storm-fixture",
            "version": 1,
            "seed": 31,
            "systems": [
                {"id": 2, "template": "numa", "nodes": 12, "days": 90},
                {"id": 20, "template": "smp", "nodes": 24, "days": 90}
            ]
        }"#,
    )
    .expect("fixture parses")
}

/// The storm: bounded shed bursts plus latency injection at two
/// points. Both shed rules carry a `max`, so the storm dries up and
/// the post-storm SLO check sees clean traffic.
fn storm_spec() -> ChaosConfig {
    ChaosConfig::parse(
        r#"{
          "seed": 2026,
          "rules": [
            {"point": "admission", "fault": "shed", "probability": 0.25, "max": 40},
            {"point": "admission", "fault": "latency", "probability": 0.2, "ms": 2},
            {"point": "engine", "fault": "latency", "probability": 0.3, "ms": 5}
          ]
        }"#,
    )
    .expect("storm spec parses")
}

fn storm_server() -> ServerHandle {
    spawn(
        Engine::new(fixture().generate().into_store()),
        ServerConfig {
            workers: 4,
            cache_capacity: 1024,
            admission: AdmissionConfig {
                max_inflight: 4,
                max_queued: 16,
                policy: ShedPolicy::Brownout,
                retry_after_ms: 2,
            },
            chaos: Some(storm_spec()),
            slo: SloPolicy {
                latency_budget_ms: 500,
                max_error_rate: 0.05,
                window_ms: 1_500,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Runs the smoke profile through the storm with a retrying HTTP
/// target, single-threaded so the arrival order (and therefore the
/// seeded chaos schedule) is identical on every run.
fn run_storm(addr: &str) -> RunStats {
    let config = MixConfig::smoke();
    let scenario = fixture();
    let systems = systems_from_fleet(&scenario.fleet());
    let corpus = build_corpus(&systems, config.corpus_size);
    let load_plan = plan::build(&config, corpus.len()).expect("profile plans");
    let target = Http::with_retry(
        addr,
        RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 1,
            max_delay_ms: 20,
            budget: 10_000,
            seed: 7,
        },
    );
    execute(
        &corpus,
        &load_plan,
        &config,
        &target,
        RunOptions { threads: 1 },
    )
}

#[test]
fn seeded_storm_has_identical_counts_and_recovers_to_healthy_slo() {
    // Two independent servers, same chaos seed, same load seed: the
    // fault schedule and every derived count must match exactly.
    let first = {
        let handle = storm_server();
        let stats = run_storm(&handle.addr().to_string());
        handle.shutdown();
        stats
    };
    let handle = storm_server();
    let addr = handle.addr().to_string();
    let second = run_storm(&addr);

    assert!(first.sheds() > 0, "the storm must actually shed");
    assert!(first.retries() >= first.sheds(), "every shed was retried");
    assert_eq!(first.sheds(), second.sheds(), "shed schedule identical");
    assert_eq!(first.retries(), second.retries(), "retry counts identical");
    assert_eq!(first.gave_up(), second.gave_up());
    assert_eq!(first.errors(), second.errors());
    assert_eq!(first.timeouts(), second.timeouts());

    // Every rejection was typed and recovered: no transport errors, no
    // abandoned items, every plan item answered.
    assert_eq!(first.errors(), 0, "all rejections typed and recovered");
    assert_eq!(first.gave_up(), 0, "retry budget covers the storm");
    assert_eq!(first.timeouts(), 0);
    let config = MixConfig::smoke();
    let planned_items: u64 = config.phases.iter().map(|p| p.requests as u64).sum();
    assert_eq!(first.items(), planned_items, "no request silently dropped");

    // Admitted-request p99 stays bounded through the storm: retries
    // plus injected latency never push an item past 2 s.
    let sorted = second.sorted_latencies_us();
    let p99 = quantile_us(&sorted, 0.99);
    assert!(p99 < 2_000_000, "storm p99 {p99} us exceeds 2 s tripwire");

    // Post-storm recovery: the bounded shed rules are spent, so after
    // one SLO window of clean traffic /healthz reports ok again.
    std::thread::sleep(Duration::from_millis(1_600));
    let client = Client::new(addr);
    for _ in 0..10 {
        let response = client
            .post("/query", r#"{"analysis": "trace-summary"}"#, &[])
            .expect("clean query");
        assert_eq!(response.status, 200, "post-storm traffic is clean");
    }
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let body = hpcfail_obs::json::parse(&health.body).expect("healthz json");
    let slo_status = body
        .get("slo")
        .and_then(|s| s.get("status"))
        .and_then(|s| s.as_str())
        .expect("slo status");
    assert_eq!(slo_status, "ok", "healthz after storm: {}", health.body);
    let shed_total = body
        .get("admission")
        .and_then(|a| a.get("shed_total"))
        .and_then(|s| s.as_u64())
        .expect("admission shed_total");
    assert_eq!(shed_total, second.sheds(), "healthz shed breakdown agrees");
    handle.shutdown();
}

/// The second storm run's report fields flow through to the schema-2
/// report: sheds/retries/gave_up land per phase and top-level.
#[test]
fn storm_counts_flow_into_the_schema_2_report() {
    let handle = storm_server();
    let stats = run_storm(&handle.addr().to_string());
    handle.shutdown();

    let config = MixConfig::smoke();
    let report = hpcfail_load::BenchReport::build(
        &config,
        &stats,
        "http",
        "scenario=chaos-storm-fixture",
        1,
        hpcfail_load::Budget::ci(),
    );
    assert_eq!(report.schema, 2);
    assert_eq!(report.sheds, stats.sheds());
    assert_eq!(report.retries, stats.retries());
    assert_eq!(report.gave_up, 0);
    let phase_sheds: u64 = report.phases.iter().map(|p| p.sheds).sum();
    assert_eq!(phase_sheds, report.sheds, "phase sheds sum to the total");
    // The round trip through the strict parser preserves the counts.
    let parsed = hpcfail_load::BenchReport::parse(&report.pretty()).expect("parses");
    assert_eq!(parsed, report);
    assert!(parsed.check().is_empty(), "storm run stays within budget");
}
