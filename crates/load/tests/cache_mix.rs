//! Satellite guarantee: the mixes shape cache behavior as designed.
//!
//! A zipfian hot-key mix recycles a small key set, so its hit rate
//! must clear a floor; a cold-cache phase never repeats a key, so its
//! hit rate must stay under a ceiling (exactly zero for the in-process
//! target, which has no coalescing).

use hpcfail_load::{
    build_corpus, execute, plan, systems_from_fleet, Arrival, InProcess, MixConfig, Phase,
    PhaseKind, RunOptions,
};
use hpcfail_synth::Scenario;

fn fixture() -> Scenario {
    Scenario::parse(
        r#"{
            "scenario": "cache-mix-fixture",
            "version": 1,
            "seed": 23,
            "systems": [
                {"id": 2, "template": "numa", "nodes": 12, "days": 120},
                {"id": 20, "template": "smp", "nodes": 32, "days": 120}
            ]
        }"#,
    )
    .expect("fixture parses")
}

fn run(config: &MixConfig) -> hpcfail_load::RunStats {
    let scenario = fixture();
    let systems = systems_from_fleet(&scenario.fleet());
    let corpus = build_corpus(&systems, config.corpus_size);
    let load_plan = plan::build(config, corpus.len()).expect("profile plans");
    let target = InProcess::new(scenario.generate().into_store(), 4096);
    execute(
        &corpus,
        &load_plan,
        config,
        &target,
        RunOptions { threads: 4 },
    )
}

#[test]
fn hot_key_mix_hit_rate_clears_the_floor() {
    let config = MixConfig {
        profile: "hot-only".to_owned(),
        seed: 99,
        corpus_size: 96,
        cold_reserve: 32,
        arrival: Arrival::Closed,
        phases: vec![Phase {
            kind: PhaseKind::HotKey {
                zipf_s: 1.2,
                hot_keys: 8,
            },
            requests: 200,
        }],
    };
    let stats = run(&config);
    assert_eq!(stats.errors(), 0);
    // 200 draws over at most 8 distinct keys: at least 192 hits even
    // if every key gets touched. Floor at 0.5 leaves a wide margin for
    // any future cache-eviction or coalescing changes.
    assert!(
        stats.hit_rate() >= 0.5,
        "hot-key mix hit rate {} below floor 0.5",
        stats.hit_rate()
    );
}

#[test]
fn cold_cache_mix_hit_rate_stays_under_the_ceiling() {
    let config = MixConfig {
        profile: "cold-only".to_owned(),
        seed: 99,
        corpus_size: 160,
        cold_reserve: 128,
        arrival: Arrival::Closed,
        phases: vec![Phase {
            kind: PhaseKind::ColdCache,
            requests: 128,
        }],
    };
    let stats = run(&config);
    assert_eq!(stats.errors(), 0);
    // Every cold request is a first sight; in-process there is no
    // coalescing, so the hit rate is exactly zero. The ceiling (rather
    // than equality) keeps the assertion honest for an HTTP variant.
    assert!(
        stats.hit_rate() <= 0.05,
        "cold-cache mix hit rate {} above ceiling 0.05",
        stats.hit_rate()
    );
    let (hits, misses, _) = stats.cache_totals();
    assert_eq!(hits, 0);
    assert_eq!(misses, 128);
}
