//! Equivalence of the unified [`Engine`] API with direct per-analysis
//! calls: for every request variant, `Engine::run` must produce the
//! same values — and the same JSON bytes — as calling the underlying
//! analysis directly, and repeated (warm) runs must equal the first
//! (cold) one byte-for-byte.

#![allow(deprecated)]

use hpcfail_core::availability::AvailabilityAnalysis;
use hpcfail_core::checkpoint::{CheckpointPolicy, CheckpointSimulator};
use hpcfail_core::correlation::{CorrelationAnalysis, Scope};
use hpcfail_core::cosmic::CosmicAnalysis;
use hpcfail_core::engine::{
    AnalysisRequest, AnalysisResult, ArrivalSummary, CosmicSummary, Engine, EnvShare, GlmSummary,
    RootShare, UsageSummary, UserSummary, REQUEST_KINDS,
};
use hpcfail_core::interarrival::ArrivalAnalysis;
use hpcfail_core::nodes::NodeAnalysis;
use hpcfail_core::pairwise::PairwiseAnalysis;
use hpcfail_core::power::{PowerAnalysis, PowerProblem};
use hpcfail_core::predict::AlarmRule;
use hpcfail_core::regression_study::{RegressionStudy, StudyFamily};
use hpcfail_core::temperature::{TempPredictor, TemperatureAnalysis};
use hpcfail_core::usage::UsageAnalysis;
use hpcfail_core::users::UserAnalysis;
use hpcfail_stats::glm::Family;
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;
use proptest::prelude::*;

fn demo_trace() -> Trace {
    hpcfail_synth::FleetSpec::demo().generate(42).into_store()
}

/// One request per kind, parameterized so proptest can vary the
/// interesting axes.
fn requests(seed: (usize, usize, usize)) -> Vec<AnalysisRequest> {
    requests_for(SystemId::new(2), seed)
}

/// The same per-kind sample aimed at an arbitrary system (scenario
/// packs use ids outside the LANL range).
fn requests_for(system: SystemId, seed: (usize, usize, usize)) -> Vec<AnalysisRequest> {
    let (class_ix, window_ix, scope_ix) = seed;
    let class = [
        FailureClass::Any,
        FailureClass::Root(RootCause::Hardware),
        FailureClass::Root(RootCause::Software),
        FailureClass::Hw(HardwareComponent::MemoryDimm),
    ][class_ix % 4];
    let window = Window::ALL[window_ix % Window::ALL.len()];
    let scope = Scope::ALL[scope_ix % Scope::ALL.len()];
    vec![
        AnalysisRequest::TraceSummary,
        AnalysisRequest::Conditional {
            group: SystemGroup::Group1,
            trigger: class,
            target: FailureClass::Any,
            window,
            scope,
        },
        AnalysisRequest::FleetConditional {
            trigger: class,
            target: FailureClass::Any,
            window,
            scope,
        },
        AnalysisRequest::SameTypeSummaries {
            group: SystemGroup::Group2,
            window,
            scope,
        },
        AnalysisRequest::NodeFailureCounts { system },
        AnalysisRequest::EqualRatesTest {
            system,
            class,
            exclude_node0: scope_ix % 2 == 0,
        },
        AnalysisRequest::NodeVsRest {
            system,
            node: NodeId::new((class_ix % 4) as u32),
            class,
            window,
        },
        AnalysisRequest::RootCauseShares {
            system,
            nodes: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        },
        AnalysisRequest::UsageCorrelations { system },
        AnalysisRequest::HeaviestUsers {
            system,
            k: 3 + class_ix % 5,
        },
        AnalysisRequest::EnvBreakdown,
        AnalysisRequest::PowerConditional {
            problem: PowerProblem::ALL[class_ix % PowerProblem::ALL.len()],
            target: FailureClass::Any,
            window,
        },
        AnalysisRequest::MaintenanceAfterPower {
            problem: PowerProblem::ALL[window_ix % PowerProblem::ALL.len()],
        },
        AnalysisRequest::TemperatureRegression {
            system,
            predictor: TempPredictor::ALL[class_ix % TempPredictor::ALL.len()],
            target: FailureClass::Any,
            family: StudyFamily::Poisson,
        },
        AnalysisRequest::CosmicCorrelation { system, class },
        AnalysisRequest::RegressionStudy {
            system,
            family: StudyFamily::ALL[class_ix % StudyFamily::ALL.len()],
            exclude_node0: window_ix % 2 == 0,
        },
        AnalysisRequest::ArrivalProfile {
            system,
            class: FailureClass::Any,
        },
        AnalysisRequest::AlarmEvaluation {
            group: SystemGroup::Group1,
            trigger: class,
            window,
        },
        AnalysisRequest::CheckpointReplay {
            group: SystemGroup::Group2,
            policy: if class_ix % 2 == 0 {
                CheckpointPolicy::Uniform {
                    interval_hours: 4.0 + window_ix as f64,
                }
            } else {
                CheckpointPolicy::Adaptive {
                    base_hours: 8.0,
                    flagged_hours: 2.0,
                    rule: AlarmRule {
                        trigger: class,
                        window,
                    },
                }
            },
        },
        AnalysisRequest::Availability {
            system: if class_ix % 2 == 0 {
                None
            } else {
                Some(system)
            },
        },
    ]
}

/// Computes the answer to `request` through the deprecated direct
/// constructors, byte-compatible with `Engine::run`.
fn direct(trace: &Trace, engine: &Engine, request: &AnalysisRequest) -> AnalysisResult {
    match request {
        AnalysisRequest::TraceSummary => {
            AnalysisResult::TraceSummary(hpcfail_core::engine::TraceSummary {
                systems: trace.systems().map(|s| s.config().id.raw()).collect(),
                failures: trace.total_failures() as u64,
                fingerprint: engine.fingerprint_hex(),
            })
        }
        AnalysisRequest::Conditional {
            group,
            trigger,
            target,
            window,
            scope,
        } => AnalysisResult::Conditional(
            CorrelationAnalysis::new(trace)
                .group_conditional(*group, *trigger, *target, *window, *scope),
        ),
        AnalysisRequest::FleetConditional {
            trigger,
            target,
            window,
            scope,
        } => AnalysisResult::Conditional(
            CorrelationAnalysis::new(trace).fleet_conditional(*trigger, *target, *window, *scope),
        ),
        AnalysisRequest::SameTypeSummaries {
            group,
            window,
            scope,
        } => AnalysisResult::SameType(
            PairwiseAnalysis::new(trace).same_type_summaries(*group, *window, *scope),
        ),
        AnalysisRequest::NodeFailureCounts { system } => {
            AnalysisResult::NodeFailureCounts(NodeAnalysis::new(trace).failure_counts(*system))
        }
        AnalysisRequest::EqualRatesTest {
            system,
            class,
            exclude_node0,
        } => {
            let exclude: &[NodeId] = if *exclude_node0 {
                &[NodeId::new(0)]
            } else {
                &[]
            };
            AnalysisResult::Test(
                NodeAnalysis::new(trace).equal_rates_test(*system, *class, exclude),
            )
        }
        AnalysisRequest::NodeVsRest {
            system,
            node,
            class,
            window,
        } => AnalysisResult::NodeVsRest(
            NodeAnalysis::new(trace).node_vs_rest(*system, *node, *class, *window),
        ),
        AnalysisRequest::RootCauseShares { system, nodes } => AnalysisResult::RootCauseShares(
            NodeAnalysis::new(trace)
                .root_cause_shares(*system, nodes)
                .into_iter()
                .map(|(root, share)| RootShare { root, share })
                .collect(),
        ),
        AnalysisRequest::UsageCorrelations { system } => {
            let usage = UsageAnalysis::new(trace);
            AnalysisResult::Usage(UsageSummary {
                jobs_pearson: usage.jobs_failures_pearson(*system),
                util_pearson: usage.util_failures_pearson(*system),
                jobs_spearman: usage.jobs_failures_spearman(*system),
            })
        }
        AnalysisRequest::HeaviestUsers { system, k } => {
            let users = UserAnalysis::new(trace);
            let stats = users.heaviest_users(*system, *k);
            let heterogeneity = users.heterogeneity_test(&stats);
            AnalysisResult::Users(UserSummary {
                stats,
                heterogeneity,
            })
        }
        AnalysisRequest::EnvBreakdown => {
            let power = PowerAnalysis::new(trace);
            let shares = power.env_shares();
            AnalysisResult::EnvBreakdown(
                power
                    .env_breakdown()
                    .into_iter()
                    .map(|(cause, count)| EnvShare {
                        cause,
                        count,
                        share: shares.get(&cause).copied().unwrap_or(0.0),
                    })
                    .collect(),
            )
        }
        AnalysisRequest::PowerConditional {
            problem,
            target,
            window,
        } => AnalysisResult::Conditional(
            PowerAnalysis::new(trace).conditional_after(*problem, *target, *window),
        ),
        AnalysisRequest::MaintenanceAfterPower { problem } => {
            AnalysisResult::Conditional(PowerAnalysis::new(trace).maintenance_after(*problem))
        }
        AnalysisRequest::TemperatureRegression {
            system,
            predictor,
            target,
            family,
        } => {
            let family = match family {
                StudyFamily::Poisson => Family::Poisson,
                StudyFamily::NegativeBinomial => Family::NegativeBinomial { theta: 1.0 },
            };
            AnalysisResult::Glm(
                TemperatureAnalysis::new(trace)
                    .regression(*system, *predictor, *target, family)
                    .map(|fit| GlmSummary::from_fit(&fit))
                    .map_err(|e| e.to_string()),
            )
        }
        AnalysisRequest::CosmicCorrelation { system, class } => {
            let cosmic = CosmicAnalysis::new(trace);
            AnalysisResult::Cosmic(CosmicSummary {
                months: cosmic.monthly_series(*system, *class).len(),
                pearson: cosmic.flux_correlation(*system, *class),
                spearman: cosmic.flux_rank_correlation(*system, *class),
            })
        }
        AnalysisRequest::RegressionStudy {
            system,
            family,
            exclude_node0,
        } => AnalysisResult::Glm(
            RegressionStudy::new(trace)
                .fit(*system, *family, *exclude_node0)
                .map(|fit| GlmSummary::from_fit(&fit))
                .map_err(|e| e.to_string()),
        ),
        AnalysisRequest::ArrivalProfile { system, class } => AnalysisResult::Arrival(
            ArrivalAnalysis::new(trace)
                .profile(*system, *class)
                .map(|p| ArrivalSummary::from_profile(&p))
                .map_err(|e| e.to_string()),
        ),
        AnalysisRequest::AlarmEvaluation {
            group,
            trigger,
            window,
        } => AnalysisResult::Alarm(
            AlarmRule {
                trigger: *trigger,
                window: *window,
            }
            .evaluate_group(trace, *group),
        ),
        AnalysisRequest::CheckpointReplay { group, policy } => AnalysisResult::Checkpoint(
            CheckpointSimulator::typical().replay_group(trace, *group, *policy),
        ),
        AnalysisRequest::Availability { system } => {
            let availability = AvailabilityAnalysis::new(trace);
            AnalysisResult::Availability(match system {
                Some(id) => availability.report(*id).into_iter().collect(),
                None => availability.all_reports(),
            })
        }
    }
}

#[test]
fn engine_matches_direct_calls_for_every_kind() {
    let trace = demo_trace();
    let engine = Engine::new(demo_trace());
    let reqs = requests((0, 0, 0));
    assert_eq!(
        reqs.iter().map(AnalysisRequest::kind).collect::<Vec<_>>(),
        REQUEST_KINDS.to_vec(),
        "the sample covers every request kind exactly once"
    );
    for request in reqs {
        let via_engine = engine.run(&request);
        let via_direct = direct(&trace, &engine, &request);
        assert_eq!(via_engine, via_direct, "values for {}", request.kind());
        assert_eq!(
            via_engine.to_json().pretty(),
            via_direct.to_json().pretty(),
            "bytes for {}",
            request.kind()
        );
    }
}

#[test]
fn warm_runs_equal_cold_runs() {
    let engine = Engine::new(demo_trace());
    for request in requests((1, 1, 1)) {
        let cold = engine.run(&request).to_json().pretty();
        for _ in 0..3 {
            assert_eq!(
                engine.run(&request).to_json().pretty(),
                cold,
                "repeat runs of {}",
                request.kind()
            );
        }
    }
}

/// The engine fingerprint is a function of record content, not of the
/// bytes the trace was loaded from: a trace round-tripped through CSV
/// and one round-tripped through a binary snapshot must share cache
/// keys and answer every request kind with identical bytes.
#[test]
fn csv_and_snapshot_loads_share_fingerprint_and_results() {
    use hpcfail_store::snapshot::{decode_snapshot, snapshot_bytes};

    let trace = demo_trace();
    let dir = std::env::temp_dir().join(format!("hpcfail-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    hpcfail_store::csv::save_trace(&dir, &trace).unwrap();
    let (csv_trace, report) =
        hpcfail_store::ingest::load_trace_with(&dir, hpcfail_store::ingest::IngestPolicy::Strict)
            .unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(report.quarantined.is_empty());
    let snap_trace = decode_snapshot(&snapshot_bytes(&trace)).unwrap();

    let direct_engine = Engine::new(trace);
    let csv_engine = Engine::new(csv_trace);
    let snap_engine = Engine::new(snap_trace);
    assert_eq!(direct_engine.fingerprint(), csv_engine.fingerprint());
    assert_eq!(csv_engine.fingerprint(), snap_engine.fingerprint());
    for request in requests((0, 0, 0)) {
        assert_eq!(
            csv_engine.run(&request).to_json().pretty(),
            snap_engine.run(&request).to_json().pretty(),
            "bytes for {}",
            request.kind()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_equivalence_holds_across_parameters(
        class_ix in 0usize..4,
        window_ix in 0usize..3,
        scope_ix in 0usize..3,
    ) {
        let trace = demo_trace();
        let engine = Engine::new(demo_trace());
        for request in requests((class_ix, window_ix, scope_ix)) {
            let via_engine = engine.run(&request);
            let via_direct = direct(&trace, &engine, &request);
            prop_assert_eq!(
                via_engine.to_json().pretty(),
                via_direct.to_json().pretty(),
                "bytes for {}", request.kind()
            );
        }
    }

    #[test]
    fn wire_round_trip_is_lossless(
        class_ix in 0usize..4,
        window_ix in 0usize..3,
        scope_ix in 0usize..3,
    ) {
        for request in requests((class_ix, window_ix, scope_ix)) {
            let wire = request.canonical();
            let back = AnalysisRequest::parse(&wire).expect("parses back");
            prop_assert_eq!(&back, &request);
            prop_assert_eq!(back.canonical(), wire);
        }
    }
}

/// Scenario-pack corpora get the same guarantee as the LANL demo
/// fleet: on a trace generated from a pack, `Engine::run` must equal
/// the direct per-analysis calls byte-for-byte for every request kind,
/// including requests aimed at the pack's own system ids. This is what
/// lets the load harness treat pack traces and synthetic LANL traces
/// interchangeably.
#[test]
fn engine_equivalence_holds_on_scenario_pack_traces() {
    // cascading-power is the richest pack: job log, temperature
    // sensors, and scripted episodes all present.
    let scenario = hpcfail_synth::scenario::load("cascading-power").expect("builtin pack");
    let trace = scenario.generate().into_store();
    let engine = Engine::new(scenario.generate().into_store());
    let pack_system = SystemId::new(scenario.fleet().systems[0].id);
    for seed in [(0, 0, 0), (1, 2, 1)] {
        for request in requests_for(pack_system, seed) {
            let via_engine = engine.run(&request);
            let via_direct = direct(&trace, &engine, &request);
            assert_eq!(via_engine, via_direct, "values for {}", request.kind());
            assert_eq!(
                via_engine.to_json().pretty(),
                via_direct.to_json().pretty(),
                "bytes for {}",
                request.kind()
            );
        }
    }
}
