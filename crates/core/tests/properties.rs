//! Property-based tests for the analysis engine: the conditional
//! estimator against a brute-force oracle on random traces, estimate
//! algebra, and alarm-rule invariants.

use hpcfail_core::correlation::Scope;
use hpcfail_core::engine::Engine;
use hpcfail_core::predict::AlarmRule;
use hpcfail_store::trace::{SystemTraceBuilder, Trace};
use hpcfail_types::prelude::*;
use proptest::prelude::*;

const NODES: u32 = 4;
const DAYS: f64 = 120.0;

fn root_cause(i: u8) -> RootCause {
    match i % 6 {
        0 => RootCause::Environment,
        1 => RootCause::Hardware,
        2 => RootCause::HumanError,
        3 => RootCause::Network,
        4 => RootCause::Software,
        _ => RootCause::Undetermined,
    }
}

fn build_trace(failures: &[(u32, i64, u8)]) -> Trace {
    let config = SystemConfig {
        id: SystemId::new(1),
        name: "prop".into(),
        nodes: NODES,
        procs_per_node: 4,
        hardware: HardwareClass::Smp4Way,
        start: Timestamp::EPOCH,
        end: Timestamp::from_days(DAYS),
        has_layout: false,
        has_job_log: false,
        has_temperature: false,
    };
    let mut b = SystemTraceBuilder::new(config);
    for &(node, sec, root) in failures {
        b.push_failure(FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node % NODES),
            Timestamp::from_seconds(sec),
            root_cause(root),
            SubCause::None,
        ));
    }
    let mut trace = Trace::new();
    trace.insert_system(b.build());
    trace
}

/// Brute-force same-node conditional: for each trigger with an observed
/// window, does the same node have a later failure of the target class
/// inside `(t, t+w]`?
fn oracle_same_node(
    failures: &[(u32, i64, u8)],
    trigger: RootCause,
    window_secs: i64,
) -> (u64, u64) {
    let end = (DAYS * 86_400.0) as i64;
    let mut hits = 0;
    let mut total = 0;
    for &(node, t, root) in failures {
        if root_cause(root) != trigger || t + window_secs > end || t < 0 {
            continue;
        }
        total += 1;
        let hit = failures
            .iter()
            .any(|&(n2, t2, _)| n2 % NODES == node % NODES && t2 > t && t2 <= t + window_secs);
        if hit {
            hits += 1;
        }
    }
    (hits, total)
}

fn arb_failures() -> impl Strategy<Value = Vec<(u32, i64, u8)>> {
    prop::collection::vec((0u32..NODES, 0i64..(DAYS as i64) * 86_400, 0u8..6), 0..60)
}

/// Like [`build_trace`] but with a two-nodes-per-rack layout, so the
/// SameRack scope is exercisable.
fn build_trace_with_racks(failures: &[(u32, i64, u8)]) -> Trace {
    let config = SystemConfig {
        id: SystemId::new(1),
        name: "prop".into(),
        nodes: NODES,
        procs_per_node: 4,
        hardware: HardwareClass::Smp4Way,
        start: Timestamp::EPOCH,
        end: Timestamp::from_days(DAYS),
        has_layout: true,
        has_job_log: false,
        has_temperature: false,
    };
    let mut b = SystemTraceBuilder::new(config);
    for &(node, sec, root) in failures {
        b.push_failure(FailureRecord::new(
            SystemId::new(1),
            NodeId::new(node % NODES),
            Timestamp::from_seconds(sec),
            root_cause(root),
            SubCause::None,
        ));
    }
    let layout: MachineLayout = (0..NODES)
        .map(|n| {
            (
                NodeId::new(n),
                NodeLocation {
                    rack: RackId::new((n / 2) as u16),
                    position_in_rack: (n % 2 + 1) as u8,
                    room_row: 0,
                    room_col: (n / 2) as u16,
                },
            )
        })
        .collect();
    b.layout(layout);
    let mut trace = Trace::new();
    trace.insert_system(b.build());
    trace
}

/// Brute-force conditional for any scope: per-node membership probes,
/// exactly mirroring the engine's pre-index per-node counting.
fn oracle_scoped(
    failures: &[(u32, i64, u8)],
    trigger: RootCause,
    target: RootCause,
    window_secs: i64,
    scope: Scope,
) -> (u64, u64) {
    let end = (DAYS * 86_400.0) as i64;
    let target_hit = |n: u32, t: i64| {
        failures.iter().any(|&(n2, t2, r2)| {
            n2 % NODES == n && root_cause(r2) == target && t2 > t && t2 <= t + window_secs
        })
    };
    let mut hits = 0;
    let mut total = 0;
    for &(node, t, root) in failures {
        if root_cause(root) != trigger || t + window_secs > end || t < 0 {
            continue;
        }
        let node = node % NODES;
        let peers: Vec<u32> = match scope {
            Scope::SameNode => vec![node],
            // Two nodes per rack: the peer is the rack sibling.
            Scope::SameRack => vec![node ^ 1],
            Scope::SameSystem => (0..NODES).filter(|&n| n != node).collect(),
        };
        for peer in peers {
            total += 1;
            if target_hit(peer, t) {
                hits += 1;
            }
        }
    }
    (hits, total)
}

proptest! {
    #[test]
    fn conditional_matches_oracle(failures in arb_failures(), trigger in 0u8..6) {
        let engine = Engine::new(build_trace(&failures));
        let analysis = engine.correlation();
        for window in [Window::Day, Window::Week] {
            let e = analysis.system_conditional(
                SystemId::new(1),
                FailureClass::Root(root_cause(trigger)),
                FailureClass::Any,
                window,
                Scope::SameNode,
            );
            let (hits, total) = oracle_same_node(&failures, root_cause(trigger), window.seconds());
            prop_assert_eq!(e.conditional.successes(), hits, "window {}", window);
            prop_assert_eq!(e.conditional.trials(), total, "window {}", window);
        }
    }

    #[test]
    fn conditional_matches_oracle_across_scopes(
        failures in arb_failures(),
        trigger in 0u8..6,
        target in 0u8..6,
    ) {
        // Differential check of the indexed/sliding-window paths: every
        // (window, scope) estimate — counts AND baseline — must equal
        // the brute-force per-node probes the engine used pre-index.
        let engine = Engine::new(build_trace_with_racks(&failures));
        let analysis = engine.correlation();
        let system = engine.trace().system(SystemId::new(1)).expect("system 1");
        let direct = hpcfail_store::query::BaselineEstimator::new(system);
        for window in [Window::Day, Window::Week] {
            for scope in [Scope::SameNode, Scope::SameRack, Scope::SameSystem] {
                let e = analysis.system_conditional(
                    SystemId::new(1),
                    FailureClass::Root(root_cause(trigger)),
                    FailureClass::Root(root_cause(target)),
                    window,
                    scope,
                );
                let (hits, total) = oracle_scoped(
                    &failures,
                    root_cause(trigger),
                    root_cause(target),
                    window.seconds(),
                    scope,
                );
                prop_assert_eq!(
                    e.conditional.successes(), hits,
                    "hits, window {} scope {:?}", window, scope
                );
                prop_assert_eq!(
                    e.conditional.trials(), total,
                    "trials, window {} scope {:?}", window, scope
                );
                let base = direct.failure_probability(FailureClass::Root(root_cause(target)), window);
                prop_assert_eq!(
                    e.baseline.successes(), base.hits,
                    "baseline hits, window {} scope {:?}", window, scope
                );
                prop_assert_eq!(
                    e.baseline.trials(), base.total,
                    "baseline trials, window {} scope {:?}", window, scope
                );
            }
        }
    }

    #[test]
    fn conditional_counts_monotone_in_window(failures in arb_failures()) {
        let engine = Engine::new(build_trace(&failures));
        let analysis = engine.correlation();
        let get = |w| {
            analysis.system_conditional(
                SystemId::new(1),
                FailureClass::Any,
                FailureClass::Any,
                w,
                Scope::SameNode,
            )
        };
        let day = get(Window::Day);
        let week = get(Window::Week);
        // Fewer observed triggers for longer windows; among shared
        // triggers the hit probability can only grow, so compare on the
        // week's trigger set: every week trigger is also a day trigger,
        // and a day hit inside (t, t+1d] is also a week hit.
        prop_assert!(week.conditional.trials() <= day.conditional.trials());
        // Baseline: longer windows have weakly higher probability.
        prop_assert!(
            week.baseline.estimate() >= day.baseline.estimate() - 1e-12
        );
    }

    #[test]
    fn group_conditional_equals_single_system(failures in arb_failures()) {
        let engine = Engine::new(build_trace(&failures));
        let analysis = engine.correlation();
        let single = analysis.system_conditional(
            SystemId::new(1),
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        let group = analysis.group_conditional(
            SystemGroup::Group1,
            FailureClass::Any,
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        prop_assert_eq!(single.conditional, group.conditional);
        prop_assert_eq!(single.baseline, group.baseline);
    }

    #[test]
    fn alarm_precision_equals_conditional(failures in arb_failures()) {
        // The alarm rule's precision is by construction the same-node
        // conditional probability with the same trigger and window.
        let engine = Engine::new(build_trace(&failures));
        let analysis = engine.correlation();
        let e = analysis.system_conditional(
            SystemId::new(1),
            FailureClass::Root(RootCause::Hardware),
            FailureClass::Any,
            Window::Week,
            Scope::SameNode,
        );
        let rule = AlarmRule {
            trigger: FailureClass::Root(RootCause::Hardware),
            window: Window::Week,
        };
        let eval = rule.evaluate_group(engine.trace(), SystemGroup::Group1);
        prop_assert_eq!(eval.alarms, e.conditional.trials());
        prop_assert_eq!(eval.correct_alarms, e.conditional.successes());
    }

    #[test]
    fn alarm_metrics_bounded(failures in arb_failures(), trigger in 0u8..6) {
        let trace = build_trace(&failures);
        let rule = AlarmRule {
            trigger: FailureClass::Root(root_cause(trigger)),
            window: Window::Week,
        };
        let eval = rule.evaluate_group(&trace, SystemGroup::Group1);
        prop_assert!((0.0..=1.0).contains(&eval.precision()));
        prop_assert!((0.0..=1.0).contains(&eval.recall()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eval.flagged_fraction()));
        prop_assert!(eval.correct_alarms <= eval.alarms);
        prop_assert!(eval.caught_failures <= eval.total_failures);
    }
}
