//! Availability reporting: MTBF, MTTR and downtime breakdowns.
//!
//! The LANL records carry repair/downtime durations; a reliability
//! toolkit should turn them into the numbers operators actually quote —
//! mean time between failures, mean time to repair, availability, and
//! which root causes cost the most downtime.

use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;
use std::collections::BTreeMap;

/// One system's availability summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// The system.
    pub system: SystemId,
    /// Failures with downtime information.
    pub failures_with_downtime: u64,
    /// All failures.
    pub failures: u64,
    /// Mean time between failures per node, in hours
    /// (node-hours of observation / failures).
    pub node_mtbf_hours: f64,
    /// Mean time to repair, in hours (over failures with downtime).
    pub mttr_hours: f64,
    /// Fraction of node-time the system was up:
    /// `1 - total downtime / total node-time`.
    pub availability: f64,
    /// Node-hours of downtime attributed to each root cause.
    pub downtime_by_root: BTreeMap<RootCause, f64>,
}

impl AvailabilityReport {
    /// The root cause with the largest downtime bill.
    pub fn costliest_root_cause(&self) -> Option<RootCause> {
        self.downtime_by_root
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&root, _)| root)
    }

    /// "Nines" of availability, e.g. 2.0 for 99%.
    pub fn nines(&self) -> f64 {
        if self.availability >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - self.availability).log10()
        }
    }
}

/// The availability analysis over a trace.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> AvailabilityAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::availability` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        AvailabilityAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::availability`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        AvailabilityAnalysis { trace }
    }

    /// The availability report for one system, or `None` for unknown
    /// systems or systems with no observation time.
    pub fn report(&self, system: SystemId) -> Option<AvailabilityReport> {
        let s = self.trace.system(system)?;
        let config = s.config();
        let node_hours =
            config.nodes as f64 * config.observation_span().as_seconds().max(0) as f64 / 3600.0;
        if node_hours <= 0.0 {
            return None;
        }
        let failures = s.failures().len() as u64;
        let mut with_downtime = 0u64;
        let mut downtime_hours = 0.0;
        let mut by_root: BTreeMap<RootCause, f64> = BTreeMap::new();
        for f in s.failures() {
            if let Some(d) = f.downtime {
                with_downtime += 1;
                let h = d.as_seconds().max(0) as f64 / 3600.0;
                downtime_hours += h;
                *by_root.entry(f.root_cause).or_insert(0.0) += h;
            }
        }
        Some(AvailabilityReport {
            system,
            failures_with_downtime: with_downtime,
            failures,
            node_mtbf_hours: if failures == 0 {
                f64::INFINITY
            } else {
                node_hours / failures as f64
            },
            mttr_hours: if with_downtime == 0 {
                0.0
            } else {
                downtime_hours / with_downtime as f64
            },
            availability: (1.0 - downtime_hours / node_hours).clamp(0.0, 1.0),
            downtime_by_root: by_root,
        })
    }

    /// Reports for every system, in id order.
    pub fn all_reports(&self) -> Vec<AvailabilityReport> {
        self.trace
            .systems()
            .filter_map(|s| self.report(s.id()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(20),
            name: "t".into(),
            nodes: 10,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        let sys = SystemId::new(20);
        // 4 failures: 2 hardware (2h + 4h down), 1 software (6h),
        // 1 network without downtime info.
        b.push_failure(
            FailureRecord::new(
                sys,
                NodeId::new(0),
                Timestamp::from_days(10.0),
                RootCause::Hardware,
                SubCause::None,
            )
            .with_downtime(Duration::from_hours(2.0)),
        );
        b.push_failure(
            FailureRecord::new(
                sys,
                NodeId::new(1),
                Timestamp::from_days(20.0),
                RootCause::Hardware,
                SubCause::None,
            )
            .with_downtime(Duration::from_hours(4.0)),
        );
        b.push_failure(
            FailureRecord::new(
                sys,
                NodeId::new(2),
                Timestamp::from_days(30.0),
                RootCause::Software,
                SubCause::None,
            )
            .with_downtime(Duration::from_hours(6.0)),
        );
        b.push_failure(FailureRecord::new(
            sys,
            NodeId::new(3),
            Timestamp::from_days(40.0),
            RootCause::Network,
            SubCause::None,
        ));
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn report_by_hand() {
        let trace = build();
        let r = AvailabilityAnalysis::over(&trace)
            .report(SystemId::new(20))
            .unwrap();
        assert_eq!(r.failures, 4);
        assert_eq!(r.failures_with_downtime, 3);
        // 10 nodes * 2400 hours / 4 failures.
        assert!((r.node_mtbf_hours - 6000.0).abs() < 1e-9);
        assert!((r.mttr_hours - 4.0).abs() < 1e-9);
        // 12 hours down of 24,000 node-hours.
        assert!((r.availability - (1.0 - 12.0 / 24_000.0)).abs() < 1e-12);
        assert_eq!(r.costliest_root_cause(), Some(RootCause::Software));
        assert!((r.downtime_by_root[&RootCause::Hardware] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn nines_computation() {
        let trace = build();
        let r = AvailabilityAnalysis::over(&trace)
            .report(SystemId::new(20))
            .unwrap();
        // availability 0.9995 -> ~3.3 nines.
        assert!(r.nines() > 3.0 && r.nines() < 4.0, "nines {}", r.nines());
    }

    #[test]
    fn empty_system_handled() {
        let config = SystemConfig {
            id: SystemId::new(9),
            name: "empty".into(),
            nodes: 4,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(10.0),
            has_layout: false,
            has_job_log: false,
            has_temperature: false,
        };
        let mut trace = Trace::new();
        trace.insert_system(SystemTraceBuilder::new(config).build());
        let r = AvailabilityAnalysis::over(&trace)
            .report(SystemId::new(9))
            .unwrap();
        assert_eq!(r.failures, 0);
        assert!(r.node_mtbf_hours.is_infinite());
        assert_eq!(r.availability, 1.0);
        assert!(r.costliest_root_cause().is_none());
        assert!(r.nines().is_infinite());
    }

    #[test]
    fn unknown_system_none() {
        let trace = build();
        assert!(AvailabilityAnalysis::over(&trace)
            .report(SystemId::new(99))
            .is_none());
        assert_eq!(AvailabilityAnalysis::over(&trace).all_reports().len(), 1);
    }
}
