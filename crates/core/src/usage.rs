//! Section V: what is the effect of usage on a node's reliability?
//!
//! Produces the Figure 7 scatter data (per-node failures vs utilization
//! and vs number of jobs) and the Pearson/Spearman correlations, with
//! and without node 0 — the paper finds the strong linear correlation
//! is mostly carried by the login node.

use hpcfail_stats::corr::{pearson, spearman};
use hpcfail_store::features::NodeUsage;
use hpcfail_store::trace::Trace;
use hpcfail_types::prelude::*;

/// One point of the Figure 7 scatter plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsagePoint {
    /// The node.
    pub node: NodeId,
    /// Failures in the node's lifetime.
    pub failures: u64,
    /// Average utilization in percent (0-100).
    pub utilization_pct: f64,
    /// Total jobs assigned to the node.
    pub num_jobs: u64,
}

/// Correlation pair: with all nodes, and with node 0 removed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageCorrelation {
    /// Coefficient over all nodes.
    pub all_nodes: Option<f64>,
    /// Coefficient excluding node 0.
    pub without_node0: Option<f64>,
}

/// The Section V usage analysis.
#[derive(Debug, Clone, Copy)]
pub struct UsageAnalysis<'a> {
    trace: &'a Trace,
}

impl<'a> UsageAnalysis<'a> {
    /// Creates the analysis over `trace`.
    #[deprecated(note = "construct through `hpcfail_core::engine::Engine::usage` instead")]
    pub fn new(trace: &'a Trace) -> Self {
        UsageAnalysis::over(trace)
    }

    /// Engine-internal constructor: the public entry point is
    /// [`crate::engine::Engine::usage`].
    pub(crate) fn over(trace: &'a Trace) -> Self {
        UsageAnalysis { trace }
    }

    /// The Figure 7 scatter points for one system (empty when the
    /// system has no job log).
    pub fn scatter(&self, system: SystemId) -> Vec<UsagePoint> {
        let Some(s) = self.trace.system(system) else {
            return Vec::new();
        };
        if s.jobs().is_empty() {
            return Vec::new();
        }
        // Memoized in the trace's timeline index: the four Figure 7
        // statistics all derive from this one job-log scan.
        let usage: std::sync::Arc<Vec<NodeUsage>> = s.indexed_usage();
        usage
            .iter()
            .map(|u| UsagePoint {
                node: u.node,
                failures: s.node_failure_count(u.node) as u64,
                utilization_pct: u.utilization * 100.0,
                num_jobs: u.num_jobs,
            })
            .collect()
    }

    /// Pearson correlation between per-node job counts and failure
    /// counts, with and without node 0 (the paper reports 0.465 and
    /// 0.12 for systems 8 and 20, collapsing when node 0 is removed).
    pub fn jobs_failures_pearson(&self, system: SystemId) -> UsageCorrelation {
        self.correlate(system, |p| p.num_jobs as f64, pearson)
    }

    /// Pearson correlation between utilization and failures.
    pub fn util_failures_pearson(&self, system: SystemId) -> UsageCorrelation {
        self.correlate(system, |p| p.utilization_pct, pearson)
    }

    /// Spearman rank correlation between job counts and failures — the
    /// outlier-robust check (an extension beyond the paper).
    pub fn jobs_failures_spearman(&self, system: SystemId) -> UsageCorrelation {
        self.correlate(system, |p| p.num_jobs as f64, spearman)
    }

    fn correlate(
        &self,
        system: SystemId,
        x: impl Fn(&UsagePoint) -> f64,
        coef: impl Fn(&[f64], &[f64]) -> Option<f64>,
    ) -> UsageCorrelation {
        let points = self.scatter(system);
        if points.len() < 3 {
            return UsageCorrelation {
                all_nodes: None,
                without_node0: None,
            };
        }
        let xs: Vec<f64> = points.iter().map(&x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.failures as f64).collect();
        let all_nodes = coef(&xs, &ys);
        let keep: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].node != NodeId::new(0))
            .collect();
        let xs2: Vec<f64> = keep.iter().map(|&i| xs[i]).collect();
        let ys2: Vec<f64> = keep.iter().map(|&i| ys[i]).collect();
        UsageCorrelation {
            all_nodes,
            without_node0: coef(&xs2, &ys2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcfail_store::trace::SystemTraceBuilder;

    fn build() -> Trace {
        let config = SystemConfig {
            id: SystemId::new(8),
            name: "t".into(),
            nodes: 6,
            procs_per_node: 4,
            hardware: HardwareClass::Smp4Way,
            start: Timestamp::EPOCH,
            end: Timestamp::from_days(100.0),
            has_layout: false,
            has_job_log: true,
            has_temperature: false,
        };
        let mut b = SystemTraceBuilder::new(config);
        // Node 0: heavy usage and many failures; node 1-5 modest.
        let mut job_id = 0;
        let mut push_job = |b: &mut SystemTraceBuilder, node: u32, start: f64, end: f64| {
            b.push_job(JobRecord {
                system: SystemId::new(8),
                job_id: JobId::new(job_id),
                user: UserId::new(0),
                submit: Timestamp::from_days(start - 0.05),
                dispatch: Timestamp::from_days(start),
                end: Timestamp::from_days(end),
                procs: 4,
                nodes: vec![NodeId::new(node)],
            });
            job_id += 1;
        };
        for i in 0..40 {
            push_job(&mut b, 0, i as f64 * 2.0, i as f64 * 2.0 + 1.5);
        }
        for n in 1..6u32 {
            for i in 0..(n as usize) {
                push_job(&mut b, n, 10.0 + i as f64 * 10.0, 12.0 + i as f64 * 10.0);
            }
        }
        // Failures: node 0 gets 12, others n-1.
        let mut day = 1.0;
        for _ in 0..12 {
            b.push_failure(FailureRecord::new(
                SystemId::new(8),
                NodeId::new(0),
                Timestamp::from_days(day),
                RootCause::Software,
                SubCause::None,
            ));
            day += 7.0;
        }
        // Rest-of-system failures unrelated to usage (node n gets
        // 2, 1, 2, 1, 2 failures for n = 1..=5).
        for n in 1..6u32 {
            let count = if n % 2 == 1 { 2 } else { 1 };
            for i in 0..count {
                b.push_failure(FailureRecord::new(
                    SystemId::new(8),
                    NodeId::new(n),
                    Timestamp::from_days(20.0 + i as f64 * 11.0 + n as f64),
                    RootCause::Hardware,
                    SubCause::None,
                ));
            }
        }
        let mut trace = Trace::new();
        trace.insert_system(b.build());
        trace
    }

    #[test]
    fn scatter_reflects_usage_and_failures() {
        let trace = build();
        let a = UsageAnalysis::over(&trace);
        let points = a.scatter(SystemId::new(8));
        assert_eq!(points.len(), 6);
        let p0 = &points[0];
        assert_eq!(p0.node, NodeId::new(0));
        assert_eq!(p0.failures, 12);
        assert_eq!(p0.num_jobs, 40);
        assert!(p0.utilization_pct > 50.0);
        assert!(points[1..].iter().all(|p| p.num_jobs < 6));
        assert!(points[1..].iter().all(|p| p.failures <= 2));
    }

    #[test]
    fn pearson_dominated_by_node0() {
        let trace = build();
        let a = UsageAnalysis::over(&trace);
        let r = a.jobs_failures_pearson(SystemId::new(8));
        assert!(r.all_nodes.unwrap() > 0.9, "all {:?}", r.all_nodes);
        // Without node 0 the correlation drops markedly.
        assert!(r.without_node0.unwrap() < r.all_nodes.unwrap());
    }

    #[test]
    fn util_correlation_also_positive() {
        let trace = build();
        let a = UsageAnalysis::over(&trace);
        let r = a.util_failures_pearson(SystemId::new(8));
        assert!(r.all_nodes.unwrap() > 0.5);
    }

    #[test]
    fn spearman_available() {
        let trace = build();
        let a = UsageAnalysis::over(&trace);
        let r = a.jobs_failures_spearman(SystemId::new(8));
        assert!(r.all_nodes.is_some());
    }

    #[test]
    fn system_without_jobs_yields_empty() {
        let trace = build();
        let a = UsageAnalysis::over(&trace);
        assert!(a.scatter(SystemId::new(99)).is_empty());
        let r = a.jobs_failures_pearson(SystemId::new(99));
        assert!(r.all_nodes.is_none());
    }
}
