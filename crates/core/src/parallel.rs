//! Scoped-thread fan-out for independent per-class / per-system
//! analyses.
//!
//! The reproduction harness evaluates dozens of independent
//! (trigger-class, window, scope) combinations; this helper spreads
//! them over `std::thread::scope` workers while keeping results in
//! input order.
//!
//! Each worker reports what it did to the observability registry, at
//! per-worker (not per-item) granularity so the hot loop carries no
//! atomics or clock reads: `core.parallel.items` counts items processed
//! fleet-wide, `core.parallel.worker_items` is a histogram of how many
//! items each worker claimed, and `core.parallel.worker_busy_ns` /
//! `core.parallel.worker_idle_ns` expose load imbalance — a worker's
//! idle time is the gap between its own busy time and the fan-out's
//! wall time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns results in input order.
///
/// Falls back to a sequential loop for a single thread or a single
/// item. `f` must be `Sync` because multiple workers share it.
///
/// # Panics
///
/// If `f` panics on any item, the panic is resumed on the calling
/// thread with the original payload once all workers have stopped.
///
/// # Examples
///
/// ```
/// use hpcfail_core::parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let items_counter = hpcfail_obs::counter("core.parallel.items");
    if threads == 1 || items.len() <= 1 {
        items_counter.add(items.len() as u64);
        return items.iter().map(&f).collect();
    }

    let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let busy_ns: Vec<Mutex<u64>> = (0..threads).map(|_| Mutex::new(0)).collect();
    let worker_items = hpcfail_obs::histogram("core.parallel.worker_items");
    let fan_out = Instant::now();
    let panic_payload = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let results = &results;
                let next = &next;
                let f = &f;
                let items_counter = items_counter.clone();
                let worker_items = worker_items.clone();
                let busy_cell = &busy_ns[worker];
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let out = f(&items[i]);
                        claimed += 1;
                        // Slots hold finished values only; recover from
                        // poisoning (another worker's panic) instead of
                        // compounding it.
                        *results[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                    }
                    items_counter.add(claimed);
                    worker_items.record(claimed);
                    *busy_cell
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) =
                        started.elapsed().as_nanos() as u64;
                })
            })
            .collect();
        // Join every worker before deciding the outcome, so a panic in
        // one closure cannot leave others running; resume the first
        // panic payload observed, in worker order.
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    let wall_ns = fan_out.elapsed().as_nanos() as u64;
    let busy_hist = hpcfail_obs::histogram("core.parallel.worker_busy_ns");
    let idle_hist = hpcfail_obs::histogram("core.parallel.worker_idle_ns");
    for cell in &busy_ns {
        let busy = *cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        busy_hist.record(busy);
        idle_hist.record(wall_ns.saturating_sub(busy));
    }

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot filled")
        })
        .collect()
}

/// A reasonable default worker count: available parallelism capped at 8
/// (the analyses are memory-bandwidth-bound beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[5, 6], 1, |&x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1], 16, |&x| x * 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 33 {
                    panic!("worker exploded on {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("worker exploded on 33"),
            "original payload preserved, got {message:?}"
        );
    }

    #[test]
    fn panic_in_sequential_fallback_propagates() {
        let result = std::panic::catch_unwind(|| parallel_map(&[1], 1, |_| panic!("boom")));
        assert!(result.is_err());
    }
}
