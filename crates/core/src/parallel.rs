//! Scoped-thread fan-out for independent per-class / per-system
//! analyses.
//!
//! The reproduction harness evaluates dozens of independent
//! (trigger-class, window, scope) combinations; this helper spreads
//! them over threads with `crossbeam::scope` while keeping results in
//! input order.

use parking_lot::Mutex;

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns results in input order.
///
/// Falls back to a sequential loop for a single thread or a single
/// item. `f` must be `Sync` because multiple workers share it.
///
/// # Examples
///
/// ```
/// use hpcfail_core::parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *results[i].lock() = Some(f(&items[i]));
            });
        }
    })
    .expect("analysis worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// A reasonable default worker count: available parallelism capped at 8
/// (the analyses are memory-bandwidth-bound beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[5, 6], 1, |&x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1], 16, |&x| x * 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
